//! The `analyze` driver: runs the semantic passes (panic-reachability,
//! shape contracts, concurrency, perf, determinism) over the library
//! crates, applies the ratchet baseline, and renders human/JSON output.

use crate::baseline;
use crate::callgraph;
use crate::complexity;
use crate::concurrency;
use crate::determinism;
use crate::items::{self, FnInfo};
use crate::perf;
use crate::scanner::{self, SourceFile};
use crate::shape;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::Path;

/// Workspace-relative location of the ratchet baseline.
pub const BASELINE_PATH: &str = "crates/xtask/analyze.baseline";

/// Crates whose Matrix/Vector-producing `pub` functions must carry
/// `/// shape:` annotations.
const ANNOTATED_CRATES: [&str; 4] = ["linalg", "graph", "core", "index"];

/// The semantic rules `analyze` knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalyzeRule {
    /// A `pub` API path reaches an unguarded panic site.
    PanicReach,
    /// A `/// shape:` annotation is missing or malformed.
    ShapeAnnotation,
    /// A block-operation call site has a definite shape mismatch.
    ShapeMismatch,
    /// `Ordering::Relaxed` in a threaded file.
    RelaxedOrdering,
    /// A lock guard is live across a join/scope/spawn call.
    LockAcrossJoin,
    /// Interior mutability without `Sync` in a threaded file.
    NonSyncShared,
    /// An allocation (or owning conversion) inside a hot loop.
    HotAlloc,
    /// Raw indexing inside a hot innermost loop.
    HotBounds,
    /// A `/// complexity:` contract is missing or malformed.
    ComplexityContract,
    /// A hot body nests deeper than its complexity contract admits.
    ComplexityMismatch,
    /// A non-total float ordering (`partial_cmp`, `f64::max`/`f64::min`).
    FloatTotalOrder,
    /// A nondeterministic source (hash iteration, wall clock, pointer
    /// address, unseeded RNG) in library code.
    NondetSource,
    /// Order-sensitive accumulation across executor chunk boundaries.
    ReductionOrder,
    /// A `/// deterministic` marker is malformed.
    DetAnnotation,
    /// A baseline entry no longer matches reality.
    BaselineStale,
}

impl AnalyzeRule {
    /// Stable key used in output and the baseline file.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            AnalyzeRule::PanicReach => "panic_reach",
            AnalyzeRule::ShapeAnnotation => "shape_annotation",
            AnalyzeRule::ShapeMismatch => "shape_mismatch",
            AnalyzeRule::RelaxedOrdering => "relaxed_ordering",
            AnalyzeRule::LockAcrossJoin => "lock_across_join",
            AnalyzeRule::NonSyncShared => "non_sync_shared",
            AnalyzeRule::HotAlloc => "alloc_in_hot_loop",
            AnalyzeRule::HotBounds => "bounds_check_hot_loop",
            AnalyzeRule::ComplexityContract => "complexity_contract",
            AnalyzeRule::ComplexityMismatch => "complexity_mismatch",
            AnalyzeRule::FloatTotalOrder => "float_total_order",
            AnalyzeRule::NondetSource => "nondet_source",
            AnalyzeRule::ReductionOrder => "reduction_order",
            AnalyzeRule::DetAnnotation => "det_annotation",
            AnalyzeRule::BaselineStale => "baseline_stale",
        }
    }

    /// Parses a baseline key back into a rule.
    #[must_use]
    pub fn from_key(key: &str) -> Option<AnalyzeRule> {
        match key {
            "panic_reach" => Some(AnalyzeRule::PanicReach),
            "shape_annotation" => Some(AnalyzeRule::ShapeAnnotation),
            "shape_mismatch" => Some(AnalyzeRule::ShapeMismatch),
            "relaxed_ordering" => Some(AnalyzeRule::RelaxedOrdering),
            "lock_across_join" => Some(AnalyzeRule::LockAcrossJoin),
            "non_sync_shared" => Some(AnalyzeRule::NonSyncShared),
            "alloc_in_hot_loop" => Some(AnalyzeRule::HotAlloc),
            "bounds_check_hot_loop" => Some(AnalyzeRule::HotBounds),
            "complexity_contract" => Some(AnalyzeRule::ComplexityContract),
            "complexity_mismatch" => Some(AnalyzeRule::ComplexityMismatch),
            "float_total_order" => Some(AnalyzeRule::FloatTotalOrder),
            "nondet_source" => Some(AnalyzeRule::NondetSource),
            "reduction_order" => Some(AnalyzeRule::ReductionOrder),
            "det_annotation" => Some(AnalyzeRule::DetAnnotation),
            "baseline_stale" => Some(AnalyzeRule::BaselineStale),
            _ => None,
        }
    }
}

/// One semantic finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: AnalyzeRule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// Qualified function name the finding is attributed to (`-` when
    /// file-level).
    pub func: String,
    /// 1-based line (0 for file-level problems).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] ({}) {}",
            self.file,
            self.line,
            self.rule.key(),
            self.func,
            self.message
        )
    }
}

/// Outcome of a full `analyze` run.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// Findings surviving the baseline ratchet, in path order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
    /// Number of findings suppressed by baseline entries.
    pub suppressed: usize,
}

impl AnalyzeReport {
    /// Whether the tree is clean (baseline-suppressed findings included).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Runs every semantic pass over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns `io::Error` when the tree cannot be read (a *finding* is not an
/// error — inspect the returned [`AnalyzeReport`]).
pub fn analyze_workspace(root: &Path) -> io::Result<AnalyzeReport> {
    let mut files_scanned = 0usize;
    // (relative path, analyzed source, extracted fns, crate name)
    let mut analyzed: Vec<(String, SourceFile, Vec<FnInfo>)> = Vec::new();
    let mut require_shapes: Vec<bool> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_names.sort();

    for name in &crate_names {
        if crate::EXEMPT_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src_dir = crates_dir.join(name).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        crate::collect_rust_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            files_scanned += 1;
            let text = fs::read_to_string(&file)?;
            let source = scanner::analyze(&text);
            let rel = crate::relative_path(root, &file);
            let fns = items::extract(&rel, &source);
            analyzed.push((rel, source, fns));
            require_shapes.push(ANNOTATED_CRATES.contains(&name.as_str()));
        }
    }

    let mut findings = run_passes(&analyzed, &require_shapes);

    // Ratchet baseline.
    let list_path = root.join(BASELINE_PATH);
    let list_text = match fs::read_to_string(&list_path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let (entries, mut problems) = baseline::parse(&list_text, BASELINE_PATH);
    let raw = findings.len();
    findings = baseline::reconcile(findings, &entries, BASELINE_PATH);
    let suppressed = raw.saturating_sub(
        findings
            .iter()
            .filter(|f| f.rule != AnalyzeRule::BaselineStale)
            .count(),
    );
    findings.append(&mut problems);

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.key()).cmp(&(b.file.as_str(), b.line, b.rule.key()))
    });

    Ok(AnalyzeReport {
        findings,
        files_scanned,
        suppressed,
    })
}

/// Runs the semantic passes over pre-analyzed files (shared by the real
/// run and the fixture self-tests).
#[must_use]
pub fn run_passes(
    analyzed: &[(String, SourceFile, Vec<FnInfo>)],
    require_shapes: &[bool],
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Workspace-wide call graph, shared by the perf hot-set propagation
    // and the panic-reachability pass.
    let all_fns: Vec<FnInfo> = analyzed
        .iter()
        .flat_map(|(_, _, f)| f.iter().cloned())
        .collect();
    let graph = callgraph::build(all_fns);
    let hot = perf::hot_set(&graph);
    let hot_locs: HashSet<(&str, usize)> = graph
        .fns
        .iter()
        .zip(&hot)
        .filter(|&(_, &h)| h)
        .map(|(f, _)| (f.file.as_str(), f.line))
        .collect();
    // Determinism pass: transitive det set plus a (file, line) → node map
    // so per-file findings can print the shortest `/// deterministic`
    // contract chain.
    let det = determinism::det_set(&graph);
    let det_nodes: HashMap<(&str, usize), usize> = graph
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| ((f.file.as_str(), f.line), i))
        .collect();
    let det_context = |file: &str, line: usize| -> String {
        det_nodes
            .get(&(file, line))
            .and_then(|&i| determinism::shortest_det_chain(&graph, &det, i))
            .map(|chain| {
                format!(
                    "; on a `/// deterministic` path via `{}`",
                    callgraph::render_chain(&graph, &chain)
                )
            })
            .unwrap_or_default()
    };

    // Shape pass: annotations per file, then call sites against the
    // workspace-wide registry.
    let mut registry = shape::Registry::default();
    for (_, _, fns) in analyzed {
        registry.add_all(fns);
    }
    for (i, (rel, source, fns)) in analyzed.iter().enumerate() {
        let require = require_shapes.get(i).copied().unwrap_or(false);
        for f in shape::check_annotations(fns, require) {
            findings.push(Finding {
                rule: if f.mismatch {
                    AnalyzeRule::ShapeMismatch
                } else {
                    AnalyzeRule::ShapeAnnotation
                },
                file: rel.clone(),
                func: f.func,
                line: f.line,
                message: f.message,
            });
        }
        for f in shape::check_call_sites(source, fns, &registry) {
            findings.push(Finding {
                rule: if f.mismatch {
                    AnalyzeRule::ShapeMismatch
                } else {
                    AnalyzeRule::ShapeAnnotation
                },
                file: rel.clone(),
                func: f.func,
                line: f.line,
                message: f.message,
            });
        }

        // Perf pass: hot-loop lints on every (transitively) hot function,
        // complexity contracts wherever they are declared, and a presence
        // requirement on explicitly-hot functions that loop.
        for f in fns.iter().filter(|f| !f.in_test) {
            match complexity::parse_contract(&f.doc) {
                Some(Err(msg)) => findings.push(Finding {
                    rule: AnalyzeRule::ComplexityContract,
                    file: rel.clone(),
                    func: f.qual.clone(),
                    line: f.line,
                    message: format!("malformed complexity contract: {msg}"),
                }),
                Some(Ok(contract)) => {
                    let observed = complexity::observed_depth(source, f);
                    if observed > contract.degree() {
                        findings.push(Finding {
                            rule: AnalyzeRule::ComplexityMismatch,
                            file: rel.clone(),
                            func: f.qual.clone(),
                            line: f.line,
                            message: format!(
                                "declared {} (degree {}) but the body nests {} counted loops",
                                contract.render(),
                                contract.degree(),
                                observed
                            ),
                        });
                    }
                }
                None => {
                    if perf::is_hot_marked(f) && complexity::observed_depth(source, f) >= 1 {
                        findings.push(Finding {
                            rule: AnalyzeRule::ComplexityContract,
                            file: rel.clone(),
                            func: f.qual.clone(),
                            line: f.line,
                            message:
                                "hot function with counted loops lacks a `/// complexity:` contract"
                                    .to_owned(),
                        });
                    }
                }
            }
            if hot_locs.contains(&(rel.as_str(), f.line)) {
                for site in perf::lint_hot_fn(source, f) {
                    findings.push(Finding {
                        rule: match site.kind {
                            perf::PerfKind::Alloc => AnalyzeRule::HotAlloc,
                            perf::PerfKind::Bounds => AnalyzeRule::HotBounds,
                        },
                        file: rel.clone(),
                        func: f.qual.clone(),
                        line: site.line,
                        message: site.message,
                    });
                }
            }

            // Determinism pass: marker grammar plus the three bit-identity
            // lints on every non-test library function; findings on a
            // `/// deterministic` path carry the shortest contract chain.
            if let Some(problem) = determinism::annotation_problem(f) {
                findings.push(Finding {
                    rule: AnalyzeRule::DetAnnotation,
                    file: rel.clone(),
                    func: f.qual.clone(),
                    line: f.line,
                    message: problem,
                });
            }
            for site in determinism::lint_det_fn(source, f) {
                let context = det_context(rel.as_str(), f.line);
                findings.push(Finding {
                    rule: match site.kind {
                        determinism::DetKind::FloatOrder => AnalyzeRule::FloatTotalOrder,
                        determinism::DetKind::NondetSource => AnalyzeRule::NondetSource,
                        determinism::DetKind::ReductionOrder => AnalyzeRule::ReductionOrder,
                    },
                    file: rel.clone(),
                    func: f.qual.clone(),
                    line: site.line,
                    message: format!("{}{}", site.message, context),
                });
            }
        }

        // Concurrency pass, attributed to the enclosing function.
        for c in concurrency::check(source) {
            let func = enclosing_fn(fns, c.line);
            findings.push(Finding {
                rule: match c.rule {
                    concurrency::ConcRule::RelaxedOrdering => AnalyzeRule::RelaxedOrdering,
                    concurrency::ConcRule::LockAcrossJoin => AnalyzeRule::LockAcrossJoin,
                    concurrency::ConcRule::NonSyncShared => AnalyzeRule::NonSyncShared,
                },
                file: rel.clone(),
                func,
                line: c.line,
                message: c.message,
            });
        }
    }

    // Panic-reachability over the shared call graph.
    for path in callgraph::panic_reachability(&graph) {
        let offender = &graph.fns[path.offender];
        findings.push(Finding {
            rule: AnalyzeRule::PanicReach,
            file: offender.file.clone(),
            func: offender.qual.clone(),
            line: offender.line,
            message: format!(
                "unguarded {} reachable from pub API via `{}`",
                path.sites,
                callgraph::render_chain(&graph, &path.chain)
            ),
        });
    }

    findings
}

/// The qualified name of the last function starting at or before `line`
/// (`-` when the line precedes every function).
fn enclosing_fn(fns: &[FnInfo], line: usize) -> String {
    fns.iter()
        .filter(|f| f.line <= line)
        .max_by_key(|f| f.line)
        .map_or_else(|| "-".to_owned(), |f| f.qual.clone())
}

/// Escapes a string for embedding in JSON output.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an analyze report as a single JSON object.
#[must_use]
pub fn analyze_json(report: &AnalyzeReport) -> String {
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"func\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                f.rule.key(),
                json_escape(&f.file),
                json_escape(&f.func),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    format!(
        "{{\"pass\":\"analyze\",\"files_scanned\":{},\"suppressed\":{},\"clean\":{},\"findings\":[{}]}}",
        report.files_scanned,
        report.suppressed,
        report.is_clean(),
        findings.join(",")
    )
}

/// Renders a `check` report as a single JSON object (same contract as
/// [`analyze_json`], so CI can diff both passes uniformly).
#[must_use]
pub fn check_json(report: &crate::Report) -> String {
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                v.rule.key(),
                json_escape(&v.file),
                v.line,
                json_escape(&v.message)
            )
        })
        .collect();
    format!(
        "{{\"pass\":\"check\",\"files_scanned\":{},\"clean\":{},\"violations\":[{}]}}",
        report.files_scanned,
        report.is_clean(),
        violations.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner::analyze;

    fn run(src: &str, require: bool) -> Vec<Finding> {
        let source = analyze(src);
        let fns = extract("t.rs", &source);
        run_passes(&[("t.rs".to_owned(), source, fns)], &[require])
    }

    #[test]
    fn clean_source_has_no_findings() {
        let src = "/// shape: (n, n)\npub fn eye(n: usize) -> Matrix { make(n) }\n\
                   fn make(n: usize) -> Matrix { Matrix }";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn panic_reach_findings_carry_the_chain() {
        let src = "pub fn api(v: &[f64]) -> f64 { inner(v) }\nfn inner(v: &[f64]) -> f64 { v[1] }";
        let out = run(src, false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, AnalyzeRule::PanicReach);
        assert!(out[0].message.contains("api -> inner"));
        assert_eq!(out[0].func, "inner");
    }

    #[test]
    fn det_findings_on_contract_paths_carry_the_chain() {
        let src = "/// deterministic\npub fn entry(xs: &[f64]) -> f64 { pick(xs) }\n\
                   fn pick(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0, f64::max) }\n\
                   fn stray(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0, f64::min) }\n\
                   pub fn keep(xs: &[f64]) -> f64 { stray(xs) }";
        let out = run(src, false);
        let float: Vec<_> = out
            .iter()
            .filter(|f| f.rule == AnalyzeRule::FloatTotalOrder)
            .collect();
        assert_eq!(float.len(), 2, "{out:#?}");
        let on_path = float
            .iter()
            .find(|f| f.func == "pick")
            .expect("pick finding");
        assert!(
            on_path.message.contains("entry -> pick"),
            "{}",
            on_path.message
        );
        let off_path = float
            .iter()
            .find(|f| f.func == "stray")
            .expect("stray finding");
        assert!(
            !off_path.message.contains("deterministic"),
            "{}",
            off_path.message
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rule_keys_round_trip() {
        for rule in [
            AnalyzeRule::PanicReach,
            AnalyzeRule::ShapeAnnotation,
            AnalyzeRule::ShapeMismatch,
            AnalyzeRule::RelaxedOrdering,
            AnalyzeRule::LockAcrossJoin,
            AnalyzeRule::NonSyncShared,
            AnalyzeRule::HotAlloc,
            AnalyzeRule::HotBounds,
            AnalyzeRule::ComplexityContract,
            AnalyzeRule::ComplexityMismatch,
            AnalyzeRule::FloatTotalOrder,
            AnalyzeRule::NondetSource,
            AnalyzeRule::ReductionOrder,
            AnalyzeRule::DetAnnotation,
            AnalyzeRule::BaselineStale,
        ] {
            assert_eq!(AnalyzeRule::from_key(rule.key()), Some(rule));
        }
    }
}
