//! Dense affinity (similarity) matrices: `W = [w_ij]` with
//! `w_ij = K(‖x_i − x_j‖ / h)`.

use crate::bandwidth::{squared_distance, Bandwidth};
use crate::error::{Error, Result};
use crate::kernel::Kernel;
use gssl_linalg::Matrix;
use gssl_runtime::Executor;

/// Row-block width used by the parallel assembly paths: a few blocks per
/// worker so stragglers even out without shredding cache locality.
fn row_block(rows: usize, executor: &Executor) -> usize {
    rows.div_ceil(executor.workers().saturating_mul(4)).max(1)
}

/// Pairwise squared-distance matrix of a point set (rows are points).
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] when `points` has no rows.
///
/// ```
/// use gssl_graph::affinity::pairwise_squared_distances;
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl_graph::Error> {
/// let pts = Matrix::from_rows(&[&[0.0, 0.0], &[3.0, 4.0]])?;
/// let d2 = pairwise_squared_distances(&pts)?;
/// assert_eq!(d2.get(0, 1), 25.0);
/// assert_eq!(d2.get(1, 1), 0.0);
/// # Ok(())
/// # }
/// ```
/// shape: (points.rows, points.rows)
/// hot
/// complexity: O(n^2 * d)
/// deterministic
pub fn pairwise_squared_distances(points: &Matrix) -> Result<Matrix> {
    let n = points.rows();
    if n == 0 {
        return Err(Error::EmptyInput {
            required: "at least one point",
        });
    }
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        let row_i = points.row(i);
        for j in (i + 1)..n {
            let d2 = squared_distance(row_i, points.row(j));
            out.set(i, j, d2);
            out.set(j, i, d2);
        }
    }
    Ok(out)
}

/// [`pairwise_squared_distances`] with the row loop sharded across
/// `executor`, producing a matrix **bit-identical** to the sequential one.
///
/// Each worker computes the strict upper-triangle tail of a block of rows
/// — every `d²(i, j)` by the same `squared_distance` call as the
/// sequential path — and the tails are mirrored into the matrix in row
/// order afterwards, so worker count never changes a single bit.
///
/// # Errors
///
/// Same as [`pairwise_squared_distances`].
/// shape: (points.rows, points.rows)
/// hot
/// complexity: O(n^2 * d)
/// deterministic
pub fn pairwise_squared_distances_with(points: &Matrix, executor: &Executor) -> Result<Matrix> {
    if executor.is_sequential() {
        return pairwise_squared_distances(points);
    }
    let n = points.rows();
    if n == 0 {
        return Err(Error::EmptyInput {
            required: "at least one point",
        });
    }
    let tails: Vec<Vec<f64>> = executor.map_chunks(n, row_block(n, executor), |range| {
        let mut rows = Vec::with_capacity(range.len());
        for i in range {
            let row_i = points.row(i);
            let mut tail = Vec::with_capacity(n - i - 1);
            for j in (i + 1)..n {
                tail.push(squared_distance(row_i, points.row(j)));
            }
            rows.push(tail);
        }
        Ok::<_, Error>(rows)
    })?;
    let mut out = Matrix::zeros(n, n);
    for (i, tail) in tails.iter().enumerate() {
        for (offset, &d2) in tail.iter().enumerate() {
            let j = i + 1 + offset;
            out.set(i, j, d2);
            out.set(j, i, d2);
        }
    }
    Ok(out)
}

/// Builds the dense affinity matrix `W` for `points` (rows are points)
/// using `kernel` at a concrete `bandwidth`.
///
/// The diagonal is included (`w_ii = K(0) = 1`), matching the paper's
/// definition of `W` where `d_i = Σ_j w_ij` sums over all `j` including
/// `j = i`. (The Laplacian `D − W` is unaffected by the diagonal.)
///
/// # Errors
///
/// * [`Error::EmptyInput`] when `points` has no rows.
/// * [`Error::InvalidBandwidth`] when `bandwidth <= 0`.
/// shape: (points.rows, points.rows)
/// hot
/// complexity: O(n^2 * d)
/// deterministic
pub fn affinity_matrix(points: &Matrix, kernel: Kernel, bandwidth: f64) -> Result<Matrix> {
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    let d2 = pairwise_squared_distances(points)?;
    affinity_from_distances(&d2, kernel, bandwidth)
}

/// [`affinity_matrix`] with both the distance and kernel passes sharded
/// across `executor`; output bit-identical to the sequential one.
///
/// # Errors
///
/// Same as [`affinity_matrix`].
/// shape: (points.rows, points.rows)
/// hot
/// complexity: O(n^2 * d)
/// deterministic
pub fn affinity_matrix_with(
    points: &Matrix,
    kernel: Kernel,
    bandwidth: f64,
    executor: &Executor,
) -> Result<Matrix> {
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    let d2 = pairwise_squared_distances_with(points, executor)?;
    affinity_from_distances_with(&d2, kernel, bandwidth, executor)
}

/// Builds the affinity matrix from a precomputed squared-distance matrix.
///
/// Useful when several bandwidths or kernels are swept over the same point
/// set (as in the paper's λ sweeps): the `O(n² d)` distance computation is
/// paid once.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] when `squared_distances` is not square.
/// * [`Error::InvalidBandwidth`] when `bandwidth <= 0`.
/// shape: (squared_distances.rows, squared_distances.cols)
/// hot
/// complexity: O(n^2)
/// deterministic
pub fn affinity_from_distances(
    squared_distances: &Matrix,
    kernel: Kernel,
    bandwidth: f64,
) -> Result<Matrix> {
    if !squared_distances.is_square() {
        return Err(Error::InvalidArgument {
            message: format!(
                "squared-distance matrix must be square, got {}x{}",
                squared_distances.rows(),
                squared_distances.cols()
            ),
        });
    }
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    let n = squared_distances.rows();
    let diagonal = kernel.weight_unchecked(0.0, bandwidth);
    let mut w = Matrix::zeros(n, n);
    for i in 0..n {
        w.set(i, i, diagonal);
        for j in (i + 1)..n {
            let d2 = squared_distances.get(i, j);
            if d2 < 0.0 {
                return Err(Error::InvalidArgument {
                    message: format!("squared distance must be nonnegative, got {d2}"),
                });
            }
            let weight = kernel.weight_unchecked(d2, bandwidth);
            w.set(i, j, weight);
            w.set(j, i, weight);
        }
    }
    Ok(w)
}

/// [`affinity_from_distances`] with the kernel evaluation sharded across
/// `executor`; output bit-identical to the sequential one.
///
/// Each worker evaluates `kernel.weight` over the upper-triangle tail of a
/// block of rows (plus the row's diagonal `K(0)`), in the same order as
/// the sequential double loop; the tails are then mirrored in row order.
///
/// # Errors
///
/// Same as [`affinity_from_distances`].
/// shape: (squared_distances.rows, squared_distances.cols)
/// hot
/// complexity: O(n^2)
/// deterministic
pub fn affinity_from_distances_with(
    squared_distances: &Matrix,
    kernel: Kernel,
    bandwidth: f64,
    executor: &Executor,
) -> Result<Matrix> {
    if executor.is_sequential() {
        return affinity_from_distances(squared_distances, kernel, bandwidth);
    }
    if !squared_distances.is_square() {
        return Err(Error::InvalidArgument {
            message: format!(
                "squared-distance matrix must be square, got {}x{}",
                squared_distances.rows(),
                squared_distances.cols()
            ),
        });
    }
    if !(bandwidth > 0.0) {
        return Err(Error::InvalidBandwidth { value: bandwidth });
    }
    let n = squared_distances.rows();
    let diagonal = kernel.weight_unchecked(0.0, bandwidth);
    // Per row: the diagonal weight K(0) followed by the strict upper tail.
    let tails: Vec<Vec<f64>> = executor.map_chunks(n, row_block(n, executor), |range| {
        let mut rows = Vec::with_capacity(range.len());
        for i in range {
            let mut tail = Vec::with_capacity(n - i);
            tail.push(diagonal);
            for j in (i + 1)..n {
                let d2 = squared_distances.get(i, j);
                if d2 < 0.0 {
                    return Err(Error::InvalidArgument {
                        message: format!("squared distance must be nonnegative, got {d2}"),
                    });
                }
                tail.push(kernel.weight_unchecked(d2, bandwidth));
            }
            rows.push(tail);
        }
        Ok::<_, Error>(rows)
    })?;
    let mut w = Matrix::zeros(n, n);
    for (i, tail) in tails.iter().enumerate() {
        w.set(i, i, tail[0]);
        for (offset, &weight) in tail[1..].iter().enumerate() {
            let j = i + 1 + offset;
            w.set(i, j, weight);
            w.set(j, i, weight);
        }
    }
    Ok(w)
}

/// Convenience wrapper: resolves a [`Bandwidth`] rule and builds the
/// affinity matrix in one call.
///
/// `rate_n` is forwarded to [`Bandwidth::resolve`] (the paper resolves its
/// rate with the labeled sample size).
///
/// # Errors
///
/// Propagates bandwidth-resolution and affinity-construction errors.
/// shape: (points.rows, points.rows)
/// deterministic
pub fn affinity_with_rule(
    points: &Matrix,
    kernel: Kernel,
    bandwidth: Bandwidth,
    rate_n: Option<usize>,
) -> Result<(Matrix, f64)> {
    let h = bandwidth.resolve(points, rate_n)?;
    let w = affinity_matrix(points, kernel, h)?;
    Ok((w, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Matrix {
        Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap()
    }

    #[test]
    fn distances_are_symmetric_with_zero_diagonal() {
        let d2 = pairwise_squared_distances(&triangle()).unwrap();
        assert!(d2.is_symmetric(0.0));
        for i in 0..3 {
            assert_eq!(d2.get(i, i), 0.0);
        }
        assert_eq!(d2.get(0, 1), 1.0);
        assert_eq!(d2.get(1, 2), 2.0);
    }

    #[test]
    fn affinity_is_symmetric_with_unit_diagonal() {
        let w = affinity_matrix(&triangle(), Kernel::Gaussian, 1.0).unwrap();
        assert!(w.is_symmetric(0.0));
        for i in 0..3 {
            assert_eq!(w.get(i, i), 1.0);
        }
        assert!((w.get(0, 1) - (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn affinity_entries_are_in_unit_interval() {
        for kernel in Kernel::all() {
            let w = affinity_matrix(&triangle(), kernel, 0.8).unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    let v = w.get(i, j);
                    assert!((0.0..=1.0).contains(&v), "{kernel} out of range");
                }
            }
        }
    }

    #[test]
    fn compact_kernel_gives_sparse_affinity() {
        // Distance between the two clusters exceeds the bandwidth.
        let pts = Matrix::from_rows(&[&[0.0], &[0.1], &[10.0], &[10.1]]).unwrap();
        let w = affinity_matrix(&pts, Kernel::Boxcar, 1.0).unwrap();
        assert_eq!(w.get(0, 1), 1.0);
        assert_eq!(w.get(0, 2), 0.0);
        assert_eq!(w.get(2, 3), 1.0);
    }

    #[test]
    fn affinity_validates_arguments() {
        assert!(matches!(
            affinity_matrix(&triangle(), Kernel::Gaussian, 0.0),
            Err(Error::InvalidBandwidth { .. })
        ));
        assert!(matches!(
            pairwise_squared_distances(&Matrix::zeros(0, 2)),
            Err(Error::EmptyInput { .. })
        ));
        assert!(affinity_from_distances(&Matrix::zeros(2, 3), Kernel::Gaussian, 1.0).is_err());
    }

    #[test]
    fn precomputed_distances_match_direct_path() {
        let pts = triangle();
        let d2 = pairwise_squared_distances(&pts).unwrap();
        let w_direct = affinity_matrix(&pts, Kernel::Epanechnikov, 2.0).unwrap();
        let w_cached = affinity_from_distances(&d2, Kernel::Epanechnikov, 2.0).unwrap();
        assert!(w_direct.approx_eq(&w_cached, 0.0));
    }

    #[test]
    fn parallel_assembly_is_bit_identical_to_sequential() {
        use gssl_runtime::Executor;
        // Enough rows for several chunks per worker.
        let pts = Matrix::from_fn(60, 3, |i, j| ((i * 7 + j * 3) as f64 * 0.31).sin());
        let d2 = pairwise_squared_distances(&pts).unwrap();
        let w = affinity_matrix(&pts, Kernel::Gaussian, 0.7).unwrap();
        for workers in [1, 2, 3, 4] {
            let executor = Executor::with_workers(workers);
            let d2_par = pairwise_squared_distances_with(&pts, &executor).unwrap();
            assert_eq!(d2_par.as_slice(), d2.as_slice(), "d2 at {workers} workers");
            let w_par = affinity_matrix_with(&pts, Kernel::Gaussian, 0.7, &executor).unwrap();
            assert_eq!(w_par.as_slice(), w.as_slice(), "W at {workers} workers");
            let w_cached =
                affinity_from_distances_with(&d2, Kernel::Gaussian, 0.7, &executor).unwrap();
            assert_eq!(w_cached.as_slice(), w.as_slice());
        }
    }

    #[test]
    fn parallel_assembly_propagates_validation_errors() {
        use gssl_runtime::Executor;
        let executor = Executor::with_workers(2);
        assert!(matches!(
            affinity_matrix_with(&triangle(), Kernel::Gaussian, 0.0, &executor),
            Err(Error::InvalidBandwidth { .. })
        ));
        assert!(matches!(
            pairwise_squared_distances_with(&Matrix::zeros(0, 2), &executor),
            Err(Error::EmptyInput { .. })
        ));
        assert!(affinity_from_distances_with(
            &Matrix::zeros(2, 3),
            Kernel::Gaussian,
            1.0,
            &executor
        )
        .is_err());
    }

    #[test]
    fn rule_wrapper_reports_resolved_bandwidth() {
        let pts = triangle();
        let (w, h) =
            affinity_with_rule(&pts, Kernel::Gaussian, Bandwidth::Fixed(0.5), None).unwrap();
        assert_eq!(h, 0.5);
        assert_eq!(w.rows(), 3);
        let (_, h_rate) =
            affinity_with_rule(&pts, Kernel::Gaussian, Bandwidth::PaperRate, Some(50)).unwrap();
        assert!((h_rate - crate::bandwidth::paper_rate(50, 2).unwrap()).abs() < 1e-15);
    }
}
