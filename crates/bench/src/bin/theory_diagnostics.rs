//! Watches the quantities from the proof of Theorem II.1 converge: the
//! tiny-element bound `‖D₂₂⁻¹W₂₂‖_max`, the Neumann spectral radius, the
//! hard-vs-Nadaraya–Watson coupling gap, and the regime ratio
//! `m/(n h_n^d)` — all as functions of `n` (consistent regime) and of `m`
//! (the regime the paper conjectures inconsistent).

use gssl::theory::TheoryDiagnostics;
use gssl::Problem;
use gssl_bench::runner::CliArgs;
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn diagnostics_for(n: usize, m: usize, seed: u64) -> TheoryDiagnostics {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let h = paper_rate(n, PAPER_DIM).expect("n >= 2");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
    TheoryDiagnostics::compute(&problem, h, PAPER_DIM).expect("diagnostics")
}

fn print_row(label: &str, d: &TheoryDiagnostics) {
    println!(
        "{label:>14}  {:>12.5}  {:>10.4}  {:>12.5}  {:>12.5}  {:>10.4}",
        d.substochastic_max,
        d.spectral_radius,
        d.coupling_gap_max,
        d.solution_gap_max,
        d.regime_ratio
    );
}

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let seed = args.seed.unwrap_or(777);

    println!("== Theorem II.1 diagnostics (Model 1 inputs, Gaussian kernel) ==\n");
    println!(
        "{:>14}  {:>12}  {:>10}  {:>12}  {:>12}  {:>10}",
        "cell", "‖D22'W22‖max", "rho", "coupling", "hard-NW gap", "m/(n h^d)"
    );

    println!("\n-- consistent regime: m = 20 fixed, n grows --");
    let n_grid: &[usize] = if args.full {
        &[20, 50, 100, 200, 500, 1000, 2000]
    } else {
        &[20, 50, 100, 200, 500]
    };
    for &n in n_grid {
        let d = diagnostics_for(n, 20, seed);
        print_row(&format!("n={n}"), &d);
    }

    println!("\n-- conjectured-inconsistent regime: n = 100 fixed, m grows --");
    let m_grid: &[usize] = if args.full {
        &[10, 30, 100, 300, 600, 1000]
    } else {
        &[10, 30, 100, 300]
    };
    for &m in m_grid {
        let d = diagnostics_for(100, m, seed);
        print_row(&format!("m={m}"), &d);
    }

    println!("\nReading: every column shrinks down the first table (the proof's");
    println!("bounds bite as n grows) and the coupling/regime columns grow down");
    println!("the second (m outpacing n h^d breaks the argument).");
}
