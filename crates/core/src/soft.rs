//! The soft criterion (Eq. 2/3/4 of the paper): Laplacian-regularized
//! least squares.
//!
//! ```text
//! min_f Σ_{i≤n} (Y_i − f_i)² + (λ/2) Σ_ij w_ij (f_i − f_j)²
//! ```
//!
//! In matrix form `min_f (f − Y)ᵀ V (f − Y) + λ fᵀ L f` (Eq. 3), with the
//! block-explicit unlabeled solution of Eq. 4:
//!
//! ```text
//! f_U = (D₂₂ − W₂₂ − λ W₂₁ A⁻¹ W₁₂)⁻¹ W₂₁ A⁻¹ Y_n,
//! A = I_n + λ D₁₁ − λ W₁₁.
//! ```
//!
//! Evaluated literally at `λ = 0` this reduces to the hard criterion's
//! Eq. 5 — Proposition II.1. Proposition II.2 shows the criterion is
//! *inconsistent* for large `λ` (at `λ = ∞` it predicts the constant
//! `mean(Y_n)` everywhere on a connected graph).

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_graph::{laplacian, LaplacianKind};
use gssl_linalg::float::is_exactly_zero;
#[cfg(test)]
use gssl_linalg::Matrix;
use gssl_linalg::{strict, Lu, Vector};

/// The soft criterion solver with tuning parameter `λ ≥ 0`.
///
/// ```
/// use gssl::{HardCriterion, Problem, SoftCriterion, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.6, 0.2],
///     &[0.6, 1.0, 0.5],
///     &[0.2, 0.5, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?;
/// // Proposition II.1: at λ = 0 the soft criterion equals the hard one.
/// let soft0 = SoftCriterion::new(0.0)?.fit(&problem)?;
/// let hard = HardCriterion::new().fit(&problem)?;
/// assert!((soft0.unlabeled()[0] - hard.unlabeled()[0]).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoftCriterion {
    lambda: f64,
}

impl SoftCriterion {
    /// Creates a soft-criterion solver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `lambda` is negative or
    /// not finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(Error::InvalidParameter {
                message: format!("lambda must be finite and nonnegative, got {lambda}"),
            });
        }
        Ok(SoftCriterion { lambda })
    }

    /// The tuning parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Solves the criterion via the paper's block form (Eq. 4). Works for
    /// every `λ ≥ 0`, including `λ = 0` where it reproduces the hard
    /// criterion (Proposition II.1).
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the unlabeled block system is
    ///   singular because a component has no labeled anchor.
    /// * [`Error::Linalg`] on numerical failure.
    pub fn fit(&self, problem: &Problem) -> Result<Scores> {
        problem.require_anchored(0.0)?;
        let n = problem.n_labeled();
        let m = problem.n_unlabeled();
        let y = problem.labels_vector();
        if m == 0 {
            // No unlabeled block; the criterion reduces to ridge-like
            // smoothing of the labeled scores.
            let f_l = self.labeled_only_scores(problem, &y)?;
            return Ok(Scores::from_parts(f_l.as_slice(), &[]));
        }

        let blocks = problem.weight_blocks()?;
        let degrees = problem.degrees();

        // A = I_n + λ D₁₁ − λ W₁₁.
        let mut a = blocks.a11.map(|x| -self.lambda * x);
        for i in 0..n {
            a.set(
                i,
                i,
                1.0 + self.lambda * degrees[i] - self.lambda * blocks.a11.get(i, i),
            );
        }
        let a_lu = Lu::factor(&a)?;

        // A⁻¹ Y and A⁻¹ W₁₂.
        let a_inv_y = a_lu.solve(&y)?;
        let a_inv_w12 = a_lu.solve_matrix(&blocks.a12)?;

        // System: D₂₂ − W₂₂ − λ W₂₁ A⁻¹ W₁₂.
        let base = problem.unlabeled_system()?;
        let correction = blocks.a21.matmul(&a_inv_w12)?;
        let system = &base - &(&correction * self.lambda);
        let rhs = blocks.a21.matvec(&a_inv_y)?;
        let f_u = Lu::factor(&system)?.solve(&rhs)?;

        // Labeled block: f_L = A⁻¹ (Y + λ W₁₂ f_U).
        let w12_fu = blocks.a12.matvec(&f_u)?;
        let mut rhs_l = y.clone();
        rhs_l.axpy(self.lambda, &w12_fu)?;
        let f_l = a_lu.solve(&rhs_l)?;

        strict::check_finite("soft criterion labeled output", f_l.as_slice())?;
        strict::check_finite("soft criterion unlabeled output", f_u.as_slice())?;
        Ok(Scores::from_parts(f_l.as_slice(), f_u.as_slice()))
    }

    /// Solves the criterion by assembling the full `(n+m) × (n+m)` system
    /// `(V + λL) f = (Y; 0)` — the literal Eq. 3. Requires `λ > 0`
    /// (at `λ = 0` the full matrix is singular on the unlabeled block; use
    /// [`SoftCriterion::fit`], which implements the block form).
    ///
    /// Exposed separately because the paper's complexity remark compares
    /// the `O((m+n)³)` cost of this path against the `O(m³)` hard solve.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `λ = 0`.
    /// * [`Error::Linalg`] when the system is singular.
    pub fn fit_full_system(&self, problem: &Problem) -> Result<Scores> {
        if is_exactly_zero(self.lambda) {
            return Err(Error::InvalidParameter {
                message: "the full-system path requires lambda > 0; use fit() for lambda = 0"
                    .to_owned(),
            });
        }
        let n = problem.n_labeled();
        let total = problem.len();
        let l = laplacian(problem.weights(), LaplacianKind::Unnormalized)?;
        let mut system = l.map(|x| self.lambda * x);
        for i in 0..n {
            system.set(i, i, system.get(i, i) + 1.0);
        }
        let mut rhs = Vector::zeros(total);
        for (i, &yi) in problem.labels().iter().enumerate() {
            rhs[i] = yi;
        }
        let f = Lu::factor(&system)?.solve(&rhs)?;
        strict::check_finite("soft criterion full-system output", f.as_slice())?;
        Ok(Scores::from_parts(&f.as_slice()[..n], &f.as_slice()[n..]))
    }

    /// Scores when every vertex is labeled: `(I + λL) f = Y`.
    fn labeled_only_scores(&self, problem: &Problem, y: &Vector) -> Result<Vector> {
        if is_exactly_zero(self.lambda) {
            return Ok(y.clone());
        }
        let l = laplacian(problem.weights(), LaplacianKind::Unnormalized)?;
        let mut system = l.map(|x| self.lambda * x);
        for i in 0..problem.len() {
            system.set(i, i, system.get(i, i) + 1.0);
        }
        Ok(Lu::factor(&system)?.solve(y)?)
    }

    /// The objective value of Eq. 2 at a given score vector — useful for
    /// verifying optimality in tests and diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when `scores` has the wrong
    /// length.
    pub fn objective(&self, problem: &Problem, scores: &[f64]) -> Result<f64> {
        if scores.len() != problem.len() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "scores must have {} entries, got {}",
                    problem.len(),
                    scores.len()
                ),
            });
        }
        let loss: f64 = problem
            .labels()
            .iter()
            .zip(scores)
            .map(|(y, f)| (y - f) * (y - f))
            .sum();
        let energy = gssl_graph::dirichlet_energy(problem.weights(), &Vector::from(scores))?;
        Ok(loss + 0.5 * self.lambda * energy)
    }
}

impl TransductiveModel for SoftCriterion {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        SoftCriterion::fit(self, problem)
    }

    fn name(&self) -> String {
        format!("soft criterion (lambda = {})", self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::HardCriterion;

    fn sample_problem() -> Problem {
        let w = Matrix::from_rows(&[
            &[1.0, 0.2, 0.7, 0.1],
            &[0.2, 1.0, 0.3, 0.8],
            &[0.7, 0.3, 1.0, 0.4],
            &[0.1, 0.8, 0.4, 1.0],
        ])
        .unwrap();
        Problem::new(w, vec![1.0, 0.0]).unwrap()
    }

    #[test]
    fn lambda_validation() {
        assert!(SoftCriterion::new(-0.1).is_err());
        assert!(SoftCriterion::new(f64::NAN).is_err());
        assert!(SoftCriterion::new(f64::INFINITY).is_err());
        assert_eq!(SoftCriterion::new(2.0).unwrap().lambda(), 2.0);
    }

    #[test]
    fn proposition_ii1_soft_at_zero_equals_hard() {
        let p = sample_problem();
        let soft = SoftCriterion::new(0.0).unwrap().fit(&p).unwrap();
        let hard = HardCriterion::new().fit(&p).unwrap();
        for (s, h) in soft.unlabeled().iter().zip(hard.unlabeled()) {
            assert!((s - h).abs() < 1e-10);
        }
        // At λ = 0 the labeled scores equal the observations.
        assert_eq!(soft.labeled(), p.labels());
    }

    #[test]
    fn block_form_matches_full_system() {
        let p = sample_problem();
        for &lambda in &[0.01, 0.1, 1.0, 5.0] {
            let soft = SoftCriterion::new(lambda).unwrap();
            let block = soft.fit(&p).unwrap();
            let full = soft.fit_full_system(&p).unwrap();
            for (a, b) in block.all().iter().zip(full.all()) {
                assert!((a - b).abs() < 1e-9, "lambda {lambda}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn full_system_requires_positive_lambda() {
        let p = sample_problem();
        assert!(matches!(
            SoftCriterion::new(0.0).unwrap().fit_full_system(&p),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn solution_minimizes_the_objective() {
        let p = sample_problem();
        let soft = SoftCriterion::new(0.5).unwrap();
        let scores = soft.fit(&p).unwrap();
        let optimum = soft.objective(&p, scores.all()).unwrap();
        // Perturbing any coordinate must not decrease the objective.
        for i in 0..p.len() {
            for &delta in &[0.01, -0.01, 0.1, -0.1] {
                let mut perturbed = scores.all().to_vec();
                perturbed[i] += delta;
                let value = soft.objective(&p, &perturbed).unwrap();
                assert!(
                    value >= optimum - 1e-12,
                    "perturbation at {i} by {delta} improved the objective"
                );
            }
        }
    }

    #[test]
    fn larger_lambda_pulls_unlabeled_scores_toward_label_mean() {
        let p = sample_problem();
        let mean = 0.5; // labels are {1, 0}
        let near = SoftCriterion::new(0.01).unwrap().fit(&p).unwrap();
        let far = SoftCriterion::new(100.0).unwrap().fit(&p).unwrap();
        let spread = |scores: &Scores| {
            scores
                .unlabeled()
                .iter()
                .map(|s| (s - mean).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(spread(&far) < spread(&near));
        // Proposition II.2 limit: at huge λ all scores approach mean(Y).
        for &s in far.all() {
            assert!((s - mean).abs() < 0.05, "score {s} far from label mean");
        }
    }

    #[test]
    fn soft_criterion_smooths_labeled_scores() {
        // Unlike the hard criterion, λ > 0 lets labeled scores deviate
        // from the observations (trading loss for smoothness).
        let p = sample_problem();
        let scores = SoftCriterion::new(1.0).unwrap().fit(&p).unwrap();
        let deviates = scores
            .labeled()
            .iter()
            .zip(p.labels())
            .any(|(f, y)| (f - y).abs() > 1e-3);
        assert!(deviates);
    }

    #[test]
    fn fully_labeled_problem_is_ridge_smoothing() {
        let w = Matrix::from_rows(&[&[1.0, 0.9], &[0.9, 1.0]]).unwrap();
        let p = Problem::new(w, vec![0.0, 1.0]).unwrap();
        let scores = SoftCriterion::new(0.0).unwrap().fit(&p).unwrap();
        assert_eq!(scores.all(), &[0.0, 1.0]);
        let smoothed = SoftCriterion::new(10.0).unwrap().fit(&p).unwrap();
        // Heavy smoothing pulls both toward the common mean 0.5.
        assert!((smoothed.all()[0] - 0.5).abs() < 0.1);
        assert!((smoothed.all()[1] - 0.5).abs() < 0.1);
    }

    #[test]
    fn objective_validates_length() {
        let p = sample_problem();
        let soft = SoftCriterion::new(1.0).unwrap();
        assert!(soft.objective(&p, &[0.0; 2]).is_err());
    }

    #[test]
    fn name_mentions_lambda() {
        assert!(SoftCriterion::new(0.25).unwrap().name().contains("0.25"));
    }
}
