//! Deterministic interleaving harness for the chunk-claim protocol of
//! [`crate::ThreadPool`] (mini-loom).
//!
//! `ThreadPool::map` and `ThreadPool::map_chunks` coordinate their workers
//! through exactly two shared objects: an atomic cursor advanced by one
//! `fetch_add` per claim, and a mutex-protected slot vector written once
//! per claimed chunk. Every observable behaviour of the protocol is
//! therefore a sequence of *atomic steps* — claims and publishes — and for
//! a bounded batch the set of such sequences is finite.
//! [`enumerate_schedules`] walks **all** of them by depth-first search
//! with backtracking, executing the production claim code
//! ([`crate::pool::claim`] at the width chosen by
//! [`crate::pool::chunk_size`]) at every claim step, and checks three
//! safety properties in every schedule:
//!
//! * **disjointness** — no item is ever claimed by two workers;
//! * **exhaustiveness** — every item is claimed and published exactly
//!   once, so no batch slot can be left empty;
//! * **termination** — each worker halts at its first failed claim and is
//!   never scheduled again.
//!
//! [`enumerate_schedules_with_width`] runs the identical search at a
//! caller-chosen chunk width, covering the `map_chunks` protocol where
//! the width is picked by the caller rather than by `chunk_size`.
//!
//! `Ordering::Relaxed` on the cursor is sound precisely because the
//! modification order of a single atomic object is total regardless of
//! ordering strength: the schedules enumerated here cover every order in
//! which the hardware may serialize the `fetch_add`s, and no other data
//! flows through the cursor (results are published under the slots mutex
//! and fenced by the `thread::scope` join). This module is the proof
//! referenced by the `relaxed_ordering` entry in
//! `crates/xtask/analyze.baseline`; `gssl-serve`'s
//! `tests/interleavings.rs` runs it exhaustively over a grid of batch
//! shapes.

use crate::pool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of an exhaustive enumeration: how much of the schedule space
/// was covered. All counters describe *passing* schedules — the search
/// stops at the first violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleReport {
    /// Number of complete schedules enumerated.
    pub schedules: usize,
    /// Atomic steps in the longest schedule.
    pub longest: usize,
    /// Successful chunk claims per schedule (identical in every schedule:
    /// `ceil(len / chunk)`).
    pub chunks: usize,
}

/// Hard cap on the number of schedules a single enumeration may visit;
/// exceeding it is reported as an error rather than an endless run.
const MAX_SCHEDULES: usize = 5_000_000;

/// Where a simulated worker is in the claim/publish loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Worker {
    /// About to execute `claim` on the shared cursor.
    Claiming,
    /// Holds `start..end` locally; about to publish it into the slots.
    Publishing { start: usize, end: usize },
    /// Observed an exhausted cursor; never scheduled again.
    Done,
}

/// Reversible record of one atomic step, so the DFS can backtrack.
#[derive(Debug)]
enum Undo {
    Claimed {
        worker: usize,
        cursor_before: usize,
        start: usize,
        end: usize,
    },
    Exhausted {
        worker: usize,
        cursor_before: usize,
    },
    Published {
        worker: usize,
        start: usize,
        end: usize,
    },
}

struct Sim {
    len: usize,
    chunk: usize,
    cursor: AtomicUsize,
    workers: Vec<Worker>,
    /// `claimed[i]` = worker that claimed item `i` (set at claim time).
    claimed: Vec<Option<usize>>,
    /// `published[i]` = worker that published item `i` (set at publish
    /// time; models the mutex-guarded slot write).
    published: Vec<Option<usize>>,
}

impl Sim {
    fn new(len: usize, workers: usize) -> Self {
        Sim::with_width(len, workers, pool::chunk_size(len, workers))
    }

    fn with_width(len: usize, workers: usize, width: usize) -> Self {
        let threads = workers.min(len).max(1);
        Sim {
            len,
            chunk: width,
            cursor: AtomicUsize::new(0),
            workers: vec![Worker::Claiming; threads],
            claimed: vec![None; len],
            published: vec![None; len],
        }
    }

    /// Executes one atomic step of worker `w` and records how to undo it.
    fn step(&mut self, w: usize) -> Result<Undo, String> {
        if w >= self.workers.len() {
            return Err(format!("scheduled nonexistent worker {w}"));
        }
        match self.workers[w] {
            Worker::Done => Err(format!("worker {w} stepped after termination")),
            Worker::Claiming => {
                let cursor_before = self.cursor.load(Ordering::SeqCst);
                match pool::claim(&self.cursor, self.chunk, self.len) {
                    None => {
                        self.workers[w] = Worker::Done;
                        Ok(Undo::Exhausted {
                            worker: w,
                            cursor_before,
                        })
                    }
                    Some((start, end)) => {
                        if start >= end || end > self.len {
                            return Err(format!(
                                "worker {w} claimed malformed range {start}..{end} of {}",
                                self.len
                            ));
                        }
                        for (i, owner) in self.claimed[start..end].iter_mut().enumerate() {
                            if let Some(other) = owner {
                                return Err(format!(
                                    "item {} claimed by worker {w} and worker {other}",
                                    start + i
                                ));
                            }
                            *owner = Some(w);
                        }
                        self.workers[w] = Worker::Publishing { start, end };
                        Ok(Undo::Claimed {
                            worker: w,
                            cursor_before,
                            start,
                            end,
                        })
                    }
                }
            }
            Worker::Publishing { start, end } => {
                for (i, slot) in self.published[start..end].iter_mut().enumerate() {
                    if let Some(other) = slot {
                        return Err(format!(
                            "slot {} published twice (worker {w} and worker {other})",
                            start + i
                        ));
                    }
                    *slot = Some(w);
                }
                self.workers[w] = Worker::Claiming;
                Ok(Undo::Published {
                    worker: w,
                    start,
                    end,
                })
            }
        }
    }

    /// Reverses the effect of a [`Sim::step`] (LIFO order only).
    fn undo(&mut self, undo: Undo) {
        match undo {
            Undo::Claimed {
                worker,
                cursor_before,
                start,
                end,
            } => {
                // Undo records come from `step`, which validated them.
                debug_assert!(end <= self.claimed.len() && worker < self.workers.len());
                self.cursor.store(cursor_before, Ordering::SeqCst);
                for owner in &mut self.claimed[start..end] {
                    *owner = None;
                }
                self.workers[worker] = Worker::Claiming;
            }
            Undo::Exhausted {
                worker,
                cursor_before,
            } => {
                self.cursor.store(cursor_before, Ordering::SeqCst);
                self.workers[worker] = Worker::Claiming;
            }
            Undo::Published { worker, start, end } => {
                for slot in &mut self.published[start..end] {
                    *slot = None;
                }
                self.workers[worker] = Worker::Publishing { start, end };
            }
        }
    }

    /// Invariants that must hold once every worker has terminated.
    fn check_complete(&self, trace: &[usize]) -> Result<(), String> {
        for (i, (owner, slot)) in self.claimed.iter().zip(&self.published).enumerate() {
            if owner.is_none() {
                return Err(format!("schedule {trace:?}: item {i} never claimed"));
            }
            if slot.is_none() {
                return Err(format!("schedule {trace:?}: item {i} never published"));
            }
            if owner != slot {
                return Err(format!(
                    "schedule {trace:?}: item {i} claimed by {owner:?} but published by {slot:?}"
                ));
            }
        }
        if self.cursor.load(Ordering::SeqCst) < self.len {
            return Err(format!(
                "schedule {trace:?}: all workers halted with cursor short of {}",
                self.len
            ));
        }
        Ok(())
    }
}

/// Exhaustively enumerates every interleaving of claim/publish steps for a
/// batch of `len` items on a pool of `workers` threads at the production
/// [`ThreadPool::map`](crate::ThreadPool::map) chunk width, checking the
/// protocol invariants in each one. Returns coverage statistics, or a
/// description of the first violated invariant (including the offending
/// schedule as a sequence of worker indices).
///
/// The schedule space grows exponentially in `len × workers`; keep bounds
/// small (`len ≤ 8`, `workers ≤ 3` finishes well under a second). An
/// enumeration that would exceed an internal safety cap is reported as an
/// error instead of running unbounded.
///
/// # Errors
///
/// Returns a human-readable message when an invariant is violated or the
/// schedule space exceeds the safety cap.
pub fn enumerate_schedules(len: usize, workers: usize) -> Result<ScheduleReport, String> {
    if workers == 0 {
        return Err("enumerate_schedules requires at least one worker".to_owned());
    }
    run(Sim::new(len, workers))
}

/// Same exhaustive search as [`enumerate_schedules`], but at a
/// caller-chosen chunk `width` — the configuration exercised by
/// [`ThreadPool::map_chunks`](crate::ThreadPool::map_chunks), where the
/// caller (not `chunk_size`) picks the claim stride.
///
/// # Errors
///
/// Returns a human-readable message when `workers` or `width` is zero, an
/// invariant is violated, or the schedule space exceeds the safety cap.
pub fn enumerate_schedules_with_width(
    len: usize,
    workers: usize,
    width: usize,
) -> Result<ScheduleReport, String> {
    if workers == 0 {
        return Err("enumerate_schedules_with_width requires at least one worker".to_owned());
    }
    if width == 0 {
        return Err("enumerate_schedules_with_width requires a nonzero chunk width".to_owned());
    }
    run(Sim::with_width(len, workers, width))
}

fn run(mut sim: Sim) -> Result<ScheduleReport, String> {
    let mut report = ScheduleReport {
        schedules: 0,
        longest: 0,
        chunks: if sim.chunk == 0 {
            0
        } else {
            sim.len.div_ceil(sim.chunk)
        },
    };
    let mut trace = Vec::new();
    dfs(&mut sim, &mut trace, &mut report)?;
    Ok(report)
}

fn dfs(sim: &mut Sim, trace: &mut Vec<usize>, report: &mut ScheduleReport) -> Result<(), String> {
    let runnable: Vec<usize> = sim
        .workers
        .iter()
        .enumerate()
        .filter(|(_, state)| **state != Worker::Done)
        .map(|(w, _)| w)
        .collect();
    if runnable.is_empty() {
        sim.check_complete(trace)?;
        report.schedules += 1;
        if report.schedules > MAX_SCHEDULES {
            return Err(format!(
                "schedule space exceeds safety cap of {MAX_SCHEDULES}; shrink the batch"
            ));
        }
        report.longest = report.longest.max(trace.len());
        return Ok(());
    }
    for w in runnable {
        let undo = sim.step(w)?;
        trace.push(w);
        dfs(sim, trace, report)?;
        trace.pop();
        sim.undo(undo);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_workers_tiny_batch_is_exhaustive_and_clean() {
        let report = enumerate_schedules(3, 2).unwrap();
        // chunk_size(3, 2) = 1: three claims + publishes + two failed
        // claims = 8 atomic steps split across two workers.
        assert_eq!(report.chunks, 3);
        assert_eq!(report.longest, 8);
        assert!(report.schedules > 10, "got {}", report.schedules);
    }

    #[test]
    fn single_worker_has_one_schedule() {
        let report = enumerate_schedules(4, 1).unwrap();
        assert_eq!(report.schedules, 1);
        // chunk_size(4, 1) = 1: four claim/publish pairs + one failed claim.
        assert_eq!(report.longest, 9);
    }

    #[test]
    fn empty_batch_terminates_immediately() {
        let report = enumerate_schedules(0, 2).unwrap();
        assert_eq!(report.chunks, 0);
        assert_eq!(report.longest, 1);
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn zero_workers_is_an_error() {
        assert!(enumerate_schedules(3, 0).is_err());
        assert!(enumerate_schedules_with_width(3, 0, 1).is_err());
    }

    #[test]
    fn zero_width_is_an_error() {
        assert!(enumerate_schedules_with_width(3, 2, 0).is_err());
    }

    #[test]
    fn wide_chunks_cover_in_fewer_claims() {
        // chunk_size(16, 2) = 2: 8 chunks of width 2.
        let report = enumerate_schedules(16, 2).unwrap();
        assert_eq!(report.chunks, 8);
    }

    #[test]
    fn caller_chosen_widths_are_clean() {
        // The map_chunks configuration: arbitrary caller widths, including
        // a ragged final chunk and a width wider than the batch.
        for (len, workers, width) in [(5, 2, 2), (6, 2, 3), (6, 3, 2), (4, 2, 8), (7, 2, 3)] {
            let report = enumerate_schedules_with_width(len, workers, width).unwrap();
            assert_eq!(
                report.chunks,
                len.div_ceil(width),
                "len = {len}, workers = {workers}, width = {width}"
            );
            assert!(report.schedules >= 1);
        }
    }

    #[test]
    fn schedule_count_grows_with_workers() {
        let two = enumerate_schedules(3, 2).unwrap();
        let three = enumerate_schedules(3, 3).unwrap();
        assert!(three.schedules > two.schedules);
    }

    #[test]
    fn harness_detects_a_broken_claim_protocol() {
        // Sanity-check the checker itself: a cursor that re-issues the
        // same chunk must be caught as a disjointness violation.
        let mut sim = Sim::new(2, 2);
        sim.chunk = 1;
        let first = sim.step(0).unwrap();
        // Roll the cursor back as if the fetch_add were lost, then let the
        // second worker claim: it must collide with worker 0's claim.
        match first {
            Undo::Claimed { cursor_before, .. } => {
                sim.cursor.store(cursor_before, Ordering::SeqCst);
            }
            _ => unreachable!("first claim on a non-empty batch succeeds"),
        }
        let second = sim.step(1);
        assert!(second.is_err(), "lost update went undetected");
        let message = second.unwrap_err();
        assert!(message.contains("claimed by"), "unexpected: {message}");
    }
}
