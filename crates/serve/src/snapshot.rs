//! Versioned binary snapshot/restore of a fitted [`ShardedEngine`].
//!
//! A snapshot captures everything a cold process needs to serve without
//! refitting: the engine configuration, the fitted points, the shard
//! plan, and — the expensive part — every shard's cached factorization
//! state (`system`, explicit `inverse`, `rhs`, `scores`, label
//! bookkeeping). Restore recomputes only the cheap `O(n²·d)` kernel
//! assembly (graph, weights, degrees, spatial index) and adopts the
//! cached factorizations verbatim, so restored predictions are
//! bitwise-identical to the snapshotted engine's and cold start skips
//! every `O(m³)` factorization.
//!
//! # Format
//!
//! Little-endian throughout. The layout is:
//!
//! ```text
//! magic  b"GSSLSNAP"                      8 bytes
//! version u32                             (currently 1)
//! config  kernel tag, bandwidth, criterion tag + lambda,
//!         refactor_every, residual_tolerance, workers,
//!         query-path tag + k
//! shape   multiclass flag, class_count, epoch, n_nodes, dim, k
//! points  n_nodes × dim f64
//! scores  n_nodes × k f64 (the published epoch's global plane)
//! shards  per shard: members, fit-time labeled count, then the
//!         engine state: labeled mask, targets, local unlabeled list,
//!         system, optional inverse, rhs, shard scores, update counter
//! trailer FNV-1a 64 checksum of all preceding bytes
//! ```
//!
//! Only the [`EngineSolver::Direct`] route is snapshottable: the policy
//! route's backend choice depends on a nine-field [`gssl_linalg`] policy
//! whose serialization is not stable, and its iterative backend keeps no
//! inverse to cache. Snapshotting an `Auto`-routed engine returns
//! [`Error::Snapshot`]. The version field gates every future layout
//! change: readers reject unknown versions instead of misparsing.

use crate::config::{EngineConfig, EngineSolver, QueryPath, ServeCriterion};
use crate::engine::ServingEngine;
use crate::error::{Error, Result};
use crate::shard::ShardPlan;
use crate::sharded::ShardedEngine;
use gssl_graph::Kernel;
use gssl_linalg::Matrix;

/// Magic prefix identifying a serving-engine snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GSSLSNAP";
/// Current snapshot layout version.
pub const SNAPSHOT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(4096),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn matrix(&mut self, m: &Matrix) {
        self.usize(m.rows());
        self.usize(m.cols());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                self.f64(m.get(i, j));
            }
        }
    }

    fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        self.u64(checksum);
        self.buf
    }
}

fn kernel_tag(kernel: Kernel) -> Result<u8> {
    match kernel {
        Kernel::Gaussian => Ok(0),
        Kernel::Epanechnikov => Ok(1),
        Kernel::Boxcar => Ok(2),
        Kernel::Triangular => Ok(3),
        Kernel::Tricube => Ok(4),
        Kernel::Quartic => Ok(5),
        other => Err(Error::Snapshot {
            message: format!("kernel {other:?} has no snapshot tag assigned"),
        }),
    }
}

fn kernel_from_tag(tag: u8) -> Result<Kernel> {
    match tag {
        0 => Ok(Kernel::Gaussian),
        1 => Ok(Kernel::Epanechnikov),
        2 => Ok(Kernel::Boxcar),
        3 => Ok(Kernel::Triangular),
        4 => Ok(Kernel::Tricube),
        5 => Ok(Kernel::Quartic),
        other => Err(Error::Snapshot {
            message: format!("unknown kernel tag {other}"),
        }),
    }
}

fn write_config(w: &mut Writer, config: &EngineConfig) -> Result<()> {
    if config.solver != EngineSolver::Direct {
        return Err(Error::Snapshot {
            message: "only EngineSolver::Direct engines are snapshottable \
                      (policy-routed backends keep no stable cached state)"
                .to_owned(),
        });
    }
    w.u8(kernel_tag(config.kernel)?);
    w.f64(config.bandwidth);
    match config.criterion {
        ServeCriterion::Hard => {
            w.u8(0);
            w.f64(0.0);
        }
        ServeCriterion::Soft { lambda } => {
            w.u8(1);
            w.f64(lambda);
        }
    }
    w.usize(config.refactor_every);
    w.f64(config.residual_tolerance);
    w.usize(config.workers);
    match config.query_path {
        QueryPath::Dense => {
            w.u8(0);
            w.usize(0);
        }
        QueryPath::KNearest { k } => {
            w.u8(1);
            w.usize(k);
        }
        QueryPath::WithinSupport => {
            w.u8(2);
            w.usize(0);
        }
    }
    Ok(())
}

fn write_shard_engine(w: &mut Writer, engine: &ServingEngine) {
    let labeled = engine.labeled_mask();
    w.usize(labeled.len());
    for &flag in labeled {
        w.u8(u8::from(flag));
    }
    w.matrix(engine.targets_matrix());
    let unlabeled = engine.unlabeled_indices();
    w.usize(unlabeled.len());
    for &u in unlabeled {
        w.usize(u);
    }
    w.matrix(engine.system_matrix());
    match engine.inverse_matrix() {
        Some(inv) => {
            w.u8(1);
            w.matrix(inv);
        }
        None => w.u8(0),
    }
    w.matrix(engine.rhs_matrix());
    w.matrix(engine.scores());
    w.usize(engine.updates_since_refactor());
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(len).ok_or_else(|| Error::Snapshot {
            message: "length overflow while decoding".to_owned(),
        })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::Snapshot {
                message: format!(
                    "truncated snapshot: wanted {len} bytes at offset {}, have {}",
                    self.pos,
                    self.bytes.len()
                ),
            })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let raw = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(raw);
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64> {
        let raw = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(u64::from_le_bytes(arr))
    }

    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| Error::Snapshot {
            message: format!("value {v} does not fit this platform's usize"),
        })
    }

    /// A length that will be used to size an allocation: additionally
    /// bounded by the remaining byte count so a corrupt header cannot
    /// request an absurd reservation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize> {
        let v = self.usize()?;
        let remaining = self.bytes.len().saturating_sub(self.pos);
        if v.saturating_mul(elem_bytes.max(1)) > remaining {
            return Err(Error::Snapshot {
                message: format!("declared length {v} exceeds the {remaining} bytes remaining"),
            });
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64> {
        let raw = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(raw);
        Ok(f64::from_le_bytes(arr))
    }

    fn matrix(&mut self) -> Result<Matrix> {
        let rows = self.len(8)?;
        let cols = self.len(8)?;
        let total = rows.checked_mul(cols).ok_or_else(|| Error::Snapshot {
            message: format!("matrix shape {rows}×{cols} overflows"),
        })?;
        if total.saturating_mul(8) > self.bytes.len().saturating_sub(self.pos) {
            return Err(Error::Snapshot {
                message: format!("matrix shape {rows}×{cols} exceeds remaining bytes"),
            });
        }
        let mut values = Vec::with_capacity(total);
        for _ in 0..total {
            values.push(self.f64()?);
        }
        Ok(Matrix::from_fn(rows, cols, |i, j| values[i * cols + j]))
    }
}

fn read_config(r: &mut Reader<'_>) -> Result<EngineConfig> {
    let kernel = kernel_from_tag(r.u8()?)?;
    let bandwidth = r.f64()?;
    let criterion_tag = r.u8()?;
    let lambda = r.f64()?;
    let criterion = match criterion_tag {
        0 => ServeCriterion::Hard,
        1 => ServeCriterion::Soft { lambda },
        other => {
            return Err(Error::Snapshot {
                message: format!("unknown criterion tag {other}"),
            });
        }
    };
    let refactor_every = r.usize()?;
    let residual_tolerance = r.f64()?;
    let workers = r.usize()?;
    let path_tag = r.u8()?;
    let k = r.usize()?;
    let query_path = match path_tag {
        0 => QueryPath::Dense,
        1 => QueryPath::KNearest { k },
        2 => QueryPath::WithinSupport,
        other => {
            return Err(Error::Snapshot {
                message: format!("unknown query-path tag {other}"),
            });
        }
    };
    Ok(EngineConfig {
        kernel,
        bandwidth,
        criterion,
        refactor_every,
        residual_tolerance,
        workers,
        solver: EngineSolver::Direct,
        query_path,
    })
}

struct ShardEngineParts {
    labeled: Vec<bool>,
    targets: Matrix,
    unlabeled: Vec<usize>,
    system: Matrix,
    inverse: Option<Matrix>,
    rhs: Matrix,
    scores: Matrix,
    updates_since_refactor: usize,
}

fn read_shard_engine(r: &mut Reader<'_>) -> Result<ShardEngineParts> {
    let labeled_len = r.len(1)?;
    let mut labeled = Vec::with_capacity(labeled_len);
    for _ in 0..labeled_len {
        labeled.push(r.u8()? != 0);
    }
    let targets = r.matrix()?;
    let unlabeled_len = r.len(8)?;
    let mut unlabeled = Vec::with_capacity(unlabeled_len);
    for _ in 0..unlabeled_len {
        unlabeled.push(r.usize()?);
    }
    let system = r.matrix()?;
    let inverse = if r.u8()? != 0 {
        Some(r.matrix()?)
    } else {
        None
    };
    let rhs = r.matrix()?;
    let scores = r.matrix()?;
    let updates_since_refactor = r.usize()?;
    Ok(ShardEngineParts {
        labeled,
        targets,
        unlabeled,
        system,
        inverse,
        rhs,
        scores,
        updates_since_refactor,
    })
}

impl ShardedEngine {
    /// Serializes the engine's full fitted state — configuration, points,
    /// shard plan, and every shard's cached factorization — into the
    /// versioned, checksummed binary layout described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] for engines whose state cannot be
    /// captured (any non-[`EngineSolver::Direct`] solver route).
    /// deterministic
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        let model = self.current_model();
        let mut w = Writer::new();
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        write_config(&mut w, self.config())?;
        w.u8(u8::from(self.is_multiclass()));
        w.usize(self.class_count());
        w.u64(model.id);
        let points = self.graph().points();
        w.matrix(points);
        w.matrix(&model.scores);
        w.usize(self.plan().n_shards());
        for (shard, engine) in self.plan().shards().iter().zip(&model.engines) {
            w.usize(shard.len());
            for &member in shard.members() {
                w.usize(member);
            }
            w.usize(shard.n_labeled());
            write_shard_engine(&mut w, engine);
        }
        Ok(w.finish())
    }

    /// Rehydrates an engine from [`ShardedEngine::snapshot`] bytes
    /// without performing a single factorization: only the kernel graph,
    /// weight matrix, degree vector and (if configured) spatial index are
    /// recomputed from the points. Restored predictions are
    /// bitwise-identical to the snapshotted engine's.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Snapshot`] for a bad magic, unknown version,
    /// truncated stream, checksum mismatch, or internally inconsistent
    /// shard records.
    /// deterministic
    pub fn restore(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 {
            return Err(Error::Snapshot {
                message: format!("{} bytes is too short for a snapshot", bytes.len()),
            });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let mut expected = [0u8; 8];
        expected.copy_from_slice(trailer);
        let expected = u64::from_le_bytes(expected);
        let actual = fnv1a(body);
        if actual != expected {
            return Err(Error::Snapshot {
                message: format!(
                    "checksum mismatch: stored {expected:016x}, computed {actual:016x}"
                ),
            });
        }

        let mut r = Reader::new(body);
        if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(Error::Snapshot {
                message: "bad magic: not a serving-engine snapshot".to_owned(),
            });
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::Snapshot {
                message: format!(
                    "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
                ),
            });
        }
        let config = read_config(&mut r)?;
        let multiclass = r.u8()? != 0;
        let class_count = r.usize()?;
        let epoch = r.u64()?;
        let points = r.matrix()?;
        let scores = r.matrix()?;
        let n_nodes = points.rows();
        if scores.rows() != n_nodes {
            return Err(Error::Snapshot {
                message: format!(
                    "global scores have {} rows for {n_nodes} points",
                    scores.rows()
                ),
            });
        }

        let n_shards = r.len(8)?;
        let mut shards = Vec::with_capacity(n_shards);
        let mut engines = Vec::with_capacity(n_shards);
        // Per-shard engines were fitted sequential and dense-path (the
        // global plane owns the executor and the index) — mirror that.
        let shard_config = config.clone().workers(1).query_path(QueryPath::Dense);
        for _ in 0..n_shards {
            let member_len = r.len(8)?;
            let mut members = Vec::with_capacity(member_len);
            for _ in 0..member_len {
                let member = r.usize()?;
                // Guard before any row extraction: in range, and strictly
                // ascending as `Shard::local_index_of`'s binary search
                // requires. `ShardPlan::from_parts` re-checks coverage
                // across shards at the end, but rows are pulled per shard
                // below, so the bound must hold here already.
                if member >= n_nodes {
                    return Err(Error::Snapshot {
                        message: format!("shard member {member} out of range for {n_nodes} nodes"),
                    });
                }
                if members.last().is_some_and(|&prev| prev >= member) {
                    return Err(Error::Snapshot {
                        message: format!("shard members are not strictly ascending at {member}"),
                    });
                }
                members.push(member);
            }
            let fit_labeled = r.usize()?;
            let parts = read_shard_engine(&mut r)?;
            if parts.labeled.len() != members.len() {
                return Err(Error::Snapshot {
                    message: format!(
                        "shard with {} members carries a {}-entry label mask",
                        members.len(),
                        parts.labeled.len()
                    ),
                });
            }
            let shard = ShardPlan::shard_from_parts(members, fit_labeled);
            let shard_points = shard.extract_rows(&points);
            engines.push(ServingEngine::from_snapshot_parts(
                &shard_points,
                shard_config.clone(),
                multiclass,
                class_count,
                parts.labeled,
                parts.targets,
                parts.unlabeled,
                parts.system,
                parts.inverse,
                parts.rhs,
                parts.scores,
                parts.updates_since_refactor,
            )?);
            shards.push(shard);
        }
        if r.pos != body.len() {
            return Err(Error::Snapshot {
                message: format!(
                    "{} trailing bytes after the last shard record",
                    body.len() - r.pos
                ),
            });
        }
        let plan = ShardPlan::from_parts(shards, n_nodes)?;
        ShardedEngine::from_restored(
            &points,
            config,
            multiclass,
            class_count,
            plan,
            engines,
            scores,
            epoch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::QueryPoint;
    use gssl_linalg::SolverPolicy;

    fn two_cluster_points() -> Matrix {
        let coords = [0.0, 8.0, 0.5, 8.5, 0.9, 8.9];
        Matrix::from_fn(coords.len(), 1, |i, _| coords[i])
    }

    fn fitted() -> ShardedEngine {
        ShardedEngine::fit(
            &two_cluster_points(),
            &[0.0, 1.0],
            EngineConfig::new(Kernel::Epanechnikov, 1.5).workers(1),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_is_bitwise() {
        let engine = fitted();
        engine.observe_label(2, 0.0).unwrap();
        let bytes = engine.snapshot().unwrap();
        let restored = ShardedEngine::restore(&bytes).unwrap();
        assert_eq!(restored.epoch(), engine.epoch());
        assert_eq!(restored.n_shards(), engine.n_shards());
        let a = engine.scores();
        let b = restored.scores();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(a.get(i, j).to_bits(), b.get(i, j).to_bits());
            }
        }
        // Keep queries inside the clusters' kernel support.
        let queries: Vec<QueryPoint> = (0..10)
            .map(|q| {
                let offset = if q % 2 == 0 { 0.0 } else { 8.0 };
                QueryPoint::new(vec![offset + 0.1 * q as f64])
            })
            .collect();
        assert_eq!(
            engine.predict_batch(&queries).unwrap(),
            restored.predict_batch(&queries).unwrap()
        );
        // Restored engines keep folding labels.
        restored.observe_label(4, 1.0).unwrap();
        assert_eq!(restored.epoch(), engine.epoch() + 1);
    }

    #[test]
    fn snapshot_rejects_policy_solver() {
        let engine = ShardedEngine::fit(
            &two_cluster_points(),
            &[0.0, 1.0],
            EngineConfig::new(Kernel::Epanechnikov, 1.5)
                .workers(1)
                .solver(EngineSolver::Auto(SolverPolicy::default())),
        )
        .unwrap();
        assert!(matches!(engine.snapshot(), Err(Error::Snapshot { .. })));
    }

    #[test]
    fn restore_rejects_corruption() {
        let engine = fitted();
        let bytes = engine.snapshot().unwrap();

        // Truncation.
        assert!(matches!(
            ShardedEngine::restore(&bytes[..bytes.len() / 2]),
            Err(Error::Snapshot { .. })
        ));
        assert!(matches!(
            ShardedEngine::restore(&[]),
            Err(Error::Snapshot { .. })
        ));

        // Bit flip in the body breaks the checksum.
        let mut flipped = bytes.clone();
        flipped[40] ^= 0x5a;
        assert!(matches!(
            ShardedEngine::restore(&flipped),
            Err(Error::Snapshot { .. })
        ));

        // Bad magic (checksum recomputed so only the magic is wrong).
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        let body_len = bad_magic.len() - 8;
        let sum = fnv1a(&bad_magic[..body_len]).to_le_bytes();
        bad_magic[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            ShardedEngine::restore(&bad_magic),
            Err(Error::Snapshot { .. })
        ));

        // Unknown version, checksum intact.
        let mut bad_version = bytes;
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bad_version.len() - 8;
        let sum = fnv1a(&bad_version[..body_len]).to_le_bytes();
        bad_version[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            ShardedEngine::restore(&bad_version),
            Err(Error::Snapshot { .. })
        ));
    }

    #[test]
    fn header_constants_are_stable() {
        let bytes = fitted().snapshot().unwrap();
        assert_eq!(&bytes[..8], b"GSSLSNAP");
        assert_eq!(
            u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            SNAPSHOT_VERSION
        );
    }
}
