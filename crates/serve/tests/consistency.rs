//! Integration tests: the serving engine must agree with the transductive
//! criteria it caches, and its rank-1 label updates must match a full
//! refit to tight tolerance (ISSUE acceptance: 1e-10 on a 50-point
//! problem; batch predictions vs direct refit to 1e-8).

use gssl::{HardCriterion, Problem, SoftCriterion};
use gssl_datasets::synthetic::two_moons;
use gssl_datasets::SemiSupervisedData;
use gssl_graph::Kernel;
use gssl_linalg::Matrix;
use gssl_serve::{EngineConfig, QueryPoint, ServeCriterion, ServingEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BANDWIDTH: f64 = 0.7;

/// Two-moons data arranged labeled-first with the labeled set strided
/// across the whole index range, so both classes are represented (the raw
/// generator orders one moon before the other).
fn moons(count: usize, n_labeled: usize, seed: u64) -> SemiSupervisedData {
    let ds = two_moons(count, 0.08, &mut StdRng::seed_from_u64(seed)).expect("two_moons");
    let stride = count / n_labeled;
    let labeled: Vec<usize> = (0..n_labeled).map(|i| i * stride).collect();
    ds.arrange(&labeled).expect("arrange")
}

/// True target of arranged node `i` (labeled or hidden).
fn target_of(ssl: &SemiSupervisedData, i: usize) -> f64 {
    let n = ssl.n_labeled();
    if i < n {
        ssl.labels[i]
    } else {
        ssl.hidden_targets[i - n]
    }
}

/// Pure rank-1 path: periodic fallback off, residual guard slack enough
/// that it never trips on these problem sizes.
fn rank1_only_config() -> EngineConfig {
    EngineConfig::new(Kernel::Gaussian, BANDWIDTH)
        .workers(1)
        .refactor_every(0)
        .residual_tolerance(1e-3)
}

#[test]
fn hard_engine_fit_matches_hard_criterion() {
    let ssl = moons(40, 8, 7);
    let engine =
        ServingEngine::fit(&ssl.inputs, &ssl.labels, rank1_only_config()).expect("engine fit");
    let problem = Problem::new(
        engine.graph().weights().expect("weights"),
        ssl.labels.clone(),
    )
    .expect("problem");
    let direct = HardCriterion::new().fit(&problem).expect("criterion fit");
    // Guard against the degenerate all-identical-labels arrangement: the
    // comparison is only meaningful if the scores vary.
    assert!(ssl.labels.iter().any(|&y| y >= 0.5));
    assert!(ssl.labels.iter().any(|&y| y < 0.5));
    for (i, &expected) in direct.all().iter().enumerate() {
        let got = engine.scores().get(i, 0);
        assert!(
            (got - expected).abs() < 1e-10,
            "node {i}: engine {got} vs criterion {expected}"
        );
    }
}

#[test]
fn soft_engine_fit_matches_full_system_criterion() {
    let ssl = moons(30, 6, 11);
    let lambda = 0.5;
    let config = rank1_only_config().criterion(ServeCriterion::Soft { lambda });
    let engine = ServingEngine::fit(&ssl.inputs, &ssl.labels, config).expect("engine fit");
    let problem = Problem::new(
        engine.graph().weights().expect("weights"),
        ssl.labels.clone(),
    )
    .expect("problem");
    let direct = SoftCriterion::new(lambda)
        .expect("soft criterion")
        .fit_full_system(&problem)
        .expect("full-system fit");
    for (i, &expected) in direct.all().iter().enumerate() {
        let got = engine.scores().get(i, 0);
        assert!(
            (got - expected).abs() < 1e-10,
            "node {i}: engine {got} vs full system {expected}"
        );
    }
}

/// The ISSUE's headline acceptance test: on a 50-point problem, a chain
/// of Sherman–Morrison label updates stays within 1e-10 of a twin engine
/// that fully refactors after every update.
#[test]
fn hard_rank1_chain_matches_full_refit_to_1e10() {
    let ssl = moons(50, 10, 3);
    let mut streamed =
        ServingEngine::fit(&ssl.inputs, &ssl.labels, rank1_only_config()).expect("fit");
    let mut refitted =
        ServingEngine::fit(&ssl.inputs, &ssl.labels, rank1_only_config()).expect("fit");

    for &node in &[12usize, 35, 49, 20, 41, 17, 28, 33] {
        let y = target_of(&ssl, node);
        streamed.observe_label(node, y).expect("rank-1 update");
        refitted.observe_label(node, y).expect("twin update");
        refitted.refit().expect("twin refit");
        for i in 0..streamed.n_nodes() {
            let a = streamed.scores().get(i, 0);
            let b = refitted.scores().get(i, 0);
            assert!(
                (a - b).abs() < 1e-10,
                "after labeling {node}, node {i}: rank-1 {a} vs refit {b}"
            );
        }
    }
    // The streamed engine never refactored: one fit-time factorization.
    let m = streamed.metrics();
    assert_eq!(m.factorizations, 1);
    assert_eq!(m.guarded_refactors, 0);
    assert_eq!(m.rank1_updates, 8);
}

#[test]
fn soft_rank1_chain_matches_full_refit_to_1e10() {
    let ssl = moons(50, 10, 5);
    let config = rank1_only_config().criterion(ServeCriterion::Soft { lambda: 0.3 });
    let mut streamed = ServingEngine::fit(&ssl.inputs, &ssl.labels, config.clone()).expect("fit");
    let mut refitted = ServingEngine::fit(&ssl.inputs, &ssl.labels, config).expect("fit");

    for &node in &[13usize, 44, 27, 38, 19, 31] {
        let y = target_of(&ssl, node);
        streamed.observe_label(node, y).expect("rank-1 update");
        refitted.observe_label(node, y).expect("twin update");
        refitted.refit().expect("twin refit");
        for i in 0..streamed.n_nodes() {
            let a = streamed.scores().get(i, 0);
            let b = refitted.scores().get(i, 0);
            assert!(
                (a - b).abs() < 1e-10,
                "after labeling {node}, node {i}: rank-1 {a} vs refit {b}"
            );
        }
    }
    assert_eq!(streamed.metrics().factorizations, 1);
    assert_eq!(streamed.metrics().guarded_refactors, 0);
}

/// Acceptance: batch predictions from the long-lived engine match a
/// direct refit (fresh engine over the same labeled set, sequential
/// predictions) to 1e-8 — including after streamed label updates.
#[test]
fn batch_predictions_match_direct_refit_to_1e8() {
    let ssl = moons(40, 8, 13);
    let n = ssl.n_labeled();
    let mut engine =
        ServingEngine::fit(&ssl.inputs, &ssl.labels, rank1_only_config().workers(4)).expect("fit");
    let streamed_nodes = [15usize, 33, 22, 39];
    for &node in &streamed_nodes {
        engine
            .observe_label(node, target_of(&ssl, node))
            .expect("update");
    }

    // Direct refit: rebuild from scratch with the streamed labels moved to
    // the front (labeled-first layout), then answer the same queries
    // sequentially.
    let labeled: Vec<usize> = (0..n).chain(streamed_nodes.iter().copied()).collect();
    let mut order = labeled.clone();
    for i in 0..ssl.inputs.rows() {
        if !labeled.contains(&i) {
            order.push(i);
        }
    }
    let permuted = Matrix::from_fn(ssl.inputs.rows(), ssl.inputs.cols(), |r, c| {
        ssl.inputs.get(order[r], c)
    });
    let labels: Vec<f64> = labeled.iter().map(|&i| target_of(&ssl, i)).collect();
    let direct = ServingEngine::fit(&permuted, &labels, rank1_only_config()).expect("direct refit");

    // Fitted scores agree under the permutation…
    for (r, &original) in order.iter().enumerate() {
        let a = engine.scores().get(original, 0);
        let b = direct.scores().get(r, 0);
        assert!(
            (a - b).abs() < 1e-8,
            "node {original}: streamed {a} vs direct refit {b}"
        );
    }

    // …and so do out-of-sample predictions for a query sweep.
    let queries: Vec<QueryPoint> = (0..60)
        .map(|i| QueryPoint::new(vec![-1.5 + 0.06 * i as f64, -0.8 + 0.03 * i as f64]))
        .collect();
    let streamed_out = engine.predict_batch(&queries).expect("batch predict");
    let direct_out = direct.predict_batch(&queries).expect("direct predict");
    for (qi, (a, b)) in streamed_out.iter().zip(&direct_out).enumerate() {
        assert!(
            (a.score - b.score).abs() < 1e-8,
            "query {qi}: streamed {} vs direct {}",
            a.score,
            b.score
        );
    }
    // Still only the fit-time factorization on the streamed engine's
    // query path.
    assert_eq!(engine.metrics().factorizations, 1);
}

/// Degenerate toy from the ISSUE: all inputs identical. The hard
/// criterion on the resulting complete uniform graph assigns every
/// unlabeled node mean(Y_n), and the out-of-sample extension at the
/// shared coordinate returns mean(Y_n) as well — before and after
/// streamed updates.
#[test]
fn identical_inputs_toy_returns_label_mean() {
    let points = Matrix::from_fn(6, 2, |_, _| 1.25);
    let labels = [1.0, 0.0, 1.0];
    let mut engine = ServingEngine::fit(&points, &labels, rank1_only_config()).expect("fit");
    let mean = 2.0 / 3.0;
    for i in 3..6 {
        assert!(
            (engine.scores().get(i, 0) - mean).abs() < 1e-10,
            "unlabeled node {i} should sit at mean(Y_n)"
        );
    }
    let out = engine
        .predict_batch(&[QueryPoint::new(vec![1.25, 1.25])])
        .expect("predict");
    // Prediction = (Σ labeled y + Σ unlabeled mean) / N = mean(Y_n).
    assert!((out[0].score - mean).abs() < 1e-10);

    // Streaming one more label shifts the mean to 3/4 and the rank-1
    // update must track it exactly.
    engine.observe_label(4, 1.0).expect("update");
    let mean = 0.75;
    for i in [3usize, 5] {
        assert!(
            (engine.scores().get(i, 0) - mean).abs() < 1e-10,
            "unlabeled node {i} after update"
        );
    }
    let out = engine
        .predict_batch(&[QueryPoint::new(vec![1.25, 1.25])])
        .expect("predict");
    assert!((out[0].score - mean).abs() < 1e-10);
    assert_eq!(engine.metrics().factorizations, 1);
}

/// A paranoid residual tolerance forces the guard to refactor after
/// updates, and the guarded path leaves scores consistent.
#[test]
fn residual_guard_forces_refactor() {
    let ssl = moons(20, 5, 17);
    let config = rank1_only_config().residual_tolerance(1e-300);
    let mut engine = ServingEngine::fit(&ssl.inputs, &ssl.labels, config).expect("fit");
    engine
        .observe_label(10, target_of(&ssl, 10))
        .expect("update");
    engine
        .observe_label(15, target_of(&ssl, 15))
        .expect("update");
    let m = engine.metrics();
    assert!(
        m.guarded_refactors >= 1,
        "guard should trip at an impossible tolerance"
    );
    assert_eq!(m.factorizations, 1 + m.guarded_refactors);
    // After a guarded refactor the residual is at factorization accuracy.
    assert!(engine.residual().expect("residual") < 1e-10);
}

/// Multiclass serving stays consistent with per-class binary engines:
/// one-vs-rest columns equal the binary engine fitted on each indicator.
#[test]
fn multiclass_columns_match_per_class_binary_engines() {
    let ssl = moons(24, 9, 19);
    // Fabricate 3 classes from the moon label and index parity so the
    // labeled prefix covers all of them.
    let classes: Vec<usize> = (0..ssl.inputs.rows())
        .map(|i| if target_of(&ssl, i) >= 0.5 { 2 } else { i % 2 })
        .collect();
    let n = ssl.n_labeled();
    for class in 0..3 {
        assert!(
            classes[..n].contains(&class),
            "labeled prefix must cover class {class}"
        );
    }
    let engine = ServingEngine::fit_multiclass(&ssl.inputs, &classes[..n], 3, rank1_only_config())
        .expect("multiclass fit");

    for class in 0..3 {
        let indicator: Vec<f64> = classes[..n]
            .iter()
            .map(|&c| if c == class { 1.0 } else { 0.0 })
            .collect();
        let binary =
            ServingEngine::fit(&ssl.inputs, &indicator, rank1_only_config()).expect("binary fit");
        for i in 0..ssl.inputs.rows() {
            let a = engine.scores().get(i, class);
            let b = binary.scores().get(i, 0);
            assert!(
                (a - b).abs() < 1e-12,
                "class {class}, node {i}: shared {a} vs per-class {b}"
            );
        }
    }
    // The multiclass engine paid for one factorization, not three.
    assert_eq!(engine.metrics().factorizations, 1);
}
