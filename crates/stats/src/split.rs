//! Resampling utilities: shuffles, k-fold cross-validation, stratified
//! folds, and the labeled/unlabeled splits of semi-supervised learning.
//!
//! Figure 5 of the paper varies the labeled fraction by splitting the COIL
//! data into `k` roughly equal subsets and rotating which subsets are
//! labeled; [`KFold`] and [`labeled_unlabeled_split`] reproduce that
//! protocol.

use crate::error::{Error, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// A single train/test index split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of the training (labeled) examples.
    pub train: Vec<usize>,
    /// Indices of the test (unlabeled) examples.
    pub test: Vec<usize>,
}

/// K-fold cross-validation splitter.
///
/// ```
/// use gssl_stats::split::KFold;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let folds = KFold::new(5).unwrap().splits(23, &mut rng).unwrap();
/// assert_eq!(folds.len(), 5);
/// for f in &folds {
///     assert_eq!(f.train.len() + f.test.len(), 23);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    k: usize,
}

impl KFold {
    /// Creates a splitter with `k` folds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `k < 2`.
    pub fn new(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidParameter {
                message: format!("k-fold requires k >= 2, got {k}"),
            });
        }
        Ok(KFold { k })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Produces the `k` splits of `0..len` after a random shuffle. Each
    /// split uses one fold as `test` and the remaining folds as `train`.
    ///
    /// Fold sizes differ by at most one.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `len < k`.
    pub fn splits(&self, len: usize, rng: &mut impl Rng) -> Result<Vec<Split>> {
        if len < self.k {
            return Err(Error::InvalidParameter {
                message: format!("cannot split {len} examples into {} folds", self.k),
            });
        }
        let mut indices: Vec<usize> = (0..len).collect();
        indices.shuffle(rng);
        let fold_sizes = balanced_sizes(len, self.k);
        let mut folds: Vec<Vec<usize>> = Vec::with_capacity(self.k);
        let mut start = 0;
        for size in fold_sizes {
            folds.push(indices[start..start + size].to_vec());
            start += size;
        }
        Ok((0..self.k)
            .map(|held_out| {
                let test = folds[held_out].clone();
                let train = folds
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != held_out)
                    .flat_map(|(_, f)| f.iter().copied())
                    .collect();
                Split { train, test }
            })
            .collect())
    }

    /// Like [`KFold::splits`] but *inverted*: each split uses one fold as
    /// `train` and the rest as `test`.
    ///
    /// This is the paper's low-label protocol (Figure 5 at ratios 20/80 and
    /// 10/90: one of `k` subsets is labeled, the other `k − 1` are the test
    /// set).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `len < k`.
    pub fn inverted_splits(&self, len: usize, rng: &mut impl Rng) -> Result<Vec<Split>> {
        Ok(self
            .splits(len, rng)?
            .into_iter()
            .map(|s| Split {
                train: s.test,
                test: s.train,
            })
            .collect())
    }

    /// Stratified splits: every fold receives a near-proportional share of
    /// each class, as identified by `labels`.
    ///
    /// # Errors
    ///
    /// * [`Error::LengthMismatch`] when `labels.len() != len`.
    /// * [`Error::InvalidParameter`] when some class has fewer members than
    ///   folds.
    pub fn stratified_splits(&self, labels: &[bool], rng: &mut impl Rng) -> Result<Vec<Split>> {
        let len = labels.len();
        if len < self.k {
            return Err(Error::InvalidParameter {
                message: format!("cannot split {len} examples into {} folds", self.k),
            });
        }
        let mut positives: Vec<usize> = (0..len).filter(|&i| labels[i]).collect();
        let mut negatives: Vec<usize> = (0..len).filter(|&i| !labels[i]).collect();
        if positives.len() < self.k || negatives.len() < self.k {
            return Err(Error::InvalidParameter {
                message: format!(
                    "stratified {}-fold needs >= {} examples per class, got {} / {}",
                    self.k,
                    self.k,
                    positives.len(),
                    negatives.len()
                ),
            });
        }
        positives.shuffle(rng);
        negatives.shuffle(rng);
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); self.k];
        for (i, idx) in positives.into_iter().enumerate() {
            folds[i % self.k].push(idx);
        }
        for (i, idx) in negatives.into_iter().enumerate() {
            folds[i % self.k].push(idx);
        }
        Ok((0..self.k)
            .map(|held_out| {
                let test = folds[held_out].clone();
                let train = folds
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != held_out)
                    .flat_map(|(_, f)| f.iter().copied())
                    .collect();
                Split { train, test }
            })
            .collect())
    }
}

/// Splits `0..len` into `n_labeled` labeled and `len − n_labeled` unlabeled
/// indices after a random shuffle — the basic semi-supervised protocol of
/// the paper's synthetic studies.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `n_labeled` is 0 or exceeds
/// `len`.
pub fn labeled_unlabeled_split(len: usize, n_labeled: usize, rng: &mut impl Rng) -> Result<Split> {
    if n_labeled == 0 || n_labeled > len {
        return Err(Error::InvalidParameter {
            message: format!("n_labeled must be in 1..={len}, got {n_labeled}"),
        });
    }
    let mut indices: Vec<usize> = (0..len).collect();
    indices.shuffle(rng);
    Ok(Split {
        train: indices[..n_labeled].to_vec(),
        test: indices[n_labeled..].to_vec(),
    })
}

/// Sizes of `k` balanced partitions of `len` items (differ by at most 1).
fn balanced_sizes(len: usize, k: usize) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    let base = len / k;
    let extra = len % k;
    (0..k).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn kfold_partitions_everything_exactly_once() {
        let folds = KFold::new(4).unwrap().splits(22, &mut rng()).unwrap();
        assert_eq!(folds.len(), 4);
        let mut seen = HashSet::new();
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 22);
            for &i in &f.test {
                assert!(seen.insert(i), "index {i} in two test folds");
            }
            // Train and test are disjoint.
            let train: HashSet<_> = f.train.iter().collect();
            assert!(f.test.iter().all(|i| !train.contains(i)));
        }
        assert_eq!(seen.len(), 22);
    }

    #[test]
    fn kfold_sizes_are_balanced() {
        let folds = KFold::new(5).unwrap().splits(23, &mut rng()).unwrap();
        for f in &folds {
            assert!(f.test.len() == 4 || f.test.len() == 5);
        }
        let total: usize = folds.iter().map(|f| f.test.len()).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn inverted_splits_swap_roles() {
        let kf = KFold::new(5).unwrap();
        let inv = kf.inverted_splits(25, &mut rng()).unwrap();
        for f in &inv {
            assert_eq!(f.train.len(), 5);
            assert_eq!(f.test.len(), 20);
        }
    }

    #[test]
    fn stratified_folds_balance_classes() {
        // 12 positives, 18 negatives, 3 folds => 4 pos + 6 neg per fold.
        let labels: Vec<bool> = (0..30).map(|i| i < 12).collect();
        let folds = KFold::new(3)
            .unwrap()
            .stratified_splits(&labels, &mut rng())
            .unwrap();
        for f in &folds {
            let pos = f.test.iter().filter(|&&i| labels[i]).count();
            let neg = f.test.len() - pos;
            assert_eq!(pos, 4);
            assert_eq!(neg, 6);
        }
    }

    #[test]
    fn stratified_rejects_scarce_classes() {
        let labels = [true, false, false, false, false];
        assert!(KFold::new(3)
            .unwrap()
            .stratified_splits(&labels, &mut rng())
            .is_err());
    }

    #[test]
    fn labeled_unlabeled_split_counts() {
        let s = labeled_unlabeled_split(10, 3, &mut rng()).unwrap();
        assert_eq!(s.train.len(), 3);
        assert_eq!(s.test.len(), 7);
        let all: HashSet<_> = s.train.iter().chain(&s.test).collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn parameter_validation() {
        assert!(KFold::new(1).is_err());
        assert!(KFold::new(2).unwrap().splits(1, &mut rng()).is_err());
        assert!(labeled_unlabeled_split(5, 0, &mut rng()).is_err());
        assert!(labeled_unlabeled_split(5, 6, &mut rng()).is_err());
        assert!(labeled_unlabeled_split(5, 5, &mut rng()).is_ok());
    }

    #[test]
    fn splits_are_deterministic_given_seed() {
        let a = KFold::new(3)
            .unwrap()
            .splits(9, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let b = KFold::new(3)
            .unwrap()
            .splits(9, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn balanced_sizes_sum() {
        assert_eq!(balanced_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(balanced_sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(balanced_sizes(2, 2), vec![1, 1]);
    }
}
