//! 2×2 block partitions of square matrices.
//!
//! The paper's derivation of Eq. (4)/(5) works entirely in terms of the
//! blocks `W₁₁, W₁₂, W₂₁, W₂₂` (labeled/unlabeled split at index `n`);
//! [`BlockPartition`] makes that split a first-class, well-tested object.

use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// A square matrix split into four blocks at row/column `split`:
///
/// ```text
///        ┌ a11 (split × split)   a12 (split × rest) ┐
///  A  =  │                                          │
///        └ a21 (rest × split)    a22 (rest × rest)  ┘
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPartition {
    /// Top-left block (`split × split`).
    pub a11: Matrix,
    /// Top-right block (`split × rest`).
    pub a12: Matrix,
    /// Bottom-left block (`rest × split`).
    pub a21: Matrix,
    /// Bottom-right block (`rest × rest`).
    pub a22: Matrix,
}

impl BlockPartition {
    /// Splits a square matrix at index `split`.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::InvalidArgument`] when `split > a.rows()`.
    ///
    /// ```
    /// use gssl_linalg::{BlockPartition, Matrix};
    /// # fn main() -> Result<(), gssl_linalg::Error> {
    /// let a = Matrix::from_fn(3, 3, |i, j| (3 * i + j) as f64);
    /// let blocks = BlockPartition::split(&a, 2)?;
    /// assert_eq!(blocks.a11.shape(), (2, 2));
    /// assert_eq!(blocks.a22.get(0, 0), 8.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn split(a: &Matrix, split: usize) -> Result<Self> {
        if !a.is_square() {
            return Err(Error::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if split > n {
            return Err(Error::InvalidArgument {
                message: format!("split index {split} exceeds matrix dimension {n}"),
            });
        }
        Ok(BlockPartition {
            a11: a.submatrix(0, split, 0, split),
            a12: a.submatrix(0, split, split, n),
            a21: a.submatrix(split, n, 0, split),
            a22: a.submatrix(split, n, split, n),
        })
    }

    /// Reassembles the original matrix from the four blocks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the blocks are not
    /// conformal.
    /// shape: (n, n)
    pub fn assemble(&self) -> Result<Matrix> {
        let top = self.a11.hstack(&self.a12)?;
        let bottom = self.a21.hstack(&self.a22)?;
        top.vstack(&bottom)
    }

    /// Size of the leading (labeled) block.
    pub fn split_index(&self) -> usize {
        self.a11.rows()
    }

    /// Size of the trailing (unlabeled) block.
    pub fn trailing_size(&self) -> usize {
        self.a22.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| (n * i + j) as f64)
    }

    #[test]
    fn split_assemble_roundtrip() {
        let a = numbered(5);
        for split in 0..=5 {
            let blocks = BlockPartition::split(&a, split).unwrap();
            assert_eq!(blocks.assemble().unwrap(), a);
            assert_eq!(blocks.split_index(), split);
            assert_eq!(blocks.trailing_size(), 5 - split);
        }
    }

    #[test]
    fn blocks_have_expected_contents() {
        let a = numbered(4);
        let blocks = BlockPartition::split(&a, 2).unwrap();
        assert_eq!(blocks.a11.row(0), &[0.0, 1.0]);
        assert_eq!(blocks.a12.row(0), &[2.0, 3.0]);
        assert_eq!(blocks.a21.row(0), &[8.0, 9.0]);
        assert_eq!(blocks.a22.row(1), &[14.0, 15.0]);
    }

    #[test]
    fn rejects_non_square_and_bad_split() {
        assert!(BlockPartition::split(&Matrix::zeros(2, 3), 1).is_err());
        assert!(matches!(
            BlockPartition::split(&Matrix::identity(3), 4),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn degenerate_splits() {
        let a = numbered(3);
        let all_leading = BlockPartition::split(&a, 3).unwrap();
        assert_eq!(all_leading.a11, a);
        assert_eq!(all_leading.a22.shape(), (0, 0));
        let all_trailing = BlockPartition::split(&a, 0).unwrap();
        assert_eq!(all_trailing.a22, a);
        assert_eq!(all_trailing.a11.shape(), (0, 0));
    }
}
