//! Cross-variant integration test: every criterion in the crate fitted on
//! the same realistic problem, with the orderings the theory predicts.

use gssl::{
    Criterion, GsslModel, HardCriterion, LocalGlobalConsistency, MeanPredictor, NadarayaWatson,
    PLaplacian, Problem, SoftCriterion, TransductiveModel,
};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Bandwidth, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model1_problem_with_truth(seed: u64) -> (Problem, Vec<f64>) {
    let (n, m) = (150, 30);
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let truth = ssl.hidden_truth.clone().expect("synthetic truth");
    let h = paper_rate(n, PAPER_DIM).expect("rate");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    (
        Problem::new(w, ssl.labels.clone()).expect("valid problem"),
        truth,
    )
}

#[test]
fn every_variant_fits_and_respects_score_sanity() {
    let (problem, _) = model1_problem_with_truth(1);
    let models: Vec<Box<dyn TransductiveModel>> = vec![
        Box::new(HardCriterion::new()),
        Box::new(SoftCriterion::new(0.1).unwrap()),
        Box::new(NadarayaWatson::new()),
        Box::new(MeanPredictor::new()),
        Box::new(LocalGlobalConsistency::new(0.9).unwrap()),
        Box::new(PLaplacian::new(3.0).unwrap()),
    ];
    for model in models {
        let scores = model.fit(&problem).expect("fit succeeds");
        assert_eq!(
            scores.all().len(),
            problem.len(),
            "{} returned wrong length",
            model.name()
        );
        for &s in scores.unlabeled() {
            assert!(
                (-0.5..=1.5).contains(&s),
                "{} produced wild score {s}",
                model.name()
            );
        }
    }
}

#[test]
fn rmse_ordering_across_variants_averaged() {
    // Averaged over seeds: hard ≈ NW < soft(5) < mean (the paper's story
    // plus the coupling of Theorem II.1).
    let reps = 8;
    let mut sums = [0.0f64; 4];
    for seed in 0..reps {
        let (problem, truth) = model1_problem_with_truth(100 + seed);
        let evaluate = |model: &dyn TransductiveModel| {
            let scores = model.fit(&problem).expect("fit");
            rmse(&truth, scores.unlabeled()).expect("rmse")
        };
        sums[0] += evaluate(&HardCriterion::new());
        sums[1] += evaluate(&NadarayaWatson::new());
        sums[2] += evaluate(&SoftCriterion::new(5.0).unwrap());
        sums[3] += evaluate(&MeanPredictor::new());
    }
    let [hard, nw, soft5, mean] = sums;
    assert!(
        (hard - nw).abs() < 0.25 * hard,
        "hard ({hard}) and NW ({nw}) should track each other"
    );
    assert!(hard < soft5, "hard ({hard}) should beat soft(5) ({soft5})");
    assert!(soft5 < mean, "soft(5) ({soft5}) should beat mean ({mean})");
}

#[test]
fn builder_facade_covers_all_variants() {
    let points = gssl_linalg::Matrix::from_rows(&[&[0.0], &[1.0], &[0.1], &[0.9], &[0.5]]).unwrap();
    let labels = [0.0, 1.0];
    let criteria = [
        Criterion::Hard,
        Criterion::Soft(0.5),
        Criterion::NadarayaWatson,
        Criterion::LabeledMean,
        Criterion::LocalGlobalConsistency(0.7),
        Criterion::PLaplacian(2.5),
    ];
    for criterion in criteria {
        let mut builder = GsslModel::builder();
        builder
            .kernel(Kernel::Gaussian)
            .bandwidth(Bandwidth::Fixed(0.5))
            .criterion(criterion);
        let scores = builder.fit(&points, &labels).expect("facade fit");
        assert_eq!(scores.unlabeled().len(), 3, "{criterion:?}");
    }
}

#[test]
fn graph_method_beats_kernel_regression_on_swiss_roll() {
    // The manifold assumption in action: adjacent sheets of the roll are
    // close in R^3 but far along the manifold, so NW (which ignores
    // unlabeled geometry) blurs across sheets while the harmonic solution
    // propagates along the roll.
    let mut rng = StdRng::seed_from_u64(44);
    let ds = gssl_datasets::synthetic::swiss_roll(400, 0.05, &mut rng).expect("generation");
    // Label 10 random-ish points spread through the roll.
    let labeled: Vec<usize> = (0..10).map(|k| k * 37).collect();
    let ssl = ds.arrange(&labeled).expect("arrangement");
    let truth = ssl.hidden_targets_binary();
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, 1.2).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");

    let accuracy = |model: &dyn TransductiveModel| {
        let scores = model.fit(&problem).expect("fit");
        scores
            .unlabeled_predictions(0.5)
            .iter()
            .zip(&truth)
            .filter(|(p, t)| p == t)
            .count() as f64
            / truth.len() as f64
    };
    let hard = accuracy(&HardCriterion::new());
    let nw = accuracy(&NadarayaWatson::new());
    assert!(
        hard >= nw,
        "graph propagation ({hard}) should not lose to kernel regression ({nw})"
    );
    assert!(hard > 0.8, "swiss roll should be mostly solved, got {hard}");
}

#[test]
fn invalid_variant_parameters_error_through_facade() {
    let points = gssl_linalg::Matrix::from_rows(&[&[0.0], &[1.0], &[0.5]]).unwrap();
    let labels = [0.0, 1.0];
    for criterion in [
        Criterion::Soft(-1.0),
        Criterion::LocalGlobalConsistency(1.5),
        Criterion::PLaplacian(0.5),
    ] {
        let mut builder = GsslModel::builder();
        builder
            .bandwidth(Bandwidth::Fixed(0.5))
            .criterion(criterion);
        assert!(
            builder.fit(&points, &labels).is_err(),
            "{criterion:?} should be rejected"
        );
    }
}
