//! The unsupervised spectral view of the cluster assumption: before any
//! labels exist, the graph already "knows" the classes — the Fiedler
//! vector cuts two moons apart, and adding just one label per side turns
//! the same graph into a near-perfect classifier.
//!
//! ```text
//! cargo run --release --example spectral_view
//! ```

use gssl::{HardCriterion, Problem};
use gssl_datasets::synthetic::two_moons;
use gssl_graph::{affinity::affinity_matrix, spectral::fiedler_vector, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(21);
    let ds = two_moons(150, 0.05, &mut rng)?;
    let w = affinity_matrix(ds.inputs(), Kernel::Gaussian, 0.25)?;
    let truth: Vec<bool> = ds.targets().iter().map(|&y| y > 0.5).collect();

    // Unsupervised: the Fiedler cut.
    let v = fiedler_vector(&w)?;
    let cut: Vec<bool> = v.iter().map(|x| x >= 0.0).collect();
    let agree = cut.iter().zip(&truth).filter(|(c, t)| c == t).count();
    let fiedler_accuracy = agree.max(truth.len() - agree) as f64 / truth.len() as f64;
    println!(
        "unsupervised Fiedler cut accuracy:        {:.1}%",
        fiedler_accuracy * 100.0
    );

    // Semi-supervised: same graph, two labels.
    let ssl = ds.arrange(&[37, 112])?; // one mid-arc point per moon
    let w_arranged = affinity_matrix(&ssl.inputs, Kernel::Gaussian, 0.25)?;
    let problem = Problem::new(w_arranged, ssl.labels.clone())?;
    let scores = HardCriterion::new().fit(&problem)?;
    let ssl_truth = ssl.hidden_targets_binary();
    let correct = scores
        .unlabeled_predictions(0.5)
        .iter()
        .zip(&ssl_truth)
        .filter(|(p, t)| p == t)
        .count();
    let hard_accuracy = correct as f64 / ssl_truth.len() as f64;
    println!(
        "hard criterion with 2 labels accuracy:    {:.1}%",
        hard_accuracy * 100.0
    );

    println!("\nThe graph's spectrum already separates the moons (cluster");
    println!("assumption); labels only pin which side is which. This is why");
    println!("the paper's similarity graph is the real workhorse and why its");
    println!("consistency analysis centres on how labels anchor the graph.");

    assert!(fiedler_accuracy > 0.9);
    assert!(hard_accuracy > 0.9);
    Ok(())
}
