//! The regression (continuous-response) path end to end: Nadaraya–Watson
//! and the hard criterion on the sinusoidal dataset, with consistency
//! (error shrinking in n) checked for both.

use gssl::{kernel_regression, HardCriterion, Problem};
use gssl_datasets::synthetic::sinusoidal_regression;
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn average_errors(n: usize, reps: u64) -> (f64, f64) {
    let m = 20;
    let mut nw_total = 0.0;
    let mut hard_total = 0.0;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(31_000 + seed);
        let ds = sinusoidal_regression(n + m, 0.2, &mut rng).expect("generation");
        let ssl = ds.arrange_prefix(n).expect("arrangement");
        let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");
        let h = paper_rate(n, 1).expect("rate");

        let nw = kernel_regression(&ssl.inputs, &ssl.labels, Kernel::Gaussian, h)
            .expect("kernel regression");
        nw_total += rmse(truth, &nw).expect("rmse");

        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
        let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
        let hard = HardCriterion::new().fit(&problem).expect("hard fit");
        hard_total += rmse(truth, hard.unlabeled()).expect("rmse");
    }
    (nw_total / reps as f64, hard_total / reps as f64)
}

#[test]
fn both_estimators_improve_with_more_labels() {
    let (nw_small, hard_small) = average_errors(30, 8);
    let (nw_large, hard_large) = average_errors(400, 8);
    assert!(
        nw_large < nw_small,
        "NW RMSE should shrink: {nw_small} -> {nw_large}"
    );
    assert!(
        hard_large < hard_small,
        "hard RMSE should shrink: {hard_small} -> {hard_large}"
    );
}

#[test]
fn regression_scores_stay_in_label_range() {
    let mut rng = StdRng::seed_from_u64(77);
    let ds = sinusoidal_regression(150, 0.1, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(120).expect("arrangement");
    let h = paper_rate(120, 1).expect("rate");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
    let scores = HardCriterion::new().fit(&problem).expect("fit");
    let lo = ssl.labels.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ssl.labels.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for &s in scores.unlabeled() {
        assert!(
            s >= lo - 1e-9 && s <= hi + 1e-9,
            "maximum principle violated"
        );
    }
}

#[test]
fn hard_criterion_approximates_the_sine_at_large_n() {
    let (_, hard) = average_errors(500, 5);
    assert!(hard < 0.2, "expected decent sine recovery, RMSE {hard}");
}
