//! The transductive problem instance and the score vectors the criteria
//! return.

use crate::error::{Error, Result};
use crate::weights::Weights;
use gssl_graph::{affinity::affinity_matrix, Kernel};
use gssl_linalg::{strict, BlockPartition, CsrMatrix, Matrix, Vector};

/// A graph-based semi-supervised learning problem: a symmetric similarity
/// matrix over `n + m` points, of which the first `n` carry observed
/// responses.
///
/// This is exactly the setting of the paper's Section II: `W = [w_ij]`
/// with `0 ≤ w_ij ≤ 1` (soft requirement; any nonnegative symmetric matrix
/// is accepted), responses `Y₁, …, Y_n` observed, `Y_{n+1}, …, Y_{n+m}`
/// to be predicted.
///
/// The similarity matrix may be dense or CSR — [`Problem::new`] accepts
/// either through the [`Weights`] abstraction, and every criterion runs
/// unchanged on both representations.
///
/// ```
/// use gssl::Problem;
/// use gssl_linalg::{CsrMatrix, Matrix};
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.8, 0.1],
///     &[0.8, 1.0, 0.2],
///     &[0.1, 0.2, 1.0],
/// ])?;
/// let problem = Problem::new(w.clone(), vec![1.0])?; // 1 labeled, 2 unlabeled
/// assert_eq!(problem.n_labeled(), 1);
/// assert_eq!(problem.n_unlabeled(), 2);
/// // The same problem over a sparse graph:
/// let sparse = Problem::new(CsrMatrix::from_dense(&w, 0.0), vec![1.0])?;
/// assert_eq!(sparse.n_unlabeled(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    weights: Weights,
    labels: Vec<f64>,
}

impl Problem {
    /// Symmetry tolerance accepted by the constructor.
    const SYMMETRY_TOL: f64 = 1e-9;

    /// Creates a problem from a similarity matrix — dense [`Matrix`], CSR
    /// [`CsrMatrix`], or an explicit [`Weights`] — and the observed labels
    /// of the first `labels.len()` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when:
    /// * the matrix is not square or not symmetric (within `1e-9`),
    /// * any weight is negative or non-finite,
    /// * `labels` is empty or longer than the vertex count,
    /// * any label is non-finite.
    ///
    /// With the `strict-checks` cargo feature enabled, non-finite dense
    /// weights or labels are instead reported as [`Error::NonFiniteValue`],
    /// which pinpoints the first offending element.
    pub fn new(weights: impl Into<Weights>, labels: Vec<f64>) -> Result<Self> {
        let weights = weights.into();
        strict::check_finite("Problem::new labels", &labels)?;
        if let Some(dense) = weights.as_dense() {
            strict::check_finite_matrix("Problem::new weights", dense)?;
        }
        weights.validate(Self::SYMMETRY_TOL)?;
        if labels.is_empty() {
            return Err(Error::InvalidProblem {
                message: "at least one labeled point is required".to_owned(),
            });
        }
        if labels.len() > weights.rows() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "{} labels exceed the {} vertices",
                    labels.len(),
                    weights.rows()
                ),
            });
        }
        if labels.iter().any(|y| !y.is_finite()) {
            return Err(Error::InvalidProblem {
                message: "labels must be finite".to_owned(),
            });
        }
        Ok(Problem { weights, labels })
    }

    /// Builds the problem directly from points (rows of `points`, labeled
    /// rows first) using a kernel graph, as the paper's experiments do.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors and [`Problem::new`] errors.
    pub fn from_points(
        points: &Matrix,
        labels: Vec<f64>,
        kernel: Kernel,
        bandwidth: f64,
    ) -> Result<Self> {
        let weights = affinity_matrix(points, kernel, bandwidth)?;
        Problem::new(weights, labels)
    }

    /// Number of labeled points `n`.
    pub fn n_labeled(&self) -> usize {
        self.labels.len()
    }

    /// Number of unlabeled points `m`.
    pub fn n_unlabeled(&self) -> usize {
        self.weights.rows() - self.labels.len()
    }

    /// Total number of vertices `n + m`.
    pub fn len(&self) -> usize {
        self.weights.rows()
    }

    /// Returns `true` when the problem has no vertices (impossible after
    /// construction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.rows() == 0
    }

    /// Borrows the similarity matrix `W` in whichever representation the
    /// problem holds.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Borrows the dense similarity matrix.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when the problem holds a sparse
    /// graph — dense-only algorithms (LLGC, p-Laplacian, self-training,
    /// the theory diagnostics) require an explicitly densified problem.
    /// shape: (total, total)
    pub fn dense_weights(&self) -> Result<&Matrix> {
        self.weights
            .as_dense()
            .ok_or_else(|| Error::InvalidProblem {
                message: "this operation requires dense weights; rebuild the problem from \
                      Weights::to_dense() to densify explicitly"
                    .to_owned(),
            })
    }

    /// Borrows the observed labels `Y₁, …, Y_n`.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The observed labels as a [`Vector`].
    /// shape: (n,)
    pub fn labels_vector(&self) -> Vector {
        Vector::from(self.labels.as_slice())
    }

    /// Degree vector `d_i = Σ_j w_ij` over the full graph.
    /// shape: (total,)
    pub fn degrees(&self) -> Vector {
        self.weights.degrees()
    }

    /// Splits `W` into the 2×2 labeled/unlabeled block structure used by
    /// Eq. (4)/(5) of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when the problem holds sparse
    /// weights (the dense block partition would densify implicitly).
    pub fn weight_blocks(&self) -> Result<BlockPartition> {
        Ok(BlockPartition::split(
            self.dense_weights()?,
            self.n_labeled(),
        )?)
    }

    /// The hard-criterion system matrix `D₂₂ − W₂₂` (degrees taken over
    /// the *full* graph, as in the paper), assembled dense from either
    /// representation.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (none for a constructed problem).
    /// shape: (m, m)
    /// hot
    /// complexity: O(m^2)
    pub fn unlabeled_system(&self) -> Result<Matrix> {
        let n = self.n_labeled();
        let m = self.n_unlabeled();
        let degrees = self.degrees();
        match &self.weights {
            Weights::Dense(w) => {
                let blocks = BlockPartition::split(w, n)?;
                strict::check_symmetric("unlabeled system block W22", &blocks.a22, 1e-9)?;
                let mut system = blocks.a22.map(|x| -x);
                for (a, &degree) in degrees.as_slice()[n..].iter().enumerate() {
                    system.set(a, a, degree - blocks.a22.get(a, a));
                }
                Ok(system)
            }
            Weights::Sparse(w) => {
                let mut system = Matrix::zeros(m, m);
                for a in 0..m {
                    let i = n + a;
                    let mut diag = degrees[i];
                    for (j, v) in w.row_iter(i) {
                        if j == i {
                            diag -= v;
                        } else if j >= n {
                            system.set(a, j - n, -v);
                        }
                    }
                    system.set(a, a, diag);
                }
                Ok(system)
            }
        }
    }

    /// The hard-criterion system `D₂₂ − W₂₂` in CSR form — the input the
    /// iterative sparse backend factors without densifying anything.
    ///
    /// # Errors
    ///
    /// Propagates coordinate errors (none for a constructed problem).
    /// shape: (m, m)
    pub fn unlabeled_system_csr(&self) -> Result<CsrMatrix> {
        let n = self.n_labeled();
        let m = self.n_unlabeled();
        let degrees = self.degrees();
        // Upper bound: every stored edge of the unlabeled rows plus the
        // m explicit diagonal entries.
        let mut triplets = Vec::with_capacity(self.weights.nnz() + m);
        for a in 0..m {
            let i = n + a;
            let mut diag = degrees[i];
            for (j, v) in self.weights.row_entries(i) {
                if j == i {
                    diag -= v;
                } else if j >= n {
                    triplets.push((a, j - n, -v));
                }
            }
            triplets.push((a, a, diag));
        }
        Ok(CsrMatrix::from_triplets(m, m, &triplets)?)
    }

    /// The soft-criterion full system `V + λL` (Eq. 3) in CSR form, where
    /// `V = diag(1 labeled, 0 unlabeled)` and `L = D − W`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `lambda` is negative or
    /// not finite.
    /// shape: (total, total)
    pub fn soft_system_csr(&self, lambda: f64) -> Result<CsrMatrix> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(Error::InvalidParameter {
                message: format!("lambda must be finite and nonnegative, got {lambda}"),
            });
        }
        let n = self.n_labeled();
        let total = self.len();
        let degrees = self.degrees();
        let mut triplets = Vec::with_capacity(self.weights.nnz() + total);
        for i in 0..total {
            let mut diag = lambda * degrees[i] + if i < n { 1.0 } else { 0.0 };
            for (j, v) in self.weights.row_entries(i) {
                if j == i {
                    diag -= lambda * v;
                } else {
                    triplets.push((i, j, -lambda * v));
                }
            }
            triplets.push((i, i, diag));
        }
        Ok(CsrMatrix::from_triplets(total, total, &triplets)?)
    }

    /// The hard-criterion right-hand side `W₂₁ Y_n`.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (none for a constructed problem).
    /// shape: (m,)
    pub fn unlabeled_rhs(&self) -> Result<Vector> {
        let n = self.n_labeled();
        let m = self.n_unlabeled();
        let mut rhs = Vector::zeros(m);
        for a in 0..m {
            let mut sum = 0.0;
            for (j, v) in self.weights.row_entries(n + a) {
                if j < n {
                    sum += v * self.labels[j];
                }
            }
            rhs[a] = sum;
        }
        Ok(rhs)
    }

    /// Checks that every unlabeled vertex is connected (through edges of
    /// weight `> threshold`) to some labeled vertex — the condition under
    /// which `D₂₂ − W₂₂` is nonsingular and the hard criterion well posed.
    /// One BFS over whichever representation the problem holds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnanchoredUnlabeled`] naming the first stranded
    /// vertex.
    pub fn require_anchored(&self, threshold: f64) -> Result<()> {
        let total = self.len();
        let n = self.n_labeled();
        let mut reached = vec![false; total];
        let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
        for flag in reached.iter_mut().take(n) {
            *flag = true;
        }
        while let Some(v) = queue.pop_front() {
            for (j, w) in self.weights.row_entries(v) {
                if w > threshold && !reached[j] {
                    reached[j] = true;
                    queue.push_back(j);
                }
            }
        }
        match reached[n..].iter().position(|&r| !r) {
            None => Ok(()),
            Some(index) => Err(Error::UnanchoredUnlabeled {
                unlabeled_index: index,
            }),
        }
    }
}

/// Scores produced by a criterion: one value per vertex, labeled first.
#[derive(Debug, Clone, PartialEq)]
pub struct Scores {
    all: Vector,
    n_labeled: usize,
}

impl Scores {
    /// Assembles scores from the labeled and unlabeled parts.
    pub(crate) fn from_parts(labeled: &[f64], unlabeled: &[f64]) -> Self {
        let mut all = Vec::with_capacity(labeled.len() + unlabeled.len());
        all.extend_from_slice(labeled);
        all.extend_from_slice(unlabeled);
        Scores {
            all: Vector::from(all),
            n_labeled: labeled.len(),
        }
    }

    /// Scores of every vertex (labeled first).
    pub fn all(&self) -> &[f64] {
        self.all.as_slice()
    }

    /// Scores of the labeled vertices.
    pub fn labeled(&self) -> &[f64] {
        &self.all.as_slice()[..self.n_labeled]
    }

    /// Scores of the unlabeled vertices — `f̂_{(n+1):(n+m)}` in the paper.
    pub fn unlabeled(&self) -> &[f64] {
        &self.all.as_slice()[self.n_labeled..]
    }

    /// Number of labeled vertices.
    pub fn n_labeled(&self) -> usize {
        self.n_labeled
    }

    /// Binary predictions on the unlabeled vertices (`score >= threshold`).
    pub fn unlabeled_predictions(&self, threshold: f64) -> Vec<bool> {
        self.unlabeled().iter().map(|&s| s >= threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_weights() -> Matrix {
        // 0 - 1 - 2 chain with weights 1 (plus unit self-loops like the
        // Gaussian kernel produces).
        Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap()
    }

    fn chain_csr() -> CsrMatrix {
        CsrMatrix::from_dense(&chain_weights(), 0.0)
    }

    #[test]
    fn construction_and_accessors() {
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        assert_eq!(p.n_labeled(), 1);
        assert_eq!(p.n_unlabeled(), 2);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.labels(), &[1.0]);
        assert_eq!(p.degrees().as_slice(), &[2.0, 3.0, 2.0]);
        assert!(p.dense_weights().is_ok());
    }

    #[test]
    fn sparse_construction_matches_dense() {
        let dense = Problem::new(chain_weights(), vec![1.0]).unwrap();
        let sparse = Problem::new(chain_csr(), vec![1.0]).unwrap();
        assert_eq!(sparse.n_labeled(), 1);
        assert_eq!(sparse.n_unlabeled(), 2);
        assert_eq!(dense.degrees().as_slice(), sparse.degrees().as_slice());
        assert!(sparse.weights().is_sparse());
        assert!(sparse.dense_weights().is_err());
        assert!(sparse.weight_blocks().is_err());
        let ds = dense.unlabeled_system().unwrap();
        let ss = sparse.unlabeled_system().unwrap();
        assert!(ds.approx_eq(&ss, 1e-15));
        assert_eq!(
            dense.unlabeled_rhs().unwrap().as_slice(),
            sparse.unlabeled_rhs().unwrap().as_slice()
        );
    }

    #[test]
    fn csr_systems_match_dense_assembly() {
        for problem in [
            Problem::new(chain_weights(), vec![1.0]).unwrap(),
            Problem::new(chain_csr(), vec![1.0]).unwrap(),
        ] {
            let dense_system = problem.unlabeled_system().unwrap();
            let csr_system = problem.unlabeled_system_csr().unwrap();
            assert!(csr_system.to_dense().approx_eq(&dense_system, 1e-15));
            // Soft full system at λ = 0.7 cross-checked entrywise.
            let lambda = 0.7;
            let soft = problem.soft_system_csr(lambda).unwrap().to_dense();
            let degrees = problem.degrees();
            let n = problem.n_labeled();
            for i in 0..problem.len() {
                for j in 0..problem.len() {
                    let w = problem.weights().get(i, j);
                    let expected = if i == j {
                        lambda * (degrees[i] - w) + if i < n { 1.0 } else { 0.0 }
                    } else {
                        -lambda * w
                    };
                    assert!((soft.get(i, j) - expected).abs() < 1e-14);
                }
            }
        }
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        assert!(p.soft_system_csr(-1.0).is_err());
        assert!(p.soft_system_csr(f64::NAN).is_err());
    }

    #[test]
    fn construction_validates() {
        assert!(Problem::new(Matrix::zeros(2, 3), vec![1.0]).is_err());
        assert!(Problem::new(chain_weights(), vec![]).is_err());
        assert!(Problem::new(chain_weights(), vec![1.0; 4]).is_err());
        assert!(Problem::new(chain_weights(), vec![f64::NAN]).is_err());
        let mut asym = chain_weights();
        asym.set(0, 1, 0.5);
        assert!(Problem::new(asym, vec![1.0]).is_err());
        let mut negative = chain_weights();
        negative.set(0, 1, -0.5);
        negative.set(1, 0, -0.5);
        assert!(Problem::new(negative, vec![1.0]).is_err());
        // The same rules hold for sparse inputs.
        assert!(Problem::new(CsrMatrix::zeros(2, 3), vec![1.0]).is_err());
        assert!(Problem::new(chain_csr(), vec![]).is_err());
        assert!(Problem::new(chain_csr(), vec![1.0; 4]).is_err());
        let sparse_asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(Problem::new(sparse_asym, vec![1.0]).is_err());
    }

    #[test]
    fn from_points_builds_kernel_graph() {
        let pts = Matrix::from_rows(&[&[0.0], &[0.1], &[0.2]]).unwrap();
        let p = Problem::from_points(&pts, vec![1.0, 0.0], Kernel::Gaussian, 1.0).unwrap();
        assert_eq!(p.n_labeled(), 2);
        assert!(p.weights().is_symmetric(1e-12));
    }

    #[test]
    fn unlabeled_system_matches_hand_computation() {
        // n = 1 labeled, m = 2 unlabeled on the chain.
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        let system = p.unlabeled_system().unwrap();
        // D22 = diag(3, 2); W22 = [[1, 1], [1, 1]].
        let expected = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 1.0]]).unwrap();
        assert!(system.approx_eq(&expected, 1e-12));
        // RHS: W21 Y = [1, 0]ᵀ · 1.
        assert_eq!(p.unlabeled_rhs().unwrap().as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn anchoring_check() {
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        assert!(p.require_anchored(0.0).is_ok());
        // Disconnect vertex 2 entirely.
        let w = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let stranded = Problem::new(w.clone(), vec![1.0]).unwrap();
        assert_eq!(
            stranded.require_anchored(0.0),
            Err(Error::UnanchoredUnlabeled { unlabeled_index: 1 })
        );
        // Identical verdicts on the sparse representation.
        let sparse = Problem::new(CsrMatrix::from_dense(&w, 0.0), vec![1.0]).unwrap();
        assert_eq!(
            sparse.require_anchored(0.0),
            Err(Error::UnanchoredUnlabeled { unlabeled_index: 1 })
        );
        assert!(Problem::new(chain_csr(), vec![1.0])
            .unwrap()
            .require_anchored(0.0)
            .is_ok());
    }

    #[test]
    fn scores_views() {
        let s = Scores::from_parts(&[1.0, 0.0], &[0.7, 0.2]);
        assert_eq!(s.all(), &[1.0, 0.0, 0.7, 0.2]);
        assert_eq!(s.labeled(), &[1.0, 0.0]);
        assert_eq!(s.unlabeled(), &[0.7, 0.2]);
        assert_eq!(s.n_labeled(), 2);
        assert_eq!(s.unlabeled_predictions(0.5), vec![true, false]);
    }
}
