//! # gssl-graph
//!
//! Similarity-graph substrate for the `gssl` workspace — everything needed
//! to turn a point cloud into the weighted graph `G = (V, E)` on which
//! graph-based semi-supervised learning operates (Du, Zhao & Wang,
//! ICDCS 2019).
//!
//! * [`Kernel`] — radial smoothing kernels, with predicates for the three
//!   conditions of the paper's Theorem II.1.
//! * [`bandwidth`] — the paper's `(log n/n)^{1/d}` rate, the median
//!   heuristic used in its COIL experiment, and Silverman's rule.
//! * [`affinity`] — dense similarity matrices `W = [K(‖x_i − x_j‖/h)]`.
//! * [`knn_graph`] / [`epsilon_graph`] — sparse CSR graph builders.
//! * [`laplacian`] — unnormalized / symmetric / random-walk Laplacians and
//!   the Dirichlet energy `Σ w_ij (f_i − f_j)²` both criteria penalize.
//! * [`components`] — connectivity checks backing Proposition II.2's
//!   hypotheses and the hard criterion's solvability condition.
//! * [`KernelGraph`] — a fitted point cloud + kernel + bandwidth, with
//!   out-of-sample `kernel_row` evaluation for serving new points.
//! * [`spectral`] — power iteration, used to measure the spectral radius
//!   of `D₂₂⁻¹W₂₂` from the paper's Neumann-series argument.
//!
//! ## Example
//!
//! ```
//! use gssl_graph::{affinity::affinity_matrix, laplacian, Kernel, LaplacianKind};
//! use gssl_linalg::Matrix;
//! # fn main() -> Result<(), gssl_graph::Error> {
//! let points = Matrix::from_rows(&[&[0.0, 0.0], &[0.1, 0.0], &[5.0, 5.0]])?;
//! let w = affinity_matrix(&points, Kernel::Gaussian, 1.0)?;
//! let l = laplacian(&w, LaplacianKind::Unnormalized)?;
//! assert!(l.is_symmetric(1e-12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Dense kernel affinity matrices over point clouds.
pub mod affinity;
/// Bandwidth selection rules, including the paper's rate.
pub mod bandwidth;
/// Connected-component analysis and anchoring checks.
pub mod components;
mod diagnostics;
mod error;
mod extension;
mod kernel;
mod knn;
mod laplacian;
/// Spectral embeddings and spectral clustering utilities.
pub mod spectral;

pub use diagnostics::GraphReport;

pub use bandwidth::Bandwidth;
pub use components::component_partition;
pub use error::{Error, Result};
pub use extension::KernelGraph;
pub use kernel::Kernel;
pub use knn::{epsilon_graph, epsilon_graph_with, knn_graph, knn_graph_with, Symmetrization};
pub use laplacian::{degrees, dirichlet_energy, laplacian, volume, LaplacianKind};
