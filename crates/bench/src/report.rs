//! Paper-style text reports of experiment series.

use crate::experiment::SeriesPoint;
use std::collections::BTreeSet;

/// Formats a figure's series as the table the paper's plot encodes: one
/// row per x value, one column per λ.
///
/// `x_name` labels the swept quantity (`n`, `m`, or `labeled fraction`);
/// `metric` names the cell values (`RMSE` or `AUC`).
pub fn format_series_table(points: &[SeriesPoint], x_name: &str, metric: &str) -> String {
    if points.is_empty() {
        return format!("(no data)  x={x_name} metric={metric}\n");
    }
    let lambdas: Vec<f64> = {
        let mut set = BTreeSet::new();
        for p in points {
            set.insert(ordered(p.lambda));
        }
        set.into_iter().map(|o| o.0).collect()
    };
    let xs: Vec<f64> = {
        let mut set = BTreeSet::new();
        for p in points {
            set.insert(ordered(p.x));
        }
        set.into_iter().map(|o| o.0).collect()
    };

    let mut out = String::new();
    out.push_str(&format!("avg {metric} (rows: {x_name}; columns: lambda)\n"));
    out.push_str(&format!("{x_name:>10}"));
    for l in &lambdas {
        out.push_str(&format!("  λ={l:<8}"));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&format!("{x:>10}"));
        for &l in &lambdas {
            match points.iter().find(|p| p.lambda == l && p.x == x) {
                Some(p) => out.push_str(&format!("  {:<10.4}", p.mean)),
                None => out.push_str("  -         "),
            }
        }
        out.push('\n');
    }
    out
}

/// Serializes series points as CSV (`lambda,x,mean,std_error,repetitions`)
/// for downstream plotting.
pub fn format_series_csv(points: &[SeriesPoint]) -> String {
    let mut out = String::from("lambda,x,mean,std_error,repetitions\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{}\n",
            p.lambda, p.x, p.mean, p.std_error, p.repetitions
        ));
    }
    out
}

/// Checks the paper's headline ordering on a series: at every x, the hard
/// criterion (λ = 0) should have the best (smallest for RMSE, largest for
/// AUC) mean. Returns the x values where the ordering is violated.
pub fn ordering_violations(points: &[SeriesPoint], larger_is_better: bool) -> Vec<f64> {
    let mut violations = Vec::new();
    let xs: BTreeSet<Ordered> = points.iter().map(|p| ordered(p.x)).collect();
    for x in xs {
        let x = x.0;
        let hard = points.iter().find(|p| p.x == x && p.lambda == 0.0);
        let Some(hard) = hard else { continue };
        for p in points.iter().filter(|p| p.x == x && p.lambda != 0.0) {
            let hard_wins = if larger_is_better {
                hard.mean >= p.mean
            } else {
                hard.mean <= p.mean
            };
            if !hard_wins {
                violations.push(x);
                break;
            }
        }
    }
    violations
}

/// Total-ordering wrapper for finite f64 keys.
#[derive(PartialEq, Clone, Copy, Debug)]
struct Ordered(f64);

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite keys")
    }
}

fn ordered(x: f64) -> Ordered {
    assert!(x.is_finite(), "series keys must be finite");
    Ordered(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<SeriesPoint> {
        vec![
            SeriesPoint {
                lambda: 0.0,
                x: 10.0,
                mean: 0.20,
                std_error: 0.01,
                repetitions: 5,
            },
            SeriesPoint {
                lambda: 1.0,
                x: 10.0,
                mean: 0.25,
                std_error: 0.01,
                repetitions: 5,
            },
            SeriesPoint {
                lambda: 0.0,
                x: 50.0,
                mean: 0.10,
                std_error: 0.01,
                repetitions: 5,
            },
            SeriesPoint {
                lambda: 1.0,
                x: 50.0,
                mean: 0.15,
                std_error: 0.01,
                repetitions: 5,
            },
        ]
    }

    #[test]
    fn table_contains_all_cells() {
        let table = format_series_table(&sample_points(), "n", "RMSE");
        assert!(table.contains("λ=0"));
        assert!(table.contains("λ=1"));
        assert!(table.contains("0.2000"));
        assert!(table.contains("0.1500"));
        assert!(table.contains("RMSE"));
        assert!(format_series_table(&[], "n", "RMSE").contains("no data"));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = format_series_csv(&sample_points());
        assert!(csv.starts_with("lambda,x,mean"));
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("0,10,0.200000,0.010000,5"));
    }

    #[test]
    fn ordering_checker_flags_violations() {
        // RMSE: smaller is better. The sample is clean.
        assert!(ordering_violations(&sample_points(), false).is_empty());
        // Make the soft criterion win at x = 10 — a violation.
        let mut points = sample_points();
        points[1].mean = 0.05;
        assert_eq!(ordering_violations(&points, false), vec![10.0]);
        // For AUC (larger better) the same data flips.
        assert_eq!(ordering_violations(&sample_points(), true).len(), 2);
    }

    #[test]
    fn missing_cells_render_dashes() {
        let mut points = sample_points();
        points.remove(3);
        let table = format_series_table(&points, "n", "RMSE");
        assert!(table.contains('-'));
    }
}
