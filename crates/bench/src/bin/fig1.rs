//! Reproduces Figure 1 of the paper: average RMSE under Model 1 with
//! `m = 30` unlabeled points as the labeled sample size `n` grows, for
//! λ ∈ {0, 0.01, 0.1, 5}.

use gssl_bench::figures::SyntheticFigure;
use gssl_bench::report::format_series_csv;
use gssl_bench::runner::CliArgs;

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    match SyntheticFigure::Fig1.run_and_report(&args) {
        Ok(points) => print!("{}", format_series_csv(&points)),
        Err(error) => {
            eprintln!("figure 1 failed: {error}");
            std::process::exit(1);
        }
    }
}
