//! Determinism suite for the shared execution layer: every parallel code
//! path in the workspace must produce output **bit-identical** (`==` on
//! `f64` slices, not epsilon-close) to its sequential counterpart, at
//! every worker count.
//!
//! The claim being tested is the `gssl-runtime` contract: work is split
//! into contiguous chunks, each item is computed by exactly one worker
//! with the same per-item operation order as the sequential loop, and
//! results are reassembled in input order. Under that protocol the
//! floating-point result cannot depend on the worker count — which the
//! tests here check end to end for kernel assembly, hard and soft fits,
//! one-vs-rest multiclass, and batch serving, and which
//! `sim::enumerate_schedules` proves exhaustively for the claim protocol
//! itself.

use gssl::cmn::argsort_scores;
use gssl::{HardCriterion, OneVsRest, Problem, SoftCriterion};
use gssl_graph::{
    affinity::{
        affinity_from_distances, affinity_from_distances_with, affinity_matrix,
        affinity_matrix_with, affinity_with_rule, pairwise_squared_distances,
        pairwise_squared_distances_with,
    },
    component_partition, epsilon_graph, epsilon_graph_with, knn_graph, knn_graph_with, Bandwidth,
    Kernel, KernelGraph, Symmetrization,
};
use gssl_index::{
    k_nearest_batch, self_k_nearest_batch, self_within_radius_batch, NeighborSearch, SpatialIndex,
};
use gssl_linalg::{
    AmgCg, AmgOptions, CgOptions, Cholesky, CsrMatrix, Factorization, Lu, Matrix, PrecondCg,
    PrecondKind, SolverPolicy, Vector,
};
use gssl_runtime::{sim, Executor};
use gssl_serve::{EngineConfig, QueryPoint, ServingEngine, ShardPlan, ShardedEngine};

const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 4];

/// Deterministic low-discrepancy points (no RNG state to thread through).
fn points(n: usize, d: usize) -> Matrix {
    Matrix::from_fn(n, d, |i, j| {
        (((i * 131 + j * 37 + 11) as f64) * 0.618_033_988_749_894_9).fract()
    })
}

#[test]
fn kernel_assembly_is_bit_identical_across_worker_counts() {
    let pts = points(61, 5);
    let reference = affinity_matrix(&pts, Kernel::Gaussian, 0.7).expect("sequential affinity");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let parallel = affinity_matrix_with(&pts, Kernel::Gaussian, 0.7, &executor)
            .expect("parallel affinity");
        assert_eq!(
            reference.as_slice(),
            parallel.as_slice(),
            "affinity assembly diverged at {workers} workers"
        );
    }
}

#[test]
fn kernel_graph_weights_are_bit_identical_across_worker_counts() {
    let graph = KernelGraph::fit(points(53, 4), Kernel::Epanechnikov, 0.9).expect("graph fit");
    let reference = graph.weights().expect("sequential weights");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let parallel = graph.weights_with(&executor).expect("parallel weights");
        assert_eq!(
            reference.as_slice(),
            parallel.as_slice(),
            "KernelGraph::weights_with diverged at {workers} workers"
        );
    }
}

#[test]
fn knn_assembly_is_bit_identical_across_worker_counts() {
    let pts = points(47, 3);
    for symmetrization in [Symmetrization::Union, Symmetrization::Mutual] {
        let reference = knn_graph(&pts, 6, Kernel::Gaussian, 0.8, symmetrization)
            .expect("sequential knn graph");
        for workers in WORKER_COUNTS {
            let executor = Executor::with_workers(workers);
            let parallel =
                knn_graph_with(&pts, 6, Kernel::Gaussian, 0.8, symmetrization, &executor)
                    .expect("parallel knn graph");
            assert_eq!(reference.nnz(), parallel.nnz());
            assert_eq!(
                reference.to_dense().as_slice(),
                parallel.to_dense().as_slice(),
                "knn assembly diverged at {workers} workers ({symmetrization:?})"
            );
        }
    }
}

#[test]
fn spatial_index_build_and_batched_queries_are_bit_identical() {
    // Two independent builds of the same cloud must be the same tree
    // (construction is deterministic, no RNG, no address-dependent
    // ordering), and batched queries against it must not depend on the
    // worker count — the chunks reassemble in input order.
    let pts = points(90, 3);
    let queries = points(33, 3);
    let index = SpatialIndex::build(&pts).expect("index build");
    let rebuilt = SpatialIndex::build(&pts).expect("index rebuild");
    let reference =
        k_nearest_batch(&index, &queries, 5, &Executor::Sequential).expect("sequential batch");
    let twin =
        k_nearest_batch(&rebuilt, &queries, 5, &Executor::Sequential).expect("rebuilt batch");
    for workers in [1, 2, 4, 8] {
        let executor = Executor::with_workers(workers);
        let parallel = k_nearest_batch(&index, &queries, 5, &executor).expect("parallel batch");
        for (pair, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.len(), p.len(), "query {pair} at {workers} workers");
            for (a, b) in r.iter().zip(p) {
                assert_eq!(a.index, b.index, "query {pair} at {workers} workers");
                assert_eq!(
                    a.dist2.to_bits(),
                    b.dist2.to_bits(),
                    "query {pair} distance at {workers} workers"
                );
            }
        }
    }
    for (r, t) in reference.iter().zip(&twin) {
        assert_eq!(r, t, "independent builds answered differently");
    }
}

#[test]
fn knn_graph_with_is_bit_identical_at_high_worker_counts() {
    // The 1/2/3/4 sweep above pins tree-vs-brute equality; this one
    // extends the worker grid to 8 (more workers than chunks for some
    // block sizes) on the accelerated builder alone.
    let pts = points(64, 3);
    let reference = knn_graph(&pts, 7, Kernel::Gaussian, 0.8, Symmetrization::Union)
        .expect("sequential knn graph");
    for workers in [1, 2, 4, 8] {
        let executor = Executor::with_workers(workers);
        let parallel = knn_graph_with(
            &pts,
            7,
            Kernel::Gaussian,
            0.8,
            Symmetrization::Union,
            &executor,
        )
        .expect("parallel knn graph");
        assert_eq!(
            reference.to_dense().as_slice(),
            parallel.to_dense().as_slice(),
            "knn_graph_with diverged at {workers} workers"
        );
    }
}

/// A dense anchored two-class problem shared by the fit tests.
fn fit_problem() -> Problem {
    let weights = affinity_matrix(&points(72, 3), Kernel::Gaussian, 0.6).expect("affinity");
    let labels: Vec<f64> = (0..14).map(|i| f64::from(i as u8 % 2)).collect();
    Problem::new(weights, labels).expect("problem")
}

#[test]
fn hard_fit_is_bit_identical_across_worker_counts() {
    let problem = fit_problem();
    let reference = HardCriterion::new().fit(&problem).expect("sequential fit");
    for workers in WORKER_COUNTS {
        let parallel = HardCriterion::new()
            .with_executor(Executor::with_workers(workers))
            .fit(&problem)
            .expect("parallel fit");
        assert_eq!(
            reference.all(),
            parallel.all(),
            "hard fit diverged at {workers} workers"
        );
    }
}

#[test]
fn soft_fit_is_bit_identical_across_worker_counts() {
    let problem = fit_problem();
    let criterion = SoftCriterion::new(0.75).expect("lambda");
    let reference = criterion.fit(&problem).expect("sequential fit");
    for workers in WORKER_COUNTS {
        let parallel = SoftCriterion::new(0.75)
            .expect("lambda")
            .policy(SolverPolicy::default().with_executor(Executor::with_workers(workers)))
            .fit(&problem)
            .expect("parallel fit");
        assert_eq!(
            reference.all(),
            parallel.all(),
            "soft fit diverged at {workers} workers"
        );
    }
}

#[test]
fn multiclass_fit_is_bit_identical_across_worker_counts() {
    let weights = affinity_matrix(&points(60, 3), Kernel::Gaussian, 0.6).expect("affinity");
    let class_labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
    let reference = OneVsRest::new(HardCriterion::new(), 3)
        .expect("ovr")
        .fit(&weights, &class_labels)
        .expect("sequential fit");
    for workers in WORKER_COUNTS {
        let parallel = OneVsRest::new(HardCriterion::new(), 3)
            .expect("ovr")
            .with_executor(Executor::with_workers(workers))
            .fit(&weights, &class_labels)
            .expect("parallel fit");
        assert_eq!(
            reference.scores().as_slice(),
            parallel.scores().as_slice(),
            "one-vs-rest score matrix diverged at {workers} workers"
        );
        assert_eq!(reference.predictions(), parallel.predictions());
    }
}

#[test]
fn predict_batch_is_bit_identical_across_worker_counts() {
    let pts = points(48, 2);
    let labels: Vec<f64> = (0..10).map(|i| f64::from(i as u8 % 2)).collect();
    let queries: Vec<QueryPoint> = (0..37)
        .map(|q| {
            QueryPoint::new(vec![
                (((q * 131 + 11) as f64) * 0.618_033_988_749_894_9).fract(),
                (((q * 131 + 48) as f64) * 0.618_033_988_749_894_9).fract(),
            ])
        })
        .collect();
    let fit = |workers: usize| {
        let config = EngineConfig::new(Kernel::Gaussian, 0.5).workers(workers);
        let engine = ServingEngine::fit(&pts, &labels, config).expect("engine fit");
        engine.predict_batch(&queries).expect("batch predict")
    };
    let reference = fit(1);
    for workers in WORKER_COUNTS {
        let parallel = fit(workers);
        assert_eq!(reference.len(), parallel.len());
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.class, p.class, "query {i} class at {workers} workers");
            assert_eq!(
                r.score.to_bits(),
                p.score.to_bits(),
                "query {i} score at {workers} workers"
            );
            let same = r.per_class.len() == p.per_class.len()
                && r.per_class
                    .iter()
                    .zip(&p.per_class)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "query {i} per-class scores at {workers} workers");
        }
    }
}

#[test]
fn distance_and_affinity_pipeline_is_bit_identical_across_worker_counts() {
    let pts = points(57, 4);
    let d2 = pairwise_squared_distances(&pts).expect("sequential distances");
    let w = affinity_from_distances(&d2, Kernel::Gaussian, 0.7).expect("sequential affinity");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let d2_par = pairwise_squared_distances_with(&pts, &executor).expect("parallel distances");
        assert_eq!(
            d2.as_slice(),
            d2_par.as_slice(),
            "pairwise distances diverged at {workers} workers"
        );
        let w_par = affinity_from_distances_with(&d2, Kernel::Gaussian, 0.7, &executor)
            .expect("parallel affinity");
        assert_eq!(
            w.as_slice(),
            w_par.as_slice(),
            "affinity-from-distances diverged at {workers} workers"
        );
    }
    // The bandwidth-rule front end is a pure function of its inputs: two
    // invocations agree bitwise, and the matrix equals a direct assembly
    // at the resolved bandwidth.
    let (w1, h1) =
        affinity_with_rule(&pts, Kernel::Gaussian, Bandwidth::PaperRate, Some(12)).expect("rule");
    let (w2, h2) =
        affinity_with_rule(&pts, Kernel::Gaussian, Bandwidth::PaperRate, Some(12)).expect("rule");
    assert_eq!(h1.to_bits(), h2.to_bits());
    assert_eq!(w1.as_slice(), w2.as_slice());
    let direct = affinity_matrix(&pts, Kernel::Gaussian, h1).expect("direct");
    assert_eq!(w1.as_slice(), direct.as_slice());
}

#[test]
fn epsilon_graph_assembly_is_bit_identical_across_worker_counts() {
    let pts = points(50, 3);
    let reference = epsilon_graph(&pts, 0.6, Kernel::Gaussian, 0.8).expect("sequential graph");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let parallel = epsilon_graph_with(&pts, 0.6, Kernel::Gaussian, 0.8, &executor)
            .expect("parallel graph");
        assert_eq!(reference.nnz(), parallel.nnz());
        assert_eq!(
            reference.to_dense().as_slice(),
            parallel.to_dense().as_slice(),
            "epsilon-graph assembly diverged at {workers} workers"
        );
    }
}

#[test]
fn out_of_sample_kernel_rows_are_deterministic() {
    let graph = KernelGraph::fit(points(40, 3), Kernel::Gaussian, 0.7).expect("graph fit");
    let query = [0.31, 0.62, 0.13];
    let row = graph.kernel_row(&query).expect("kernel row");
    let again = graph.kernel_row(&query).expect("kernel row again");
    assert_eq!(row.as_slice(), again.as_slice());
    // The buffer-reusing variant computes the very same expressions.
    let mut out = vec![0.0; row.len()];
    graph
        .kernel_row_into(&query, &mut out)
        .expect("kernel row into");
    assert_eq!(row.as_slice(), out.as_slice());
    // A query that coincides with vertex i reproduces weights row i.
    let weights = graph.weights().expect("weights");
    let n = weights.rows();
    let vertex_row = graph.kernel_row(graph.points().row(2)).expect("vertex row");
    for j in 0..n {
        assert_eq!(
            vertex_row.as_slice()[j].to_bits(),
            weights.get(2, j).to_bits(),
            "kernel_row at vertex 2 disagrees with weights row at column {j}"
        );
    }
}

#[test]
fn single_query_search_is_deterministic_and_matches_self_batches() {
    let pts = points(40, 3);
    let index = SpatialIndex::build(&pts).expect("index build");
    let query = pts.row(5);
    // Repeated single queries are bitwise-stable.
    assert_eq!(
        index.k_nearest(query, 6).expect("k_nearest"),
        index.k_nearest(query, 6).expect("k_nearest again")
    );
    assert_eq!(
        index.within_radius(query, 0.9).expect("within_radius"),
        index
            .within_radius(query, 0.9)
            .expect("within_radius again")
    );
    let excluded = index
        .k_nearest_excluding(query, 6, Some(5))
        .expect("k_nearest_excluding");
    assert!(excluded.iter().all(|nb| nb.index != 5));
    // The self-join batches reassemble those per-point queries in input
    // order at every worker count.
    let knn_ref =
        self_k_nearest_batch(&index, 5, &Executor::Sequential).expect("sequential self-knn");
    let radius_ref = self_within_radius_batch(&index, 0.8, &Executor::Sequential)
        .expect("sequential self-radius");
    for (i, neighbors) in knn_ref.iter().enumerate() {
        let single = index
            .k_nearest_excluding(index.point(i), 5, Some(i))
            .expect("single query");
        assert_eq!(
            neighbors, &single,
            "batched row {i} disagrees with the single query"
        );
    }
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let knn_par = self_k_nearest_batch(&index, 5, &executor).expect("parallel self-knn");
        assert_eq!(
            knn_ref, knn_par,
            "self-knn batch diverged at {workers} workers"
        );
        let radius_par =
            self_within_radius_batch(&index, 0.8, &executor).expect("parallel self-radius");
        assert_eq!(
            radius_ref, radius_par,
            "self-radius batch diverged at {workers} workers"
        );
    }
}

#[test]
fn matmul_is_bit_identical_across_worker_counts() {
    let a = points(33, 21);
    let b = points(21, 17);
    let reference = a.matmul(&b).expect("sequential matmul");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let parallel = a.matmul_with(&b, &executor).expect("parallel matmul");
        assert_eq!(
            reference.as_slice(),
            parallel.as_slice(),
            "matmul diverged at {workers} workers"
        );
    }
}

/// A symmetric positive-definite system (`I + L` for an affinity graph's
/// Laplacian `L`) and a fixed right-hand side, shared by the
/// factorization tests.
fn spd_system(n: usize) -> (Matrix, Vector) {
    let w = affinity_matrix(&points(n, 3), Kernel::Gaussian, 0.6).expect("affinity");
    let a = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0 + (0..n).map(|k| w.get(i, k)).sum::<f64>()
        } else {
            -w.get(i, j)
        }
    });
    let rhs: Vec<f64> = (0..n)
        .map(|i| (((i * 37 + 5) as f64) * 0.01).sin())
        .collect();
    (a, Vector::from(rhs))
}

#[test]
fn dense_factorizations_are_bit_identical_across_worker_counts() {
    let (a, rhs) = spd_system(28);
    let chol_ref = Cholesky::factor(&a).expect("sequential cholesky");
    let lu_ref = Lu::factor(&a).expect("sequential lu");
    let chol_solution = chol_ref.solve(&rhs).expect("cholesky solve");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let chol = Cholesky::factor_with(&a, &executor).expect("parallel cholesky");
        assert_eq!(
            chol_ref.lower().as_slice(),
            chol.lower().as_slice(),
            "Cholesky factor diverged at {workers} workers"
        );
        assert_eq!(
            chol_solution.as_slice(),
            chol.solve(&rhs).expect("solve").as_slice(),
            "Cholesky solve diverged at {workers} workers"
        );
        let lu = Lu::factor_with(&a, &executor).expect("parallel lu");
        assert_eq!(
            lu_ref.factors().as_slice(),
            lu.factors().as_slice(),
            "LU factors diverged at {workers} workers"
        );
        assert_eq!(
            lu_ref.perm(),
            lu.perm(),
            "LU pivots diverged at {workers} workers"
        );
    }
}

#[test]
fn solver_policy_backends_are_bit_identical_across_worker_counts() {
    let (a, rhs) = spd_system(26);
    let sparse = CsrMatrix::from_dense(&a, 0.0);
    let policy = SolverPolicy::default();
    let dense_ref = policy
        .factor_dense(&a)
        .and_then(|f| f.solve(&rhs))
        .expect("sequential dense solve");
    let spd_ref = policy
        .factor_spd(&a)
        .and_then(|f| f.solve(&rhs))
        .expect("sequential spd solve");
    let sparse_ref = policy
        .factor_sparse(&sparse)
        .and_then(|f| f.solve(&rhs))
        .expect("sequential sparse solve");
    for workers in WORKER_COUNTS {
        let policy = SolverPolicy::default().with_executor(Executor::with_workers(workers));
        assert_eq!(
            dense_ref.as_slice(),
            policy
                .factor_dense(&a)
                .and_then(|f| f.solve(&rhs))
                .expect("parallel dense solve")
                .as_slice(),
            "factor_dense solve diverged at {workers} workers"
        );
        assert_eq!(
            spd_ref.as_slice(),
            policy
                .factor_spd(&a)
                .and_then(|f| f.solve(&rhs))
                .expect("parallel spd solve")
                .as_slice(),
            "factor_spd solve diverged at {workers} workers"
        );
        assert_eq!(
            sparse_ref.as_slice(),
            policy
                .factor_sparse(&sparse)
                .and_then(|f| f.solve(&rhs))
                .expect("parallel sparse solve")
                .as_slice(),
            "factor_sparse solve diverged at {workers} workers"
        );
    }
}

#[test]
fn preconditioned_cg_backends_are_bit_identical_across_worker_counts() {
    // Every preconditioner family behind PrecondCg shards only the CG
    // matvecs; the preconditioner application stays sequential. The solve
    // must therefore be byte-for-byte the sequential result at any worker
    // count, and two independent factorizations must agree bitwise.
    let (a, rhs) = spd_system(48);
    let sparse = CsrMatrix::from_dense(&a, 0.0);
    for kind in [
        PrecondKind::Jacobi,
        PrecondKind::BlockJacobi { block_dim: 8 },
        PrecondKind::Ic0,
    ] {
        let reference = PrecondCg::factor_sparse_with(&sparse, kind.clone(), CgOptions::default())
            .expect("sequential factor")
            .solve(&rhs)
            .expect("sequential solve");
        for workers in [1, 2, 4, 8] {
            let parallel =
                PrecondCg::factor_sparse_with(&sparse, kind.clone(), CgOptions::default())
                    .expect("parallel factor")
                    .with_executor(Executor::with_workers(workers))
                    .solve(&rhs)
                    .expect("parallel solve");
            assert_eq!(
                reference.as_slice(),
                parallel.as_slice(),
                "{kind:?} PCG solve diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn amg_hierarchy_and_solves_are_bit_identical_across_worker_counts() {
    // Coarsening (heavy-edge matching + Galerkin products) is a pure
    // sequential function of the matrix, so two independent hierarchies
    // must be identical; the V-cycle shards only the finest-level matvecs,
    // so solves must match the sequential run bitwise at any worker count.
    let (a, rhs) = spd_system(96);
    let sparse = CsrMatrix::from_dense(&a, 0.0);
    let reference = AmgCg::factor_sparse(&sparse, AmgOptions::default()).expect("factor");
    let twin = AmgCg::factor_sparse(&sparse, AmgOptions::default()).expect("refactor");
    assert_eq!(reference.levels(), twin.levels());
    assert_eq!(reference.coarse_dim(), twin.coarse_dim());
    let sequential = reference.solve(&rhs).expect("sequential solve");
    assert_eq!(
        sequential.as_slice(),
        twin.solve(&rhs).expect("twin solve").as_slice(),
        "independent AMG hierarchies solved differently"
    );
    for workers in [1, 2, 4, 8] {
        let parallel = AmgCg::factor_sparse(&sparse, AmgOptions::default())
            .expect("parallel factor")
            .with_executor(Executor::with_workers(workers))
            .solve(&rhs)
            .expect("parallel solve");
        assert_eq!(
            sequential.as_slice(),
            parallel.as_slice(),
            "AMG solve diverged at {workers} workers"
        );
    }
}

#[test]
fn executor_primitives_are_bit_identical_across_worker_counts() {
    let data: Vec<f64> = (0..97).map(|i| (i as f64) * 0.37).collect();
    let map_ref = Executor::Sequential
        .map(&data, |i, x| {
            Ok::<f64, gssl_runtime::Error>(x.sin() * ((i + 1) as f64).sqrt())
        })
        .expect("sequential map");
    let mut mut_ref = data.clone();
    Executor::Sequential
        .for_each_chunk_mut(&mut mut_ref, 8, |start, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = x.cos() + ((start + k) as f64) * 0.01;
            }
        })
        .expect("sequential chunk mutation");
    for workers in WORKER_COUNTS {
        let executor = Executor::with_workers(workers);
        let mapped = executor
            .map(&data, |i, x| {
                Ok::<f64, gssl_runtime::Error>(x.sin() * ((i + 1) as f64).sqrt())
            })
            .expect("parallel map");
        assert_eq!(
            map_ref, mapped,
            "Executor::map diverged at {workers} workers"
        );
        let mut mutated = data.clone();
        executor
            .for_each_chunk_mut(&mut mutated, 8, |start, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = x.cos() + ((start + k) as f64) * 0.01;
                }
            })
            .expect("parallel chunk mutation");
        assert_eq!(
            mut_ref, mutated,
            "Executor::for_each_chunk_mut diverged at {workers} workers"
        );
    }
}

#[test]
fn full_system_and_factored_fits_are_bit_identical_across_worker_counts() {
    // Soft criterion, full (n + m) system path.
    let problem = fit_problem();
    let full_ref = SoftCriterion::new(0.75)
        .expect("lambda")
        .fit_full_system(&problem)
        .expect("sequential full-system fit");
    for workers in WORKER_COUNTS {
        let parallel = SoftCriterion::new(0.75)
            .expect("lambda")
            .policy(SolverPolicy::default().with_executor(Executor::with_workers(workers)))
            .fit_full_system(&problem)
            .expect("parallel full-system fit");
        assert_eq!(
            full_ref.all(),
            parallel.all(),
            "full-system soft fit diverged at {workers} workers"
        );
    }
    // Factored one-vs-rest (shared factorization through
    // `HardCriterion::fit_multiclass`).
    let weights = affinity_matrix(&points(45, 3), Kernel::Gaussian, 0.6).expect("affinity");
    let class_labels: Vec<usize> = (0..45).map(|i| i % 3).collect();
    let factored_ref = OneVsRest::new(HardCriterion::new(), 3)
        .expect("ovr")
        .fit_factored(&weights, &class_labels)
        .expect("sequential factored fit");
    for workers in WORKER_COUNTS {
        let parallel = OneVsRest::new(HardCriterion::new(), 3)
            .expect("ovr")
            .with_executor(Executor::with_workers(workers))
            .fit_factored(&weights, &class_labels)
            .expect("parallel factored fit");
        assert_eq!(
            factored_ref.scores().as_slice(),
            parallel.scores().as_slice(),
            "factored multiclass fit diverged at {workers} workers"
        );
        assert_eq!(factored_ref.predictions(), parallel.predictions());
    }
}

#[test]
fn multiclass_serving_is_bit_identical_across_worker_counts() {
    let pts = points(42, 2);
    let class_labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
    let queries: Vec<QueryPoint> = (0..23)
        .map(|q| {
            QueryPoint::new(vec![
                (((q * 131 + 17) as f64) * 0.618_033_988_749_894_9).fract(),
                (((q * 131 + 54) as f64) * 0.618_033_988_749_894_9).fract(),
            ])
        })
        .collect();
    let fit = |workers: usize| {
        let config = EngineConfig::new(Kernel::Gaussian, 0.5).workers(workers);
        let engine =
            ServingEngine::fit_multiclass(&pts, &class_labels, 3, config).expect("engine fit");
        engine.predict_batch(&queries).expect("batch predict")
    };
    let reference = fit(1);
    for workers in WORKER_COUNTS {
        let parallel = fit(workers);
        assert_eq!(reference.len(), parallel.len());
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.class, p.class, "query {i} class at {workers} workers");
            let same = r.per_class.len() == p.per_class.len()
                && r.per_class
                    .iter()
                    .zip(&p.per_class)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "query {i} per-class scores at {workers} workers");
        }
    }
}

#[test]
fn score_argsort_is_deterministic() {
    let scores: Vec<f64> = (0..101)
        .map(|i| (((i * 193 + 7) as f64) * 0.618_033_988_749_894_9).fract() - 0.5)
        .collect();
    let order = argsort_scores(&scores);
    assert_eq!(order, argsort_scores(&scores));
    // A permutation, ascending under the total order.
    let mut seen = vec![false; scores.len()];
    for &i in &order {
        seen[i] = true;
    }
    assert!(seen.iter().all(|&s| s));
    for pair in order.windows(2) {
        assert!(scores[pair[0]].total_cmp(&scores[pair[1]]).is_le());
    }
    // Total on NaN: no panic, NaN sorts after every finite value.
    assert_eq!(argsort_scores(&[0.5, f64::NAN, -1.0]), vec![2, 0, 1]);
}

/// The exhaustive proof backing the `map_chunks` determinism claim: every
/// bounded interleaving of the chunk-claim protocol yields disjoint,
/// exhaustive claims with results published once each — for the same
/// (len, workers, width) grid shapes the library uses (width from
/// `len.div_ceil(workers * 4).max(1)` plus adversarial widths).
#[test]
fn schedule_enumeration_proves_the_map_chunks_claim_protocol() {
    for len in [1usize, 2, 5, 6] {
        for workers in [1usize, 2, 3] {
            let library_width = len.div_ceil(workers.saturating_mul(4)).max(1);
            for width in [library_width, 1, 2, len] {
                let report = sim::enumerate_schedules_with_width(len, workers, width)
                    .unwrap_or_else(|violation| {
                        panic!("len={len} workers={workers} width={width}: {violation}")
                    });
                assert!(report.schedules > 0);
                assert_eq!(report.chunks, len.div_ceil(width));
            }
        }
    }
    // And the production `ThreadPool::map` width selection itself.
    let report = sim::enumerate_schedules(6, 2).expect("map chunk protocol");
    assert!(report.schedules > 0);
}

/// Three interleaved 1-D clusters (node `i` in cluster `i % 3`): a compact
/// kernel disconnects them, so the serving graph has three components with
/// members scattered through the global index space.
fn clustered_points(total: usize) -> Matrix {
    Matrix::from_fn(total, 1, |i, _| {
        let jitter = (((i * 37 + 11) as f64) * 0.618_033_988_749_894_9).fract();
        (i % 3) as f64 * 10.0 + jitter
    })
}

fn cluster_queries(count: usize) -> Vec<QueryPoint> {
    (0..count)
        .map(|q| {
            let jitter = (((q * 53 + 5) as f64) * 0.618_033_988_749_894_9).fract();
            QueryPoint::new(vec![(q % 3) as f64 * 10.0 + jitter])
        })
        .collect()
}

#[test]
fn component_partition_is_deterministic_and_exhaustive() {
    // Block structure with interleaved membership: i ~ j iff i ≡ j (mod 3).
    let n = 17;
    let w = Matrix::from_fn(
        n,
        n,
        |i, j| {
            if i != j && i % 3 == j % 3 {
                1.0
            } else {
                0.0
            }
        },
    );
    let reference = component_partition(&w, 0.0).expect("partition");
    assert_eq!(reference.len(), 3);
    let mut seen = vec![false; n];
    for members in &reference {
        for &v in members {
            assert!(!seen[v], "vertex {v} assigned twice");
            seen[v] = true;
        }
        // Deterministic order contract: members ascend.
        for pair in members.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
    assert!(seen.iter().all(|&s| s), "partition must cover every vertex");
    for _ in 0..3 {
        assert_eq!(reference, component_partition(&w, 0.0).expect("repeat"));
    }
}

#[test]
fn map_tasks_is_bit_identical_across_worker_counts() {
    // Deliberately uneven per-task cost so the width-1 claim order is
    // actually contended when the pool runs multi-worker.
    let tasks: Vec<usize> = (0..23).collect();
    let run = |workers: usize| -> Vec<f64> {
        let executor = Executor::with_workers(workers);
        executor
            .map_tasks(&tasks, |index, &t| {
                let mut acc = 0.0_f64;
                for k in 0..(t * 97 + 13) {
                    acc += (((k * 31 + index + 7) as f64) * 0.618_033_988_749_894_9).fract();
                }
                Ok::<f64, gssl_runtime::Error>(acc)
            })
            .expect("map_tasks")
    };
    let reference = run(1);
    for workers in WORKER_COUNTS {
        let parallel = run(workers);
        assert_eq!(reference.len(), parallel.len());
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(
                r.to_bits(),
                p.to_bits(),
                "task {i} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn shard_plan_is_deterministic() {
    let n = 15;
    let w = Matrix::from_fn(
        n,
        n,
        |i, j| {
            if i != j && i % 3 == j % 3 {
                0.5
            } else {
                0.0
            }
        },
    );
    let reference = ShardPlan::new(&w, 3).expect("plan");
    assert_eq!(reference.n_shards(), 3);
    for repeat in 0..3 {
        let plan = ShardPlan::new(&w, 3).expect("plan repeat");
        assert_eq!(plan.n_shards(), reference.n_shards(), "repeat {repeat}");
        for (s, (a, b)) in reference.shards().iter().zip(plan.shards()).enumerate() {
            assert_eq!(a.members(), b.members(), "shard {s} repeat {repeat}");
            assert_eq!(a.n_labeled(), b.n_labeled(), "shard {s} repeat {repeat}");
        }
        for v in 0..n {
            assert_eq!(plan.shard_of(v), reference.shard_of(v));
        }
    }
}

#[test]
fn sharded_serving_is_bit_identical_across_worker_counts() {
    let pts = clustered_points(24);
    let labels = [0.0, 1.0, 0.0];
    let queries = cluster_queries(19);
    let fit = |workers: usize| {
        let config = EngineConfig::new(Kernel::Epanechnikov, 1.6).workers(workers);
        ShardedEngine::fit(&pts, &labels, config).expect("sharded fit")
    };
    let reference_engine = fit(1);
    assert_eq!(
        reference_engine.n_shards(),
        3,
        "expected a real decomposition"
    );
    let reference_scores = reference_engine.scores();
    let reference = reference_engine.predict_batch(&queries).expect("predict");
    for workers in [1, 2, 4, 8] {
        let engine = fit(workers);
        assert_eq!(
            reference_scores.as_slice(),
            engine.scores().as_slice(),
            "fitted scores diverged at {workers} workers"
        );
        let parallel = engine.predict_batch(&queries).expect("predict");
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.class, p.class, "query {i} class at {workers} workers");
            let same = r.per_class.len() == p.per_class.len()
                && r.per_class
                    .iter()
                    .zip(&p.per_class)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "query {i} per-class scores at {workers} workers");
        }
    }
}

#[test]
fn sharded_multiclass_is_bit_identical_across_worker_counts() {
    let pts = clustered_points(27);
    let class_labels = [0, 1, 2];
    let queries = cluster_queries(13);
    let fit = |workers: usize| {
        let config = EngineConfig::new(Kernel::Epanechnikov, 1.6).workers(workers);
        ShardedEngine::fit_multiclass(&pts, &class_labels, 3, config).expect("sharded fit")
    };
    let reference_engine = fit(1);
    let reference_scores = reference_engine.scores();
    let reference = reference_engine.predict_batch(&queries).expect("predict");
    for workers in [1, 2, 4, 8] {
        let engine = fit(workers);
        assert_eq!(
            reference_scores.as_slice(),
            engine.scores().as_slice(),
            "multiclass scores diverged at {workers} workers"
        );
        let parallel = engine.predict_batch(&queries).expect("predict");
        for (i, (r, p)) in reference.iter().zip(&parallel).enumerate() {
            assert_eq!(r.class, p.class, "query {i} class at {workers} workers");
            let same = r
                .per_class
                .iter()
                .zip(&p.per_class)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "query {i} per-class at {workers} workers");
        }
    }
}

#[test]
fn snapshot_roundtrip_is_bit_identical() {
    let pts = clustered_points(21);
    let labels = [0.0, 1.0, 1.0];
    let config = EngineConfig::new(Kernel::Epanechnikov, 1.6).workers(2);
    let engine = ShardedEngine::fit(&pts, &labels, config).expect("sharded fit");
    engine.observe_label(9, 0.0).expect("fold");

    // The byte stream itself is deterministic: same state, same bytes.
    let bytes = engine.snapshot().expect("snapshot");
    assert_eq!(bytes, engine.snapshot().expect("second snapshot"));

    // And restore reproduces the fitted state bit for bit, at any
    // subsequent worker count.
    let queries = cluster_queries(11);
    let reference = engine.predict_batch(&queries).expect("predict");
    let restored = ShardedEngine::restore(&bytes).expect("restore");
    assert_eq!(restored.epoch(), engine.epoch());
    assert_eq!(
        engine.scores().as_slice(),
        restored.scores().as_slice(),
        "restored scores are not bitwise-identical"
    );
    let served = restored.predict_batch(&queries).expect("restored predict");
    for (i, (r, p)) in reference.iter().zip(&served).enumerate() {
        assert_eq!(r.class, p.class, "query {i} class after restore");
        let same = r
            .per_class
            .iter()
            .zip(&p.per_class)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "query {i} per-class after restore");
    }
}

/// Pins the `/// deterministic` annotation inventory to the bitwise tests
/// that cover it: every annotated entry point in `crates/*/src` must map
/// to a test defined in this file, and every table row must still point
/// at a live marker. Adding a marker without a covering test fails the
/// first assertion; deleting one leaves a stale row and fails the second.
/// `gssl-xtask` pins the same inventory by count, so the analyzer's
/// contract set and this suite cannot drift apart silently.
#[test]
fn every_deterministic_entry_point_has_a_bitwise_covering_test() {
    // (file, fn, covering test in this file)
    const COVERAGE: &[(&str, &str, &str)] = &[
        (
            "crates/core/src/cmn.rs",
            "argsort_scores",
            "score_argsort_is_deterministic",
        ),
        (
            "crates/core/src/hard.rs",
            "fit",
            "hard_fit_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/core/src/hard.rs",
            "fit_multiclass",
            "full_system_and_factored_fits_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/core/src/multiclass.rs",
            "fit",
            "multiclass_fit_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/core/src/multiclass.rs",
            "fit_factored",
            "full_system_and_factored_fits_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/core/src/soft.rs",
            "fit",
            "soft_fit_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/core/src/soft.rs",
            "fit_full_system",
            "full_system_and_factored_fits_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "pairwise_squared_distances",
            "distance_and_affinity_pipeline_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "pairwise_squared_distances_with",
            "distance_and_affinity_pipeline_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "affinity_matrix",
            "kernel_assembly_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "affinity_matrix_with",
            "kernel_assembly_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "affinity_from_distances",
            "distance_and_affinity_pipeline_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "affinity_from_distances_with",
            "distance_and_affinity_pipeline_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/affinity.rs",
            "affinity_with_rule",
            "distance_and_affinity_pipeline_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/knn.rs",
            "knn_graph",
            "knn_assembly_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/knn.rs",
            "knn_graph_with",
            "knn_assembly_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/knn.rs",
            "epsilon_graph",
            "epsilon_graph_assembly_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/knn.rs",
            "epsilon_graph_with",
            "epsilon_graph_assembly_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/extension.rs",
            "fit",
            "kernel_graph_weights_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/extension.rs",
            "weights",
            "kernel_graph_weights_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/extension.rs",
            "weights_with",
            "kernel_graph_weights_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/extension.rs",
            "kernel_row",
            "out_of_sample_kernel_rows_are_deterministic",
        ),
        (
            "crates/graph/src/extension.rs",
            "kernel_row_into",
            "out_of_sample_kernel_rows_are_deterministic",
        ),
        (
            "crates/index/src/neighbor.rs",
            "build",
            "spatial_index_build_and_batched_queries_are_bit_identical",
        ),
        (
            "crates/index/src/neighbor.rs",
            "k_nearest_excluding",
            "single_query_search_is_deterministic_and_matches_self_batches",
        ),
        (
            "crates/index/src/neighbor.rs",
            "k_nearest",
            "single_query_search_is_deterministic_and_matches_self_batches",
        ),
        (
            "crates/index/src/neighbor.rs",
            "within_radius",
            "single_query_search_is_deterministic_and_matches_self_batches",
        ),
        (
            "crates/index/src/neighbor.rs",
            "k_nearest_batch",
            "spatial_index_build_and_batched_queries_are_bit_identical",
        ),
        (
            "crates/index/src/neighbor.rs",
            "self_k_nearest_batch",
            "single_query_search_is_deterministic_and_matches_self_batches",
        ),
        (
            "crates/index/src/neighbor.rs",
            "self_within_radius_batch",
            "single_query_search_is_deterministic_and_matches_self_batches",
        ),
        (
            "crates/linalg/src/matrix.rs",
            "matmul",
            "matmul_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/matrix.rs",
            "matmul_with",
            "matmul_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/cholesky.rs",
            "factor",
            "dense_factorizations_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/cholesky.rs",
            "factor_with",
            "dense_factorizations_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/lu.rs",
            "factor",
            "dense_factorizations_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/lu.rs",
            "factor_with",
            "dense_factorizations_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/precond.rs",
            "factor",
            "preconditioned_cg_backends_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/amg.rs",
            "factor_sparse",
            "amg_hierarchy_and_solves_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/factor.rs",
            "factor_sparse_with",
            "preconditioned_cg_backends_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/factor.rs",
            "factor_dense",
            "solver_policy_backends_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/factor.rs",
            "factor_sparse",
            "solver_policy_backends_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/linalg/src/factor.rs",
            "factor_spd",
            "solver_policy_backends_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/runtime/src/executor.rs",
            "map",
            "executor_primitives_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/runtime/src/executor.rs",
            "map_chunks",
            "schedule_enumeration_proves_the_map_chunks_claim_protocol",
        ),
        (
            "crates/runtime/src/executor.rs",
            "for_each_chunk_mut",
            "executor_primitives_are_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/engine.rs",
            "fit",
            "predict_batch_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/engine.rs",
            "fit_multiclass",
            "multiclass_serving_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/engine.rs",
            "predict_batch",
            "predict_batch_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/graph/src/components.rs",
            "component_partition",
            "component_partition_is_deterministic_and_exhaustive",
        ),
        (
            "crates/runtime/src/executor.rs",
            "map_tasks",
            "map_tasks_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/shard.rs",
            "new",
            "shard_plan_is_deterministic",
        ),
        (
            "crates/serve/src/sharded.rs",
            "fit",
            "sharded_serving_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/sharded.rs",
            "fit_multiclass",
            "sharded_multiclass_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/sharded.rs",
            "predict_batch",
            "sharded_serving_is_bit_identical_across_worker_counts",
        ),
        (
            "crates/serve/src/snapshot.rs",
            "snapshot",
            "snapshot_roundtrip_is_bit_identical",
        ),
        (
            "crates/serve/src/snapshot.rs",
            "restore",
            "snapshot_roundtrip_is_bit_identical",
        ),
    ];

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let marker = "/// deterministic";
    let mut annotated = std::collections::BTreeSet::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("crates tree is readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                if path
                    .file_name()
                    .is_some_and(|n| n == "fixtures" || n == "target")
                {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("source is readable");
                let lines: Vec<&str> = text.lines().collect();
                let rel = path
                    .strip_prefix(root)
                    .expect("path under workspace root")
                    .to_string_lossy()
                    .replace('\\', "/");
                for (i, line) in lines.iter().enumerate() {
                    if line.trim() != marker {
                        continue;
                    }
                    // The annotated item is the next `fn` below the marker
                    // (attributes like `#[must_use]` may sit in between).
                    let name = lines[i + 1..]
                        .iter()
                        .find_map(|l| {
                            let mut tokens = l.split_whitespace();
                            tokens.find(|&t| t == "fn")?;
                            let raw = tokens.next()?;
                            let end = raw.find(|c| c == '(' || c == '<').unwrap_or(raw.len());
                            Some(raw[..end].to_owned())
                        })
                        .unwrap_or_else(|| panic!("{rel}:{}: marker with no fn below", i + 1));
                    annotated.insert((rel.clone(), name));
                }
            }
        }
    }

    let pinned: std::collections::BTreeSet<(String, String)> = COVERAGE
        .iter()
        .map(|&(file, func, _)| (file.to_owned(), func.to_owned()))
        .collect();
    let uncovered: Vec<_> = annotated.difference(&pinned).collect();
    assert!(
        uncovered.is_empty(),
        "annotated entry points with no covering bitwise test: {uncovered:?}"
    );
    let stale: Vec<_> = pinned.difference(&annotated).collect();
    assert!(
        stale.is_empty(),
        "coverage rows whose `/// deterministic` marker is gone: {stale:?}"
    );
    assert_eq!(annotated.len(), 56, "inventory drifted from the pinned 56");

    // Every covering test named above must actually exist in this file.
    let this_file = std::fs::read_to_string(root.join("tests").join("determinism.rs"))
        .expect("own source is readable");
    for &(_, _, test) in COVERAGE {
        assert!(
            this_file.contains(&format!("fn {test}(")),
            "covering test `{test}` is not defined in tests/determinism.rs"
        );
    }
}
