//! Descriptive statistics: means, variances, quantiles and summaries.

use crate::error::{Error, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one value",
        });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (denominator `n − 1`).
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] when fewer than two values are given.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(Error::EmptyInput {
            required: "at least two values",
        });
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation.
///
/// # Errors
///
/// Same contract as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Standard error of the mean, `s / √n`.
///
/// # Errors
///
/// Same contract as [`variance`].
pub fn standard_error(xs: &[f64]) -> Result<f64> {
    Ok(std_dev(xs)? / (xs.len() as f64).sqrt())
}

/// `q`-quantile by linear interpolation of the order statistics
/// (the "type 7" rule used by R and NumPy).
///
/// # Errors
///
/// * [`Error::EmptyInput`] for an empty slice.
/// * [`Error::InvalidParameter`] when `q` is outside `[0, 1]` or data
///   contain NaN.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one value",
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(Error::InvalidParameter {
            message: format!("quantile level must be in [0, 1], got {q}"),
        });
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(Error::InvalidParameter {
            message: "data must not contain NaN".to_owned(),
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Median (the 0.5-quantile).
///
/// # Errors
///
/// Same contract as [`quantile`].
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `count == 1`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] for an empty slice and
    /// [`Error::InvalidParameter`] for NaN data.
    pub fn of(xs: &[f64]) -> Result<Self> {
        let m = mean(xs)?;
        let sd = if xs.len() > 1 { std_dev(xs)? } else { 0.0 };
        Ok(Summary {
            count: xs.len(),
            mean: m,
            std_dev: sd,
            min: quantile(xs, 0.0)?,
            median: median(xs)?,
            max: quantile(xs, 1.0)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        // Sum of squared deviations = 32; n-1 = 7.
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn standard_error_scales_with_sqrt_n() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let se = standard_error(&xs).unwrap();
        assert!((se - std_dev(&xs).unwrap() / 2.0).abs() < 1e-15);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(median(&xs).unwrap(), 2.5);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-15);
    }

    #[test]
    fn median_of_odd_sample_is_middle_value() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn validation_errors() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn summary_combines_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-15);
        let single = Summary::of(&[4.2]).unwrap();
        assert_eq!(single.std_dev, 0.0);
    }
}
