//! Compressed sparse row (CSR) matrices.
//!
//! Similarity graphs built by kNN or ε-thresholding are sparse; CSR keeps
//! the iterative hard-criterion solvers at `O(nnz)` per sweep instead of
//! `O((n+m)²)`.

use crate::error::{Error, Result};
use crate::matrix::Matrix;

/// A sparse matrix in compressed sparse row format.
///
/// ```
/// use gssl_linalg::CsrMatrix;
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 4.0)]).unwrap();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.get(0, 1), 3.0);
/// assert_eq!(m.get(0, 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<usize>,
    /// Nonzero values aligned with `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) sparse matrix.
    /// shape: (rows, cols)
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] when any coordinate is out of
    /// bounds.
    /// shape: (rows, cols)
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(Error::InvalidArgument {
                    message: format!("triplet ({r}, {c}) out of bounds for {rows}x{cols} matrix"),
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if let (Some(&last_c), Some(last_v)) = (indices.last(), values.last_mut()) {
                // Merge duplicates that landed adjacent after sorting.
                if indptr[r + 1] > 0 && last_c == c && {
                    // The duplicate must be in the same row: check that no
                    // later row has started since.
                    indptr[r + 1] == indices.len()
                } {
                    *last_v += v;
                    continue;
                }
            }
            if crate::float::is_exactly_zero(v) {
                continue;
            }
            indices.push(c);
            values.push(v);
            indptr[r + 1] = indices.len();
        }
        // Make indptr cumulative (carry forward rows with no entries).
        for r in 1..=rows {
            if indptr[r] < indptr[r - 1] {
                indptr[r] = indptr[r - 1];
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Converts a dense matrix to CSR, dropping entries with
    /// `|a_ij| <= threshold`.
    /// shape: (dense.rows, dense.cols)
    pub fn from_dense(dense: &Matrix, threshold: f64) -> Self {
        // Count survivors first so both payload buffers are sized exactly
        // once instead of growing through the fill loop.
        let nnz = dense
            .as_slice()
            .iter()
            .filter(|v| v.abs() > threshold)
            .count();
        let mut indptr = Vec::with_capacity(dense.rows() + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for i in 0..dense.rows() {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v.abs() > threshold {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: dense.rows(),
            cols: dense.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Expands to a dense [`Matrix`].
    /// shape: (self.rows, self.cols)
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                out.set(i, j, v);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Element at `(i, j)` (zero when not stored).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "sparse index out of bounds");
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        match self.indices[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row index out of bounds");
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Computes `out = A x` for a slice `x` of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols` or `out.len() != rows`.
    /// hot
    /// complexity: O(nnz)
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        assert_eq!(out.len(), self.rows, "output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (j, v) in self.row_iter(i) {
                sum += v * x[j];
            }
            *o = sum;
        }
    }

    /// Computes `A x` into a freshly allocated `Vec`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols`.
    /// hot
    /// complexity: O(nnz)
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Half-bandwidth: the largest `|i - j|` over stored entries (zero for
    /// a diagonal or empty matrix). Drives the solver policy's choice
    /// between incomplete-Cholesky CG (exact on narrow bands) and
    /// multigrid (wide-band graph Laplacians).
    /// complexity: O(nnz)
    pub fn bandwidth(&self) -> usize {
        let mut band = 0usize;
        for i in 0..self.rows {
            for (j, _) in self.row_iter(i) {
                band = band.max(i.abs_diff(j));
            }
        }
        band
    }

    /// Sum of each row (the degree vector when `self` is an affinity matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row_iter(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Returns the transpose (also in CSR form).
    /// shape: (self.cols, self.rows)
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                triplets.push((j, i, v));
            }
        }
        // Coordinates came from a valid matrix, so this cannot fail.
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
            .expect("transpose produced invalid coordinates") // lint: allow(no_panic)
    }

    /// Returns `true` when the matrix equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        for i in 0..self.rows {
            // Stream both rows (columns are sorted in CSR) instead of
            // collecting them into per-row scratch vectors.
            let mut a = self.row_iter(i).filter(|&(_, v)| v.abs() > tol);
            let mut b = t.row_iter(i).filter(|&(_, v)| v.abs() > tol);
            loop {
                match (a.next(), b.next()) {
                    (None, None) => break,
                    (Some((ja, va)), Some((jb, vb))) => {
                        if ja != jb || (va - vb).abs() > tol {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        true
    }

    /// Multiplies every stored value by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_and_get() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (2, 1, 5.0), (0, 2, 2.0)]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let dense = Matrix::from_rows(&[&[0.0, 1.5, 0.0], &[2.0, 0.0, 0.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn from_dense_applies_threshold() {
        let dense = Matrix::from_rows(&[&[0.1, 0.9], &[-0.05, 0.5]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense, 0.2);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.get(0, 1), 0.9);
        assert_eq!(sparse.get(0, 0), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let dense =
            Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense, 0.0);
        let x = [1.0, 2.0, 3.0];
        let expected = dense.matvec(&crate::Vector::from(x.as_slice())).unwrap();
        assert_eq!(sparse.matvec(&x), expected.as_slice().to_vec());
    }

    #[test]
    fn row_sums_match_degrees() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 4.0)]).unwrap();
        assert_eq!(m.row_sums(), vec![3.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 1), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(sym.is_symmetric(1e-12));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(!asym.is_symmetric(1e-12));
        let rect = CsrMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn scale_multiplies_values() {
        let mut m = CsrMatrix::from_triplets(1, 2, &[(0, 0, 2.0), (0, 1, -1.0)]).unwrap();
        m.scale(3.0);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(0, 1), -3.0);
    }

    #[test]
    fn empty_rows_have_valid_indptr() {
        let m = CsrMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]).unwrap();
        assert_eq!(m.row_iter(0).count(), 0);
        assert_eq!(m.row_iter(1).count(), 0);
        assert_eq!(m.row_iter(3).count(), 1);
        assert_eq!(m.matvec(&[1.0; 4]), vec![0.0, 0.0, 0.0, 1.0]);
    }
}
