//! Umbrella crate for the `gssl` reproduction workspace.
//!
//! This package exists to host the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. It re-exports the member crates
//! under short names so examples read naturally:
//!
//! ```
//! use gssl_repro::gssl::HardCriterion;
//! let _ = HardCriterion::new();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use gssl;
pub use gssl_datasets as datasets;
pub use gssl_graph as graph;
pub use gssl_index as index;
pub use gssl_linalg as linalg;
pub use gssl_stats as stats;
