//! # gssl-stats
//!
//! Statistics substrate for the `gssl` workspace: the distributions,
//! metrics and resampling protocols used by the experiments in Du, Zhao &
//! Wang (ICDCS 2019).
//!
//! * [`dist`] — Box–Muller normal, Cholesky multivariate normal, the
//!   paper's zero-replacement truncated MVN, logistic utilities and
//!   Bernoulli sampling (the `rand_distr` crate is not on the approved
//!   dependency list, so these are implemented from scratch).
//! * [`metrics`] — RMSE (the synthetic-study metric), MAE, accuracy,
//!   confusion matrices, precision/recall/F1 and MCC.
//! * [`roc`] — ROC curves and tie-aware AUC (the COIL-study metric).
//! * [`split`] — k-fold and stratified cross-validation plus the paper's
//!   inverted low-label splits and labeled/unlabeled partitioning.
//! * [`describe`] — means, variances, quantiles and summaries for
//!   aggregating Monte-Carlo repetitions.
//!
//! ## Example
//!
//! ```
//! use gssl_stats::{metrics::rmse, roc::auc};
//! # fn main() -> Result<(), gssl_stats::Error> {
//! let error = rmse(&[0.2, 0.8], &[0.25, 0.7])?;
//! assert!(error < 0.1);
//! let area = auc(&[0.9, 0.1], &[true, false])?;
//! assert_eq!(area, 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Descriptive statistics: means, quantiles, dispersion.
pub mod describe;
/// Probability distributions and samplers.
pub mod dist;
mod error;
/// Paired significance tests (t-test, sign test, bootstrap).
pub mod inference;
/// Classification and regression metrics.
pub mod metrics;
/// ROC curves and the area under them.
pub mod roc;
/// Special functions: log-gamma, incomplete beta, erf.
pub mod special;
/// Labeled/unlabeled and k-fold data splitting.
pub mod split;

pub use error::{Error, Result};
