//! Determinism-pass fixture: seeded bit-identity violations.
//!
//! Expected findings (see `tests/self_test.rs`):
//! * `selection` — float_total_order (`f64::max` selection), carrying
//!   the contract chain `det_entry -> selection` because determinism
//!   arrived through the call graph from the marked entry point.
//! * `rank` — float_total_order (`partial_cmp(..).unwrap()` sort key),
//!   with no chain: it is not reachable from a marked function.
//! * `tally` — nondet_source (`HashMap` iteration feeds the result).
//! * `jitter` — nondet_source (unseeded `thread_rng` construction).
//! * `addr_key` — nondet_source (pointer cast derives an address).
//! * `chunk_merge` — reduction_order (`.sum` merges per-chunk partials).
//! * `chunk_accumulate` — reduction_order (captured accumulator mutated
//!   inside the chunk closure).
//! * `mislabeled` — det_annotation (`deterministic:` qualifier grammar).
//! * `latency` — nondet_source suppressed by the fixture baseline.
//! * `ordered` and `chunk_scale` — silent: the match-handled
//!   `partial_cmp` and the blessed input-order reassembly pattern.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// deterministic
pub fn det_entry(xs: &[f64]) -> f64 {
    selection(xs)
}

fn selection(xs: &[f64]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for &x in xs.iter() {
        best = f64::max(best, x);
    }
    best
}

/// Sorts scores through the non-total `partial_cmp` key.
pub fn rank(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Totally handled comparison: every arm is explicit, so this is exempt.
pub fn ordered(x: f64, y: f64) -> bool {
    match x.partial_cmp(&y) {
        Some(o) => o.is_lt(),
        None => false,
    }
}

/// Returns hash-ordered pairs: the iteration order leaks into the value.
pub fn tally(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts = std::collections::HashMap::new();
    for &x in xs.iter() {
        let slot = counts.entry(x).or_insert(0u64);
        *slot += 1;
    }
    counts.into_iter().collect()
}

/// Wall-clock read, baselined: feeds a latency metric, never a value.
pub fn latency() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

/// Unseeded RNG construction outside the seeded shim API.
pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.gen()
}

/// Pointer-derived key: addresses vary across runs.
pub fn addr_key(xs: &[f64]) -> usize {
    (xs.as_ptr() as *const u8) as usize
}

/// Merges per-chunk partial sums whose grouping follows the worker count.
pub fn chunk_merge(ex: &Executor, n: usize) -> Result<f64, Error> {
    let total = ex.map_chunks(n, 4, |s, w| part(s, w))?.into_iter().sum::<f64>();
    Ok(total)
}

fn part(s: usize, w: usize) -> f64 {
    (s + w) as f64
}

/// Accumulates into a captured binding across chunk boundaries.
pub fn chunk_accumulate(ex: &Executor, data: &mut [f64]) -> f64 {
    let mut total = 0.0;
    let _ = ex.for_each_chunk_mut(data, 4, |_s, chunk| {
        for x in chunk.iter() {
            total += *x;
        }
    });
    total
}

/// Blessed pattern: per-chunk work writes only chunk-local state.
pub fn chunk_scale(ex: &Executor, data: &mut [f64]) {
    let _ = ex.for_each_chunk_mut(data, 4, |start, chunk| {
        let mut offset = start as f64;
        for x in chunk.iter_mut() {
            offset += 1.0;
            *x += offset;
        }
    });
}

/// deterministic: always
pub fn mislabeled(x: f64) -> f64 {
    x
}
