//! Ready-made drivers for the paper's four synthetic figures and the COIL
//! figure, shared by the `fig*` binaries and the `all_figures` runner.

use crate::experiment::{
    CoilConfig, LabeledRatio, SeriesPoint, SyntheticConfig, COIL_LAMBDAS, FIG1_N_VALUES,
    FIG2_M_VALUES, SYNTHETIC_LAMBDAS,
};
use crate::report::{format_series_table, ordering_violations};
use crate::runner::CliArgs;
use gssl_datasets::synthetic::PaperModel;

/// Which synthetic figure to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticFigure {
    /// Figure 1: Model 1, `m = 30`, sweep `n`.
    Fig1,
    /// Figure 2: Model 1, `n = 100`, sweep `m`.
    Fig2,
    /// Figure 3: Model 2, `m = 30`, sweep `n`.
    Fig3,
    /// Figure 4: Model 2, `n = 100`, sweep `m`.
    Fig4,
}

impl SyntheticFigure {
    /// The logit model this figure uses.
    pub fn model(self) -> PaperModel {
        match self {
            SyntheticFigure::Fig1 | SyntheticFigure::Fig2 => PaperModel::Linear,
            SyntheticFigure::Fig3 | SyntheticFigure::Fig4 => PaperModel::Interaction,
        }
    }

    /// Whether the sweep variable is `n` (labeled) or `m` (unlabeled).
    pub fn sweeps_labeled(self) -> bool {
        matches!(self, SyntheticFigure::Fig1 | SyntheticFigure::Fig3)
    }

    /// Axis label for the report.
    pub fn x_name(self) -> &'static str {
        if self.sweeps_labeled() {
            "n"
        } else {
            "m"
        }
    }

    /// Figure number as printed in the paper.
    pub fn number(self) -> usize {
        match self {
            SyntheticFigure::Fig1 => 1,
            SyntheticFigure::Fig2 => 2,
            SyntheticFigure::Fig3 => 3,
            SyntheticFigure::Fig4 => 4,
        }
    }

    /// The swept grid. The paper-scale grid is used with `--full`; the
    /// default trims the most expensive cells so the figure regenerates in
    /// minutes on a laptop (EXPERIMENTS.md records which grid produced the
    /// committed numbers).
    pub fn grid(self, full: bool) -> Vec<usize> {
        if self.sweeps_labeled() {
            if full {
                FIG1_N_VALUES.to_vec()
            } else {
                vec![10, 30, 50, 100, 200, 300, 500]
            }
        } else if full {
            FIG2_M_VALUES.to_vec()
        } else {
            vec![30, 60, 100, 300]
        }
    }

    /// Default repetition count (paper: 1000).
    pub fn default_repetitions(self, full: bool) -> usize {
        if full {
            1000
        } else {
            30
        }
    }

    /// Runs the figure, printing progress to stderr, and returns all
    /// series points.
    ///
    /// # Errors
    ///
    /// Propagates the first failing experiment cell.
    pub fn run(self, args: &CliArgs) -> Result<Vec<SeriesPoint>, Box<dyn std::error::Error>> {
        let repetitions = args
            .repetitions
            .unwrap_or_else(|| self.default_repetitions(args.full));
        let seed = args.seed.unwrap_or(20190701 + self.number() as u64);
        let mut points = Vec::new();
        for &x in &self.grid(args.full) {
            let (n, m) = if self.sweeps_labeled() {
                (x, 30)
            } else {
                (100, x)
            };
            eprintln!(
                "figure {}: n = {n}, m = {m}, reps = {repetitions}",
                self.number()
            );
            let config = SyntheticConfig {
                model: self.model(),
                n_labeled: n,
                n_unlabeled: m,
                lambdas: SYNTHETIC_LAMBDAS.to_vec(),
                repetitions,
                seed,
            };
            points.extend(config.run(x as f64)?);
        }
        Ok(points)
    }

    /// Runs the figure and prints the paper-style table plus the headline
    /// ordering check.
    ///
    /// # Errors
    ///
    /// Propagates experiment errors.
    pub fn run_and_report(
        self,
        args: &CliArgs,
    ) -> Result<Vec<SeriesPoint>, Box<dyn std::error::Error>> {
        let points = self.run(args)?;
        println!(
            "== Figure {} (Model {}, {}) ==",
            self.number(),
            if self.model() == PaperModel::Linear {
                1
            } else {
                2
            },
            if self.sweeps_labeled() {
                "m = 30, sweeping n"
            } else {
                "n = 100, sweeping m"
            }
        );
        print!("{}", format_series_table(&points, self.x_name(), "RMSE"));
        let violations = ordering_violations(&points, false);
        if violations.is_empty() {
            println!(
                "ordering check: hard criterion best at every {} ✓",
                self.x_name()
            );
        } else {
            println!(
                "ordering check: hard criterion beaten at {} = {:?} (Monte-Carlo noise; raise --reps)",
                self.x_name(),
                violations
            );
        }
        println!();
        Ok(points)
    }
}

/// Runs the COIL figure (Figure 5) across all three labeled ratios.
///
/// # Errors
///
/// Propagates experiment errors.
pub fn run_figure5(args: &CliArgs) -> Result<Vec<SeriesPoint>, Box<dyn std::error::Error>> {
    // Paper scale: 250 images/class (1500 total), 100 repetitions. The
    // default is a faithful miniature: the same protocol on a smaller
    // render so the 10/90 setting stays solvable in minutes.
    let (images_per_class, default_reps) = if args.full { (250, 100) } else { (40, 5) };
    let repetitions = args.repetitions.unwrap_or(default_reps);
    let seed = args.seed.unwrap_or(20190705);
    let mut points = Vec::new();
    for ratio in LabeledRatio::all() {
        eprintln!(
            "figure 5: {} ({} images/class, reps = {repetitions})",
            ratio.label(),
            images_per_class
        );
        let config = CoilConfig {
            images_per_class,
            lambdas: COIL_LAMBDAS.to_vec(),
            repetitions,
            seed,
        };
        points.extend(config.run(ratio)?);
    }
    Ok(points)
}

/// Prints the Figure 5 report (AUC table per ratio plus ordering check).
pub fn report_figure5(points: &[SeriesPoint]) {
    println!("== Figure 5 (synthetic COIL, AUC vs lambda) ==");
    print!("{}", format_series_table(points, "labeled fraction", "AUC"));
    let violations = ordering_violations(points, true);
    if violations.is_empty() {
        println!("ordering check: hard criterion best at every ratio ✓");
    } else {
        println!(
            "ordering check: hard criterion beaten at fractions {violations:?} (raise --reps)"
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_metadata() {
        assert_eq!(SyntheticFigure::Fig1.model(), PaperModel::Linear);
        assert_eq!(SyntheticFigure::Fig4.model(), PaperModel::Interaction);
        assert!(SyntheticFigure::Fig3.sweeps_labeled());
        assert!(!SyntheticFigure::Fig2.sweeps_labeled());
        assert_eq!(SyntheticFigure::Fig2.x_name(), "m");
        assert_eq!(SyntheticFigure::Fig4.number(), 4);
    }

    #[test]
    fn grids_match_paper_when_full() {
        assert_eq!(SyntheticFigure::Fig1.grid(true), FIG1_N_VALUES.to_vec());
        assert_eq!(SyntheticFigure::Fig2.grid(true), FIG2_M_VALUES.to_vec());
        assert!(SyntheticFigure::Fig1.grid(false).len() < FIG1_N_VALUES.len());
        assert_eq!(SyntheticFigure::Fig1.default_repetitions(true), 1000);
    }

    #[test]
    fn tiny_run_produces_points_for_each_cell() {
        let args = CliArgs {
            repetitions: Some(2),
            full: false,
            seed: Some(1),
        };
        // Shrink the run further by driving a single cell directly.
        let config = SyntheticConfig {
            model: SyntheticFigure::Fig1.model(),
            n_labeled: 20,
            n_unlabeled: 10,
            lambdas: SYNTHETIC_LAMBDAS.to_vec(),
            repetitions: args.repetitions.unwrap(),
            seed: args.seed.unwrap(),
        };
        let points = config.run(20.0).unwrap();
        assert_eq!(points.len(), SYNTHETIC_LAMBDAS.len());
    }
}
