//! Error type for the serving engine.

use std::fmt;

/// Errors returned by engine construction, batch prediction and
/// incremental label updates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The engine configuration is invalid (e.g. a non-positive bandwidth
    /// or residual tolerance).
    InvalidConfig {
        /// Description of the violated requirement.
        message: String,
    },
    /// A query is malformed (wrong dimension, empty batch where one is
    /// required, …).
    InvalidQuery {
        /// Description of the violated requirement.
        message: String,
    },
    /// A node index passed to a label update does not exist in the fitted
    /// graph.
    UnknownNode {
        /// The offending node index.
        node: usize,
    },
    /// A label update targeted a node whose label is already observed.
    AlreadyLabeled {
        /// The offending node index.
        node: usize,
    },
    /// An observed label (or class index) is outside its valid domain.
    InvalidLabel {
        /// Description of the violated requirement.
        message: String,
    },
    /// A query point has zero kernel mass on the whole fitted graph, so
    /// the out-of-sample extension `Σᵢ w(x, xᵢ) fᵢ / Σᵢ w(x, xᵢ)` is
    /// undefined (possible with compactly supported kernels).
    ZeroKernelMass {
        /// Index of the affected query within its batch.
        query_index: usize,
    },
    /// A NaN or infinity crossed the serving boundary. Query coordinates
    /// are always validated; with the `strict-checks` cargo feature the
    /// sanitizer additionally guards kernel weights, cached solutions and
    /// batch outputs. `context` names the boundary, `index` the flat
    /// position of the first offending element.
    NonFiniteValue {
        /// Name of the guarded boundary.
        context: &'static str,
        /// Flat index of the first non-finite element.
        index: usize,
    },
    /// A snapshot could not be encoded or decoded: unsupported engine
    /// state (e.g. a policy-routed solver), a corrupt or truncated byte
    /// stream, a bad magic/version header, or a checksum mismatch.
    Snapshot {
        /// Description of what failed.
        message: String,
    },
    /// An internal invariant of the engine or thread pool was violated —
    /// always a bug in this crate, never caller error.
    Internal {
        /// Description of the broken invariant.
        message: String,
    },
    /// An underlying criterion-solver operation failed.
    Core(gssl::Error),
    /// An underlying graph operation failed.
    Graph(gssl_graph::Error),
    /// An underlying spatial-index operation failed.
    Index(gssl_index::Error),
    /// An underlying linear-algebra operation failed.
    Linalg(gssl_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig { message } => write!(f, "invalid engine config: {message}"),
            Error::InvalidQuery { message } => write!(f, "invalid query: {message}"),
            Error::UnknownNode { node } => {
                write!(f, "node {node} does not exist in the fitted graph")
            }
            Error::AlreadyLabeled { node } => {
                write!(f, "node {node} already carries an observed label")
            }
            Error::InvalidLabel { message } => write!(f, "invalid label: {message}"),
            Error::ZeroKernelMass { query_index } => write!(
                f,
                "query {query_index} has zero kernel mass on the fitted graph"
            ),
            Error::NonFiniteValue { context, index } => write!(
                f,
                "non-finite value (NaN or infinity) at {context}, element {index}"
            ),
            Error::Snapshot { message } => write!(f, "snapshot error: {message}"),
            Error::Internal { message } => write!(f, "internal serving-engine error: {message}"),
            Error::Core(inner) => write!(f, "criterion error: {inner}"),
            Error::Graph(inner) => write!(f, "graph error: {inner}"),
            Error::Index(inner) => write!(f, "spatial index error: {inner}"),
            Error::Linalg(inner) => write!(f, "linear algebra error: {inner}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(inner) => Some(inner),
            Error::Graph(inner) => Some(inner),
            Error::Index(inner) => Some(inner),
            Error::Linalg(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<gssl::Error> for Error {
    fn from(inner: gssl::Error) -> Self {
        // Keep the sanitizer's verdict first-class regardless of the layer
        // that caught the non-finite value.
        match inner {
            gssl::Error::NonFiniteValue { context, index } => {
                Error::NonFiniteValue { context, index }
            }
            other => Error::Core(other),
        }
    }
}

impl From<gssl_graph::Error> for Error {
    fn from(inner: gssl_graph::Error) -> Self {
        match inner {
            gssl_graph::Error::Linalg(gssl_linalg::Error::NonFiniteValue { context, index }) => {
                Error::NonFiniteValue { context, index }
            }
            other => Error::Graph(other),
        }
    }
}

impl From<gssl_index::Error> for Error {
    fn from(inner: gssl_index::Error) -> Self {
        match inner {
            // A non-finite coordinate found by the index is the same
            // sanitizer verdict the serving boundary reports itself.
            gssl_index::Error::NonFiniteCoordinate { position } => Error::NonFiniteValue {
                context: "serve spatial-index coordinates",
                index: position,
            },
            other => Error::Index(other),
        }
    }
}

impl From<gssl_linalg::Error> for Error {
    fn from(inner: gssl_linalg::Error) -> Self {
        match inner {
            gssl_linalg::Error::NonFiniteValue { context, index } => {
                Error::NonFiniteValue { context, index }
            }
            other => Error::Linalg(other),
        }
    }
}

impl From<gssl_runtime::Error> for Error {
    fn from(inner: gssl_runtime::Error) -> Self {
        match inner {
            gssl_runtime::Error::InvalidConfig { message } => Error::InvalidConfig { message },
            gssl_runtime::Error::Internal { message } => Error::Internal { message },
            other => Error::Internal {
                message: other.to_string(),
            },
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::InvalidConfig {
            message: "bad bandwidth".into()
        }
        .to_string()
        .contains("bad bandwidth"));
        assert!(Error::UnknownNode { node: 7 }.to_string().contains("7"));
        assert!(Error::AlreadyLabeled { node: 2 }.to_string().contains("2"));
        assert!(Error::ZeroKernelMass { query_index: 3 }
            .to_string()
            .contains("query 3"));
        assert!(Error::NonFiniteValue {
            context: "serve boundary",
            index: 1
        }
        .to_string()
        .contains("serve boundary"));
        assert!(Error::Internal {
            message: "slot missing".into()
        }
        .to_string()
        .contains("slot missing"));
        assert!(Error::Snapshot {
            message: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
    }

    #[test]
    fn non_finite_values_surface_first_class_from_every_layer() {
        let from_linalg: Error = gssl_linalg::Error::NonFiniteValue {
            context: "x",
            index: 0,
        }
        .into();
        assert!(matches!(from_linalg, Error::NonFiniteValue { .. }));
        let from_core: Error = gssl::Error::NonFiniteValue {
            context: "y",
            index: 1,
        }
        .into();
        assert!(matches!(from_core, Error::NonFiniteValue { .. }));
        let from_graph: Error = gssl_graph::Error::Linalg(gssl_linalg::Error::NonFiniteValue {
            context: "z",
            index: 2,
        })
        .into();
        assert!(matches!(from_graph, Error::NonFiniteValue { .. }));
        let from_index: Error = gssl_index::Error::NonFiniteCoordinate { position: 5 }.into();
        assert!(matches!(from_index, Error::NonFiniteValue { index: 5, .. }));
    }

    #[test]
    fn index_errors_are_wrapped_with_source() {
        use std::error::Error as _;
        let e: Error = gssl_index::Error::EmptyInput {
            required: "at least one point",
        }
        .into();
        assert!(matches!(e, Error::Index(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("spatial index"));
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error as _;
        let e = Error::Linalg(gssl_linalg::Error::Singular { pivot: 0 });
        assert!(e.source().is_some());
        let e = Error::UnknownNode { node: 0 };
        assert!(e.source().is_none());
    }
}
