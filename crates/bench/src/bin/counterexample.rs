//! Demonstrates Proposition II.2 (the soft criterion's inconsistency) and
//! Proposition II.1 (soft → hard as λ → 0) numerically.
//!
//! For growing `n` the hard criterion's RMSE against the true regression
//! function shrinks (Theorem II.1) while the λ = ∞ mean predictor's RMSE
//! stalls at the spread of `q(X)` around `E[q(X)]` — the inconsistency.
//! A second sweep shows the soft solution converging to the hard one as
//! λ → 0 and to the mean predictor as λ → ∞.

use gssl::{HardCriterion, MeanPredictor, Problem, SoftCriterion};
use gssl_bench::runner::CliArgs;
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let reps = args.repetitions.unwrap_or(20);
    let seed = args.seed.unwrap_or(424242);
    let m = 30;

    println!("== Proposition II.2: hard is consistent, lambda = infinity is not ==");
    println!("(Model 1, m = {m}, {reps} repetitions per point)\n");
    println!("{:>6}  {:>12}  {:>12}", "n", "hard RMSE", "mean RMSE");
    let grid: &[usize] = if args.full {
        &[10, 30, 50, 100, 200, 300, 500, 800, 1000, 1500]
    } else {
        &[10, 30, 100, 300, 500]
    };
    for &n in grid {
        let (mut hard_sum, mut mean_sum) = (0.0, 0.0);
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed + rep as u64);
            let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
            let ssl = ds.arrange_prefix(n).expect("arrangement");
            let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");
            let h = paper_rate(n, PAPER_DIM).expect("n >= 2");
            let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
            let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
            let hard = HardCriterion::new().fit(&problem).expect("hard fit");
            let mean = MeanPredictor::new().fit(&problem).expect("mean fit");
            hard_sum += rmse(truth, hard.unlabeled()).expect("rmse");
            mean_sum += rmse(truth, mean.unlabeled()).expect("rmse");
        }
        println!(
            "{n:>6}  {:>12.4}  {:>12.4}",
            hard_sum / reps as f64,
            mean_sum / reps as f64
        );
    }
    println!("\nThe hard column shrinks with n; the mean column plateaus at the");
    println!("population spread of q(X) — the inconsistency of Proposition II.2.\n");

    println!("== Proposition II.1: soft -> hard as lambda -> 0 ==");
    let n = 100;
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let h = paper_rate(n, PAPER_DIM).expect("n >= 2");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
    let hard = HardCriterion::new().fit(&problem).expect("hard fit");
    let mean = MeanPredictor::new().fit(&problem).expect("mean fit");
    println!(
        "{:>10}  {:>16}  {:>16}",
        "lambda", "gap to hard", "gap to mean"
    );
    for &lambda in &[10.0, 1.0, 0.1, 0.01, 0.001, 0.0001] {
        let soft = SoftCriterion::new(lambda)
            .expect("valid lambda")
            .fit(&problem)
            .expect("soft fit");
        let gap_hard: f64 = soft
            .unlabeled()
            .iter()
            .zip(hard.unlabeled())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        let gap_mean: f64 = soft
            .unlabeled()
            .iter()
            .zip(mean.unlabeled())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!("{lambda:>10}  {gap_hard:>16.6}  {gap_mean:>16.6}");
    }
    println!("\ngap-to-hard vanishes as lambda -> 0 (Prop II.1); gap-to-mean");
    println!("vanishes as lambda grows (Prop II.2).");
}
