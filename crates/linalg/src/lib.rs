//! # gssl-linalg
//!
//! Dense and sparse linear algebra substrate for the `gssl` workspace — a
//! from-scratch reproduction of the numerical kernel needed by graph-based
//! semi-supervised learning (Du, Zhao & Wang, ICDCS 2019).
//!
//! Everything the paper's closed forms require is here:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major storage with the usual
//!   algebra (products, norms, block extraction, stacking).
//! * [`Lu`] — LU factorization with partial pivoting for general square
//!   systems (Eq. 4 of the paper).
//! * [`Cholesky`] — for the symmetric positive-definite systems that both
//!   criteria produce on connected graphs (Eq. 5).
//! * [`conjugate_gradient`] and the stationary solvers in [`stationary`] —
//!   matrix-free backends behind the [`LinearOperator`] trait.
//! * [`CsrMatrix`] — compressed sparse rows for kNN / ε-threshold graphs.
//! * [`Factorization`] / [`SolverPolicy`] — the unified backend layer:
//!   factor once (Cholesky, LU, or Jacobi-preconditioned CG), solve many,
//!   with auto-selection from size, symmetry, and nonzero density.
//! * [`BlockPartition`] — the labeled/unlabeled 2×2 split the paper's
//!   derivation is written in.
//!
//! ## Example
//!
//! Solve the hard-criterion system `(D₂₂ − W₂₂) f = W₂₁ y` directly:
//!
//! ```
//! use gssl_linalg::{Cholesky, Matrix, Vector};
//! # fn main() -> Result<(), gssl_linalg::Error> {
//! // A 1-labeled + 2-unlabeled toy graph with all similarities 1.
//! let system = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]])?;
//! let rhs = Vector::from(vec![1.0, 1.0]); // W21 * y with y = [1]
//! let scores = Cholesky::factor(&system)?.solve(&rhs)?;
//! assert!(scores.approx_eq(&Vector::from(vec![1.0, 1.0]), 1e-12));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod amg;
mod blocks;
mod cg;
mod cholesky;
mod eigen;
mod error;
mod factor;
/// Named helpers for the rare exact floating-point comparisons.
pub mod float;
mod iterative;
mod lu;
mod matrix;
mod ops;
mod precond;
mod sparse;
/// Runtime numeric sanitizer behind the `strict-checks` feature.
pub mod strict;
mod vector;

pub use amg::{AmgCg, AmgOptions};
pub use blocks::BlockPartition;
pub use cg::{
    conjugate_gradient, preconditioned_cg_with, preconditioned_conjugate_gradient, CgOptions,
    CgOutcome,
};
pub use cholesky::{is_positive_definite, Cholesky};
pub use eigen::{symmetric_eigen, EigenOptions, SymmetricEigen};
pub use error::{Error, Result};
#[allow(deprecated)]
pub use factor::JacobiCg;
pub use factor::{
    BackendKind, CgSystem, FactorReport, Factorization, PrecondCg, SolverBackend, SolverPolicy,
    SparseStrategy,
};
pub use lu::{inverse, solve, solve_matrix, Lu};
pub use matrix::Matrix;
pub use ops::{DiagonalOperator, LinearOperator, ShiftedOperator, SumOperator};
pub use precond::{
    BlockJacobiPrecond, Ic0, JacobiPrecond, Precond, PrecondKind, Preconditioner, DEFAULT_BLOCK_DIM,
};
pub use sparse::CsrMatrix;
pub use vector::Vector;

/// Stationary iterative solvers (Jacobi, Gauss–Seidel).
pub mod stationary {
    pub use crate::iterative::{gauss_seidel, jacobi, IterationOptions, IterationOutcome};
}
