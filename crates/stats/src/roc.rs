//! ROC curves and the area under them (AUC).
//!
//! The paper's Figure 5 reports the average AUC of the hard and soft
//! criteria on the binary COIL task. AUC is computed here by the
//! Mann–Whitney rank statistic with midrank tie handling, which equals the
//! area under the trapezoidal ROC curve.

use crate::error::{Error, Result};

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate (1 − specificity), the x-coordinate.
    pub false_positive_rate: f64,
    /// True-positive rate (sensitivity), the y-coordinate.
    pub true_positive_rate: f64,
    /// Score threshold producing this point (predict positive when
    /// `score >= threshold`).
    pub threshold: f64,
}

fn validate(scores: &[f64], labels: &[bool]) -> Result<(usize, usize)> {
    if scores.len() != labels.len() {
        return Err(Error::LengthMismatch {
            operation: "roc",
            left: scores.len(),
            right: labels.len(),
        });
    }
    if scores.is_empty() {
        return Err(Error::EmptyInput {
            required: "at least one scored example",
        });
    }
    if scores.iter().any(|s| s.is_nan()) {
        return Err(Error::InvalidParameter {
            message: "scores must not contain NaN".to_owned(),
        });
    }
    let positives = labels.iter().filter(|&&y| y).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return Err(Error::Undefined {
            reason: "ROC needs at least one positive and one negative example".to_owned(),
        });
    }
    Ok((positives, negatives))
}

/// Computes the ROC curve, sweeping the decision threshold from `+∞` down.
///
/// The returned points start at `(0, 0)` and end at `(1, 1)`; ties in the
/// scores collapse into single curve points.
///
/// # Errors
///
/// * [`Error::LengthMismatch`] / [`Error::EmptyInput`] on malformed inputs.
/// * [`Error::Undefined`] when only one class is present.
/// * [`Error::InvalidParameter`] when scores contain NaN.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Result<Vec<RocPoint>> {
    let (positives, negatives) = validate(scores, labels)?;

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let mut curve = vec![RocPoint {
        false_positive_rate: 0.0,
        true_positive_rate: 0.0,
        threshold: f64::INFINITY,
    }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut idx = 0usize;
    while idx < order.len() {
        let threshold = scores[order[idx]];
        // Consume the whole tie group at this threshold.
        while idx < order.len() && scores[order[idx]] == threshold {
            if labels[order[idx]] {
                tp += 1;
            } else {
                fp += 1;
            }
            idx += 1;
        }
        curve.push(RocPoint {
            false_positive_rate: fp as f64 / negatives as f64,
            true_positive_rate: tp as f64 / positives as f64,
            threshold,
        });
    }
    Ok(curve)
}

/// Area under the ROC curve via the Mann–Whitney U statistic with midrank
/// tie correction.
///
/// Equivalent to the probability that a uniformly chosen positive example
/// outscores a uniformly chosen negative one (ties counted half).
///
/// # Errors
///
/// Same contract as [`roc_curve`].
///
/// ```
/// use gssl_stats::roc::auc;
/// let perfect = auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]).unwrap();
/// assert_eq!(perfect, 1.0);
/// ```
pub fn auc(scores: &[f64], labels: &[bool]) -> Result<f64> {
    let (positives, negatives) = validate(scores, labels)?;

    // Midranks: sort ascending, average ranks within tie groups.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        // 1-based ranks i+1 ..= j averaged.
        let midrank = (i + 1 + j) as f64 / 2.0;
        for &k in &order[i..j] {
            ranks[k] = midrank;
        }
        i = j;
    }

    let rank_sum_positive: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &y)| y)
        .map(|(r, _)| r)
        .sum();
    let n_pos = positives as f64;
    let n_neg = negatives as f64;
    let u = rank_sum_positive - n_pos * (n_pos + 1.0) / 2.0;
    Ok(u / (n_pos * n_neg))
}

/// Area under a piecewise-linear curve of [`RocPoint`]s by the trapezoid
/// rule (mainly for cross-checking [`auc`]).
pub fn trapezoid_area(curve: &[RocPoint]) -> f64 {
    curve
        .windows(2)
        .map(|w| {
            let dx = w[1].false_positive_rate - w[0].false_positive_rate;
            let avg_y = 0.5 * (w[0].true_positive_rate + w[1].true_positive_rate);
            dx * avg_y
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let auc_val = auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]).unwrap();
        assert_eq!(auc_val, 1.0);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let auc_val = auc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]).unwrap();
        assert_eq!(auc_val, 0.0);
    }

    #[test]
    fn constant_scores_have_auc_half() {
        let auc_val = auc(&[0.5; 6], &[true, false, true, false, true, false]).unwrap();
        assert!((auc_val - 0.5).abs() < 1e-15);
    }

    #[test]
    fn hand_computed_auc_with_tie() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2}.
        // Pairs: (0.8 vs 0.5) win, (0.8 vs 0.2) win, (0.5 vs 0.5) half,
        // (0.5 vs 0.2) win => (3 + 0.5) / 4 = 0.875.
        let auc_val = auc(&[0.8, 0.5, 0.5, 0.2], &[true, true, false, false]).unwrap();
        assert!((auc_val - 0.875).abs() < 1e-15);
    }

    #[test]
    fn auc_matches_trapezoid_area_of_curve() {
        let scores = [0.1, 0.35, 0.4, 0.8, 0.65, 0.9, 0.5, 0.5];
        let labels = [false, false, true, true, false, true, true, false];
        let a = auc(&scores, &labels).unwrap();
        let curve = roc_curve(&scores, &labels).unwrap();
        assert!((a - trapezoid_area(&curve)).abs() < 1e-12);
    }

    #[test]
    fn curve_starts_at_origin_and_ends_at_one_one() {
        let scores = [0.2, 0.6, 0.4, 0.8];
        let labels = [false, true, false, true];
        let curve = roc_curve(&scores, &labels).unwrap();
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!(first.false_positive_rate, 0.0);
        assert_eq!(first.true_positive_rate, 0.0);
        assert_eq!(last.false_positive_rate, 1.0);
        assert_eq!(last.true_positive_rate, 1.0);
        // Monotone in both coordinates.
        for w in curve.windows(2) {
            assert!(w[1].false_positive_rate >= w[0].false_positive_rate);
            assert!(w[1].true_positive_rate >= w[0].true_positive_rate);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(auc(&[0.5], &[true]).is_err()); // single class
        assert!(auc(&[0.5, 0.5], &[true, true]).is_err());
        assert!(auc(&[0.5], &[true, false]).is_err());
        assert!(auc(&[], &[]).is_err());
        assert!(auc(&[f64::NAN, 0.1], &[true, false]).is_err());
    }

    #[test]
    fn auc_is_invariant_to_monotone_transform() {
        let scores = [0.1, 0.9, 0.4, 0.7, 0.2];
        let labels = [false, true, false, true, true];
        let a1 = auc(&scores, &labels).unwrap();
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 3.0).exp()).collect();
        let a2 = auc(&transformed, &labels).unwrap();
        assert!((a1 - a2).abs() < 1e-15);
    }
}
