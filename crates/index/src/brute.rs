//! The brute-force linear scan — the oracle every tree backend is tested
//! against, extracted verbatim in spirit from the original inner loop of
//! `gssl-graph`'s kNN assembly.

use crate::error::Result;
use crate::neighbor::{check_k, check_radius, KBest, Neighbor, NeighborSearch};
use crate::points::PointStore;
use gssl_linalg::Matrix;

/// Exact neighbor search by scanning every stored point.
///
/// `O(n·d)` per query — the baseline the spatial trees must agree with
/// bit for bit. Kept as a first-class backend because for tiny `n` the
/// scan's perfect locality beats any tree, and because property tests
/// need an implementation whose correctness is self-evident.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForce {
    points: PointStore,
}

impl NeighborSearch for BruteForce {
    fn build(points: &Matrix) -> Result<Self> {
        Ok(BruteForce {
            points: PointStore::from_matrix(points)?,
        })
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn point(&self, i: usize) -> &[f64] {
        self.points.point(i)
    }

    fn insert(&mut self, point: &[f64]) -> Result<usize> {
        self.points.push(point)
    }

    /// hot
    /// complexity: O(n * d)
    fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Result<Vec<Neighbor>> {
        self.points.check_query(query)?;
        check_k(self.len(), k, exclude)?;
        let mut best = KBest::new(k);
        for i in 0..self.len() {
            if Some(i) == exclude {
                continue;
            }
            let dist2 = self.points.dist2_to(query, i);
            // `offer` fast-rejects candidates worse than the current
            // worst; ties at the bound are still rejected correctly here
            // because the scan runs in ascending index order, so a tied
            // later candidate loses the (dist2, index) tie-break anyway.
            best.offer(Neighbor { index: i, dist2 });
        }
        Ok(best.into_sorted())
    }

    /// hot
    /// complexity: O(n * d)
    fn within_radius(&self, query: &[f64], radius: f64) -> Result<Vec<Neighbor>> {
        self.points.check_query(query)?;
        check_radius(radius)?;
        let r2 = radius * radius;
        let mut hits = Vec::new();
        for i in 0..self.len() {
            let dist2 = self.points.dist2_to(query, i);
            if dist2 <= r2 {
                hits.push(Neighbor { index: i, dist2 });
            }
        }
        // The scan emits in index order; canonicalize to (dist2, index).
        hits.sort_by(Neighbor::key_cmp);
        Ok(hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn grid() -> Matrix {
        // Five collinear points at x = 0, 1, 2, 3, 4.
        Matrix::from_fn(5, 1, |i, _| i as f64)
    }

    #[test]
    fn k_nearest_finds_the_closest_points() {
        let idx = BruteForce::build(&grid()).unwrap();
        let out = idx.k_nearest(&[1.9], 2).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 2);
        assert_eq!(out[1].index, 1);
        assert!(out[0].dist2 < out[1].dist2);
    }

    #[test]
    fn excluding_self_skips_the_zero_distance_hit() {
        let idx = BruteForce::build(&grid()).unwrap();
        let all = idx.k_nearest(&[2.0], 1).unwrap();
        assert_eq!(all[0].index, 2);
        assert_eq!(all[0].dist2, 0.0);
        let excl = idx.k_nearest_excluding(&[2.0], 2, Some(2)).unwrap();
        // Equidistant neighbors 1 and 3: tie broken by index.
        assert_eq!(excl[0].index, 1);
        assert_eq!(excl[1].index, 3);
        assert_eq!(excl[0].dist2, 1.0);
        assert_eq!(excl[1].dist2, 1.0);
    }

    #[test]
    fn within_radius_is_inclusive_and_sorted() {
        let idx = BruteForce::build(&grid()).unwrap();
        let out = idx.within_radius(&[2.0], 1.0).unwrap();
        let ids: Vec<usize> = out.iter().map(|n| n.index).collect();
        assert_eq!(ids, vec![2, 1, 3], "self first, then tie by index");
        let none = idx.within_radius(&[100.0], 1.0).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn queries_validate_arguments() {
        let idx = BruteForce::build(&grid()).unwrap();
        assert!(matches!(
            idx.k_nearest(&[0.0, 0.0], 1),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            idx.k_nearest(&[f64::NAN], 1),
            Err(Error::NonFiniteCoordinate { .. })
        ));
        assert!(matches!(
            idx.k_nearest(&[0.0], 0),
            Err(Error::InvalidArgument { .. })
        ));
        assert!(matches!(
            idx.k_nearest(&[0.0], 6),
            Err(Error::InvalidArgument { .. })
        ));
        assert!(matches!(
            idx.within_radius(&[0.0], -1.0),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn insert_extends_the_id_space() {
        let mut idx = BruteForce::build(&grid()).unwrap();
        let id = idx.insert(&[1.5]).unwrap();
        assert_eq!(id, 5);
        assert_eq!(idx.len(), 6);
        let out = idx.k_nearest(&[1.5], 1).unwrap();
        assert_eq!(out[0].index, 5);
        assert_eq!(out[0].dist2, 0.0);
    }
}
