//! Line-level lexical analysis of Rust sources.
//!
//! The checker deliberately avoids a full parser: each file is reduced to a
//! per-line view in which string/char-literal bodies and comments are
//! blanked out, so the rule passes can match tokens with plain substring
//! searches without tripping over `"panic!"` inside a string or a doc
//! example. Block comments, multi-line string literals and `#[cfg(test)]`
//! regions are tracked across lines.

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Original text, unmodified.
    pub raw: String,
    /// The line with string/char-literal bodies and all comments replaced
    /// by spaces; token searches run against this.
    pub code: String,
    /// Text of the trailing `//` line comment (without the slashes), empty
    /// when there is none. Used to parse `lint: allow(...)` markers.
    pub comment: String,
    /// Whether the line is (part of) a doc comment (`///` or `//!`).
    pub is_doc: bool,
}

/// A fully analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Analyzed lines, in order.
    pub lines: Vec<Line>,
    /// `test_mask[i]` is `true` when line `i` belongs to a `#[cfg(test)]`
    /// region (the attribute line itself included).
    pub test_mask: Vec<bool>,
}

/// Lexical state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    /// Ordinary code.
    Normal,
    /// Inside a `"..."` literal (they may span lines via `\` continuation).
    InString,
    /// Inside a raw string literal with the given number of `#` markers.
    InRawString(usize),
    /// Inside a `/* ... */` comment at the given nesting depth.
    InBlockComment(usize),
}

/// Blanks string/char bodies and comments from one line, carrying `state`
/// across the call. Returns the code-only text, the trailing line-comment
/// text, and whether the visible part was a doc comment.
fn blank_line(raw: &str, state: &mut LexState) -> (String, String, bool) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut is_doc = false;
    let mut i = 0;

    while i < chars.len() {
        match *state {
            LexState::InBlockComment(depth) => {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    *state = if depth > 1 {
                        LexState::InBlockComment(depth - 1)
                    } else {
                        LexState::Normal
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = LexState::InBlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::InString => {
                if chars[i] == '\\' {
                    code.push(' ');
                    if i + 1 < chars.len() {
                        code.push(' ');
                    }
                    i += 2;
                } else if chars[i] == '"' {
                    *state = LexState::Normal;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::InRawString(hashes) => {
                if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                    *state = LexState::Normal;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::Normal => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: doc (`///`, `//!`) or plain.
                    let rest: String = chars[i + 2..].iter().collect();
                    if rest.starts_with('/') || rest.starts_with('!') {
                        is_doc = code.trim().is_empty();
                    }
                    comment = rest;
                    break;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    *state = LexState::InBlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == 'r'
                    && matches!(chars.get(i + 1), Some(&'"') | Some(&'#'))
                    && raw_string_hashes(&chars, i + 1).is_some()
                {
                    let hashes = raw_string_hashes(&chars, i + 1).unwrap_or(0);
                    *state = LexState::InRawString(hashes);
                    code.push('"');
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                    i += 2 + hashes;
                } else if c == '"' {
                    *state = LexState::InString;
                    code.push('"');
                    i += 1;
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or '\..'.
                    if chars.get(i + 1) == Some(&'\\') {
                        code.push('\'');
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            code.push(' ');
                            i += 1;
                        }
                        if i < chars.len() {
                            code.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                    } else {
                        // Lifetime: keep as-is.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }

    (code, comment, is_doc)
}

/// Whether `chars[from..]` starts with exactly `hashes` `#` characters
/// (closing a raw string opened with that many).
fn closes_raw(chars: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(from + k) == Some(&'#'))
}

/// If `chars[from..]` opens a raw string (`"` or `#...#"`), returns the
/// number of `#` markers; `None` when it is not a raw-string opener.
fn raw_string_hashes(chars: &[char], from: usize) -> Option<usize> {
    let mut hashes = 0;
    let mut i = from;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(hashes)
}

/// Analyzes a whole file: blanks literals/comments and computes the
/// `#[cfg(test)]` mask.
#[must_use]
pub fn analyze(source: &str) -> SourceFile {
    let mut state = LexState::Normal;
    let mut lines = Vec::new();
    for raw in source.lines() {
        let (code, comment, is_doc) = blank_line(raw, &mut state);
        lines.push(Line {
            raw: raw.to_owned(),
            code,
            comment,
            is_doc,
        });
    }

    // Second pass: mark `#[cfg(test)]` regions by brace depth.
    let mut test_mask = vec![false; lines.len()];
    let mut depth: usize = 0;
    let mut skip_at: Option<usize> = None; // depth at which the test block opened
    let mut armed = false; // saw the attribute, waiting for `{` or `;`
    for (i, line) in lines.iter().enumerate() {
        let mut in_test = skip_at.is_some() || armed;
        if line.code.contains("#[cfg(test)]") {
            armed = true;
            in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed {
                        skip_at = Some(depth);
                        armed = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if skip_at == Some(depth) {
                        skip_at = None;
                        in_test = true;
                    }
                }
                ';' => {
                    // `#[cfg(test)] use ...;` style single-item gating.
                    if armed {
                        armed = false;
                        in_test = true;
                    }
                }
                _ => {}
            }
        }
        test_mask[i] = in_test || skip_at.is_some();
    }

    SourceFile { lines, test_mask }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_string_bodies() {
        let f = analyze(r#"let x = "panic!(no)"; call();"#);
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn extracts_line_comments() {
        let f = analyze("let x = 1; // lint: allow(no_panic)");
        assert!(f.lines[0].comment.contains("lint: allow(no_panic)"));
        assert!(!f.lines[0].code.contains("lint"));
    }

    #[test]
    fn doc_comments_are_flagged_and_excluded_from_code() {
        let f = analyze("/// uses .unwrap() in an example\nfn x() {}");
        assert!(f.lines[0].is_doc);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].is_doc);
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let f = analyze("let s = \"first \\\n  second==1.0\";\nlet t = 2;");
        assert!(!f.lines[1].code.contains("=="));
        assert!(f.lines[2].code.contains("let t"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = analyze("/* start\n .unwrap() inside\n end */ let x = 1;");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("let x"));
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let f = analyze(src);
        assert!(!f.test_mask[0]);
        assert!(f.test_mask[1]);
        assert!(f.test_mask[2]);
        assert!(f.test_mask[3]);
        assert!(f.test_mask[4]);
        assert!(!f.test_mask[5]);
    }

    #[test]
    fn cfg_test_single_item_is_masked() {
        let f = analyze("#[cfg(test)]\nuse helper::thing;\nfn real() {}");
        assert!(f.test_mask[0]);
        assert!(f.test_mask[1]);
        assert!(!f.test_mask[2]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = analyze("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let f = analyze("let c = '=' ; let d = '\\n';");
        assert!(!f.lines[0].code.contains("'='"), "{}", f.lines[0].code);
        assert!(!f.lines[0].code.contains('n'), "{}", f.lines[0].code);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = analyze("let s = r#\"has .unwrap() text\"#; f();");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("f()"));
    }
}
