//! Machine-checked `/// complexity: O(...)` contracts on hot functions.
//!
//! The contract grammar is a product of dimension factors:
//!
//! ```text
//! /// complexity: O(n)            degree 1
//! /// complexity: O(n * m * k)    degree 3
//! /// complexity: O(n^2 * d)      degree 3
//! /// complexity: O(1)            degree 0
//! ```
//!
//! Identifiers must come from [`DIM_VOCAB`]; sums (`O(n + m)`) are
//! rejected — declare the dominant term. The checker compares the
//! declared degree against the **observed loop-nest depth** of the body:
//! the maximum nesting of `for`/`while`/`loop` constructs in the token
//! stream, with `for` loops over constant literal ranges (`0..3`)
//! excluded.
//!
//! The estimator deliberately under-counts: it cannot see the cost of
//! callees (a `dot_slices` call inside one loop is depth 1, not 2) or
//! loops hidden in iterator chains (`.map(…).collect()`). A declared
//! degree *above* the observed nesting is therefore accepted; a body
//! that nests **deeper** than its contract admits is always a finding.

use crate::items::FnInfo;
use crate::lexer::{Tok, TokKind};
use crate::scanner::SourceFile;

/// Dimension identifiers admitted in complexity contracts.
pub const DIM_VOCAB: [&str; 15] = [
    "n", "m", "k", "d", "q", "c", "b", "p", "nnz", "rows", "cols", "len", "dim", "iters", "classes",
];

/// A parsed complexity contract: the product factors as written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contract {
    /// `(dimension, exponent)` pairs; empty for `O(1)`.
    pub factors: Vec<(String, u32)>,
}

impl Contract {
    /// Total polynomial degree (sum of exponents; `O(1)` is zero).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.factors.iter().map(|&(_, e)| e as usize).sum()
    }

    /// Re-renders the contract for messages (`O(n^2 * d)`).
    #[must_use]
    pub fn render(&self) -> String {
        if self.factors.is_empty() {
            return "O(1)".to_owned();
        }
        let terms: Vec<String> = self
            .factors
            .iter()
            .map(|(name, exp)| {
                if *exp == 1 {
                    name.clone()
                } else {
                    format!("{name}^{exp}")
                }
            })
            .collect();
        format!("O({})", terms.join(" * "))
    }
}

/// Extracts the contract from a function's doc lines.
///
/// Returns `None` when no `complexity:` line is present, `Some(Err(…))`
/// when one is present but malformed.
#[must_use]
pub fn parse_contract(doc: &[String]) -> Option<Result<Contract, String>> {
    let body = doc
        .iter()
        .find_map(|d| d.trim().strip_prefix("complexity:"))?;
    Some(parse_expr(body.trim()))
}

/// Parses `O(factor * factor * …)`.
fn parse_expr(s: &str) -> Result<Contract, String> {
    let inner = s
        .strip_prefix("O(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(|| format!("expected `O(...)`, got `{s}`"))?;
    let mut factors = Vec::new();
    for raw in inner.split('*') {
        let factor = raw.trim();
        if factor == "1" {
            continue;
        }
        let (name, exp) = match factor.split_once('^') {
            Some((base, exp)) => {
                let exp: u32 = exp
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad exponent in `{factor}`"))?;
                (base.trim(), exp)
            }
            None => (factor, 1),
        };
        if !DIM_VOCAB.contains(&name) {
            return Err(format!(
                "unknown dimension `{name}` (factors must be `*`-separated names from {DIM_VOCAB:?}, optionally with `^<int>`)"
            ));
        }
        factors.push((name.to_owned(), exp));
    }
    Ok(Contract { factors })
}

/// Observed loop-nest depth of a function body: the maximum nesting of
/// counted `for`/`while`/`loop` constructs. `for` loops whose iterated
/// expression mentions no identifier at all (constant literal ranges
/// like `0..3`) are not counted. Loops inside closures count toward the
/// enclosing function, matching how [`crate::items`] attributes bodies.
#[must_use]
pub fn observed_depth(source: &SourceFile, f: &FnInfo) -> usize {
    let toks: Vec<&Tok> = source
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();
    let end = f.body.end.min(toks.len());
    let mut frames: Vec<bool> = Vec::new();
    let mut depth = 0usize;
    let mut max = 0usize;
    // Set when a loop keyword has been seen and its body `{` is pending.
    let mut pending: Option<bool> = None;
    let mut k = f.body.start;
    while k < end {
        let t = toks[k];
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            let counted = !t.is_ident("for") || !constant_for_header(&toks, k, end);
            pending = Some(counted);
        } else if t.is_punct('{') {
            let is_loop = pending.take().unwrap_or(false);
            frames.push(is_loop);
            if is_loop {
                depth += 1;
                max = max.max(depth);
            }
        } else if t.is_punct('}') {
            if frames.pop().unwrap_or(false) {
                depth = depth.saturating_sub(1);
            }
        }
        k += 1;
    }
    max
}

/// Whether a `for` header starting at `toks[at]` iterates a purely
/// constant expression (no identifier after `in` before the body `{`).
fn constant_for_header(toks: &[&Tok], at: usize, end: usize) -> bool {
    let mut seen_in = false;
    let mut k = at + 1;
    while k < end {
        let t = toks[k];
        if t.is_punct('{') {
            break;
        }
        if t.is_ident("in") {
            seen_in = true;
        } else if seen_in && t.kind == TokKind::Ident {
            return false;
        }
        k += 1;
    }
    seen_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner::analyze;

    fn contract(doc: &str) -> Result<Contract, String> {
        parse_contract(&[doc.to_owned()]).expect("annotation present")
    }

    fn depth_of(src: &str) -> usize {
        let source = analyze(src);
        let fns = extract("t.rs", &source);
        observed_depth(&source, &fns[0])
    }

    #[test]
    fn parses_products_and_exponents() {
        let c = contract("complexity: O(n * m * k)").unwrap();
        assert_eq!(c.degree(), 3);
        let c = contract("complexity: O(n^2 * d)").unwrap();
        assert_eq!(c.degree(), 3);
        assert_eq!(c.render(), "O(n^2 * d)");
        let c = contract("complexity: O(1)").unwrap();
        assert_eq!(c.degree(), 0);
        assert_eq!(c.render(), "O(1)");
    }

    #[test]
    fn rejects_sums_and_unknown_dims() {
        assert!(contract("complexity: O(n + m)").is_err());
        assert!(contract("complexity: O(foo)").is_err());
        assert!(contract("complexity: n^2").is_err());
        assert!(contract("complexity: O(n^x)").is_err());
    }

    #[test]
    fn absent_annotation_is_none() {
        assert!(parse_contract(&["computes things.".to_owned()]).is_none());
    }

    #[test]
    fn counts_nested_loops() {
        assert_eq!(depth_of("fn f(n: usize) { for i in 0..n { g(i); } }"), 1);
        assert_eq!(
            depth_of("fn f(n: usize) { for i in 0..n { for j in 0..n { g(i, j); } } }"),
            2
        );
        assert_eq!(
            depth_of("fn f(n: usize) { for i in 0..n { g(i); } for j in 0..n { g(j); } }"),
            1
        );
    }

    #[test]
    fn constant_ranges_do_not_count() {
        assert_eq!(depth_of("fn f() { for i in 0..3 { g(i); } }"), 0);
        assert_eq!(
            depth_of("fn f(n: usize) { for i in 0..n { for c in 0..3 { g(i, c); } } }"),
            1
        );
    }

    #[test]
    fn while_and_loop_count() {
        assert_eq!(depth_of("fn f(n: usize) { while n > 0 { g(); } }"), 1);
        assert_eq!(depth_of("fn f() { loop { break; } }"), 1);
    }

    #[test]
    fn loops_inside_closures_count() {
        let src = "fn f(n: usize) { run(|chunk| { for i in 0..n { g(i); } }); }";
        assert_eq!(depth_of(src), 1);
    }

    #[test]
    fn iterator_chains_are_invisible() {
        // Documented limit: no counted loop in a .map().collect() chain.
        let src = "fn f(v: &[f64]) -> Vec<f64> { v.iter().map(|x| x * 2.0).collect() }";
        assert_eq!(depth_of(src), 0);
    }
}
