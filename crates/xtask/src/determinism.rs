//! The determinism pass: `/// deterministic` markers, transitive
//! contract propagation over the call graph, and the three bit-identity
//! lints.
//!
//! The workspace promises that parallel execution is *bit-identical* to
//! sequential execution (fixed chunk claims + input-order reassembly,
//! see `gssl-runtime`), and that reruns reproduce exactly. The dynamic
//! proof lives in `tests/determinism.rs`; this pass makes the invariant
//! a checked property of the source. Three lints run over every
//! non-test library function:
//!
//! * **float-totality** — `partial_cmp` used as an ordering key (it is
//!   non-total over floats, and `.unwrap()` on it panics on NaN) and
//!   `f64::max` / `f64::min` used in selection logic (NaN-absorbing,
//!   non-total); the blessed replacement is `total_cmp` on a canonical
//!   `(value, index)` key, as `gssl-index` orders neighbors. A
//!   `partial_cmp` whose result is totally handled by a `match` in the
//!   same statement is exempt.
//! * **nondeterministic sources** — `HashMap` / `HashSet` (unseeded
//!   SipHash iteration order varies across processes), `Instant::now` /
//!   `SystemTime` (wall clock), pointer casts (`as *const` / `as *mut`
//!   derive address-dependent values), and unseeded RNG construction
//!   (`thread_rng` / `from_entropy` / `OsRng` — the vendored
//!   `crates/rand` shim only exposes `seed_from_u64`).
//! * **reduction-order** — floating-point accumulation across chunk
//!   boundaries of `Executor::map_chunks` / `for_each_chunk_mut`: chunk
//!   width depends on the worker count, so merging per-chunk partials
//!   with `sum` / `fold` / `reduce`, or mutating a captured accumulator
//!   from inside the chunk closure, changes results across worker
//!   counts. The blessed combine step is input-order reassembly
//!   (per-chunk values written back at their input positions).
//!
//! On top of the lints, `/// deterministic` doc markers declare the
//! contract on public entry points. Marked functions propagate
//! *forward* through the call graph exactly like the perf pass's
//! `/// hot`: every function reachable from a marked one joins the det
//! set, and a finding inside the set additionally prints the shortest
//! call chain from a marked root so the violated contract is visible at
//! the entry point. Findings ratchet through
//! `crates/xtask/analyze.baseline` with mandatory written reasons.

use crate::callgraph::CallGraph;
use crate::items::FnInfo;
use crate::lexer::{Tok, TokKind};
use crate::scanner::SourceFile;
use std::collections::{HashMap, VecDeque};

/// Whether the function carries an explicit `/// deterministic` marker.
#[must_use]
pub fn is_det_marked(f: &FnInfo) -> bool {
    f.doc.iter().any(|d| d.trim() == "deterministic")
}

/// Returns the malformed-marker problem, if any: `deterministic:` with a
/// qualifier is reserved (the grammar is the bare word, nothing else).
/// Prose doc lines that merely *start* with the word are left alone.
#[must_use]
pub fn annotation_problem(f: &FnInfo) -> Option<String> {
    f.doc
        .iter()
        .map(|d| d.trim())
        .find(|t| t.starts_with("deterministic:"))
        .map(|t| {
            format!(
                "malformed `/// deterministic` marker `{t}`: the grammar is the bare word with no qualifier"
            )
        })
}

/// Computes the transitive det set over the call graph: one flag per
/// node, `true` when the function is `/// deterministic` or reachable
/// from one via forward call edges. Test functions neither seed nor
/// join the set.
#[must_use]
pub fn det_set(graph: &CallGraph) -> Vec<bool> {
    let n = graph.fns.len();
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (callee, callers) in graph.callers.iter().enumerate() {
        for &caller in callers {
            callees[caller].push(callee);
        }
    }
    let mut det = vec![false; n];
    let mut queue = VecDeque::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.in_test && is_det_marked(f) {
            det[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &callees[i] {
            if !det[j] && !graph.fns[j].in_test {
                det[j] = true;
                queue.push_back(j);
            }
        }
    }
    det
}

/// Reverse BFS from `target` over caller edges restricted to the det
/// set; returns the shortest chain `marked root → … → target`, or
/// `None` when the target is outside the set.
#[must_use]
pub fn shortest_det_chain(graph: &CallGraph, det: &[bool], target: usize) -> Option<Vec<usize>> {
    if !det.get(target).copied().unwrap_or(false) {
        return None;
    }
    if is_det_marked(&graph.fns[target]) {
        return Some(vec![target]);
    }
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue = VecDeque::from([target]);
    while let Some(node) = queue.pop_front() {
        for &caller in &graph.callers[node] {
            if caller == target || parent.contains_key(&caller) {
                continue;
            }
            if graph.fns[caller].in_test || !det[caller] {
                continue;
            }
            parent.insert(caller, node);
            if is_det_marked(&graph.fns[caller]) {
                let mut chain = vec![caller];
                let mut cur = caller;
                while let Some(&next) = parent.get(&cur) {
                    chain.push(next);
                    if next == target {
                        break;
                    }
                    cur = next;
                }
                return Some(chain);
            }
            queue.push_back(caller);
        }
    }
    None
}

/// Which determinism lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetKind {
    /// Non-total float ordering (`partial_cmp`, `f64::max`/`f64::min`).
    FloatOrder,
    /// A nondeterministic source (hash iteration, wall clock, pointer
    /// address, unseeded RNG).
    NondetSource,
    /// Order-sensitive accumulation across chunk boundaries.
    ReductionOrder,
}

/// One determinism lint finding.
#[derive(Debug, Clone)]
pub struct DetSite {
    /// Which lint fired.
    pub kind: DetKind,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Runs the three determinism lints over one function body.
#[must_use]
pub fn lint_det_fn(source: &SourceFile, f: &FnInfo) -> Vec<DetSite> {
    let toks: Vec<&Tok> = source
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();
    let end = f.body.end.min(toks.len());
    let mut out = Vec::new();

    let mut k = f.body.start;
    while k < end {
        let t = toks[k];
        let prev = (k > f.body.start).then(|| toks[k - 1]);
        let next = toks.get(k + 1).copied();

        if t.kind == TokKind::Ident {
            // Float-totality: `partial_cmp` as an ordering key.
            if t.is_ident("partial_cmp") && !match_guarded(&toks, f.body.start, k) {
                let unwrapped = next.is_some_and(|n| n.is_punct('.'))
                    && toks
                        .get(k + 2)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
                    || chained_unwrap(&toks, k, end);
                out.push(DetSite {
                    kind: DetKind::FloatOrder,
                    line: t.line,
                    message: if unwrapped {
                        "`partial_cmp(..).unwrap()` panics on NaN and is non-total; \
                         use `total_cmp` on a canonical (value, index) key"
                            .to_owned()
                    } else {
                        "`partial_cmp` is non-total over floats; use `total_cmp` on a \
                         canonical (value, index) key (or handle every arm in a `match`)"
                            .to_owned()
                    },
                });
                k += 1;
                continue;
            }
            // Float-totality: `f64::max` / `f64::min` selection.
            if matches!(t.text.as_str(), "f64" | "f32")
                && next.is_some_and(|n| n.is_punct(':'))
                && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(m) = toks
                    .get(k + 3)
                    .filter(|m| m.is_ident("max") || m.is_ident("min"))
                {
                    out.push(DetSite {
                        kind: DetKind::FloatOrder,
                        line: t.line,
                        message: format!(
                            "`{}::{}` is NaN-absorbing and non-total; select via \
                             `total_cmp` so the choice is canonical for every input",
                            t.text, m.text
                        ),
                    });
                    k += 4;
                    continue;
                }
            }
            // Nondeterministic sources.
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                out.push(DetSite {
                    kind: DetKind::NondetSource,
                    line: t.line,
                    message: format!(
                        "`{}` iteration order is randomized per process; use a Vec/BTreeMap, \
                         or baseline membership-only use with a reason",
                        t.text
                    ),
                });
                k += 1;
                continue;
            }
            if t.is_ident("Instant")
                && next.is_some_and(|n| n.is_punct(':'))
                && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(k + 3).is_some_and(|n| n.is_ident("now"))
            {
                out.push(DetSite {
                    kind: DetKind::NondetSource,
                    line: t.line,
                    message: "`Instant::now` reads the wall clock; keep it out of value \
                              paths (baseline metrics-only reads with a reason)"
                        .to_owned(),
                });
                k += 4;
                continue;
            }
            if t.is_ident("SystemTime") {
                out.push(DetSite {
                    kind: DetKind::NondetSource,
                    line: t.line,
                    message: "`SystemTime` reads the wall clock; keep it out of value paths"
                        .to_owned(),
                });
                k += 1;
                continue;
            }
            if t.is_ident("as")
                && next.is_some_and(|n| n.is_punct('*'))
                && toks
                    .get(k + 2)
                    .is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
            {
                out.push(DetSite {
                    kind: DetKind::NondetSource,
                    line: t.line,
                    message: "pointer cast derives an address-dependent value; addresses \
                              vary across runs and must not feed keys or outputs"
                        .to_owned(),
                });
                k += 3;
                continue;
            }
            if matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng") {
                out.push(DetSite {
                    kind: DetKind::NondetSource,
                    line: t.line,
                    message: format!(
                        "`{}` constructs an unseeded RNG; use the seeded \
                         `rand` shim API (`seed_from_u64`)",
                        t.text
                    ),
                });
                k += 1;
                continue;
            }
            // Reduction-order: chunked execution call sites.
            if matches!(t.text.as_str(), "map_chunks" | "for_each_chunk_mut")
                && next.is_some_and(|n| n.is_punct('('))
                && !prev.is_some_and(|p| p.is_ident("fn"))
            {
                let close = matching_paren(&toks, k + 1, end);
                lint_chunk_call(&toks, k, close, end, &mut out);
                k += 1;
                continue;
            }
        }
        k += 1;
    }
    out
}

/// Whether a `match` keyword appears earlier in the same statement as
/// the token at `at` (the totally-handled `partial_cmp` exemption).
fn match_guarded(toks: &[&Tok], start: usize, at: usize) -> bool {
    let mut k = at;
    while k > start {
        k -= 1;
        let t = toks[k];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("match") {
            return true;
        }
    }
    false
}

/// Whether the `partial_cmp(..)` call at `at` is chained into
/// `.unwrap()` / `.expect(…)` after its argument list.
fn chained_unwrap(toks: &[&Tok], at: usize, end: usize) -> bool {
    if !toks.get(at + 1).is_some_and(|n| n.is_punct('(')) {
        return false;
    }
    let close = matching_paren(toks, at + 1, end);
    toks.get(close + 1).is_some_and(|n| n.is_punct('.'))
        && toks
            .get(close + 2)
            .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
}

/// Index of the `)` matching the `(` at `open` (or `end` when
/// unbalanced).
fn matching_paren(toks: &[&Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        let t = toks[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end
}

/// Lints one `map_chunks` / `for_each_chunk_mut` call: captured-
/// accumulator mutation inside the chunk closure, and order-sensitive
/// merges chained onto the per-chunk results.
fn lint_chunk_call(toks: &[&Tok], call: usize, close: usize, end: usize, out: &mut Vec<DetSite>) {
    let name = &toks[call].text;
    // Names bound locally inside the call region: closure parameters,
    // `let` bindings (including tuple destructuring) and `for` loop
    // bindings. Mutating those cannot cross a chunk boundary.
    let mut locals: Vec<String> = Vec::new();
    let mut in_params = false;
    let mut k = call + 1;
    while k < close {
        let t = toks[k];
        if t.is_punct('|') {
            in_params = !in_params;
            k += 1;
            continue;
        }
        if in_params && t.kind == TokKind::Ident {
            locals.push(t.text.clone());
            k += 1;
            continue;
        }
        if t.is_ident("let") || t.is_ident("for") {
            let stop_at_in = t.is_ident("for");
            let mut j = k + 1;
            while j < close {
                let tj = toks[j];
                if stop_at_in && tj.is_ident("in") {
                    break;
                }
                if !stop_at_in && (tj.is_punct('=') || tj.is_punct(':')) {
                    break;
                }
                if tj.kind == TokKind::Ident && !tj.is_ident("mut") {
                    locals.push(tj.text.clone());
                }
                j += 1;
            }
            k = j;
            continue;
        }
        k += 1;
    }

    // Compound assignment inside the closure region whose receiver is
    // not a local binding: a captured accumulator merged across chunks.
    let mut k = call + 1;
    while k + 1 < close {
        let t = toks[k];
        if (t.is_punct('+') || t.is_punct('-')) && toks[k + 1].is_punct('=') {
            let recv = receiver_ident(toks, call, k);
            let is_local = recv.as_ref().is_some_and(|r| locals.iter().any(|l| l == r));
            if !is_local {
                out.push(DetSite {
                    kind: DetKind::ReductionOrder,
                    line: t.line,
                    message: format!(
                        "`{}=` on `{}` inside a `{}` closure accumulates across chunk \
                         boundaries; chunk width follows the worker count, so return \
                         per-chunk values and reassemble in input order instead",
                        t.text,
                        recv.as_deref().unwrap_or("a captured binding"),
                        name
                    ),
                });
            }
            k += 2;
            continue;
        }
        k += 1;
    }

    // Order-sensitive merge chained onto the per-chunk results: scan the
    // rest of the statement after the call's closing paren.
    let mut depth = 0i32;
    let mut k = close + 1;
    while k < end {
        let t = toks[k];
        if t.is_punct(';') {
            break;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && t.is_punct(',') {
            break;
        } else if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "sum" | "fold" | "reduce" | "product")
            && (k > 0 && toks[k - 1].is_punct('.'))
        {
            out.push(DetSite {
                kind: DetKind::ReductionOrder,
                line: t.line,
                message: format!(
                    "`.{}` merges per-chunk partials of `{}`; chunk width follows the \
                     worker count, so the grouping (and the float rounding) changes \
                     across worker counts — reassemble per-element values in input \
                     order instead",
                    t.text, name
                ),
            });
            break;
        }
        k += 1;
    }
}

/// The identifier receiving a compound assignment at `op` (the `+`/`-`
/// token): walks back over an index bracket group when present.
fn receiver_ident(toks: &[&Tok], start: usize, op: usize) -> Option<String> {
    if op == start {
        return None;
    }
    let mut k = op - 1;
    if toks[k].is_punct(']') {
        let mut depth = 0i32;
        loop {
            let t = toks[k];
            if t.is_punct(']') {
                depth += 1;
            } else if t.is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == start {
                return None;
            }
            k -= 1;
        }
        if k == start {
            return None;
        }
        k -= 1;
    }
    (toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{build, render_chain};
    use crate::items::extract;
    use crate::scanner::analyze;

    fn lint(src: &str) -> Vec<DetSite> {
        let source = analyze(src);
        let fns = extract("t.rs", &source);
        lint_det_fn(&source, &fns[0])
    }

    fn kinds(src: &str) -> Vec<DetKind> {
        lint(src).into_iter().map(|s| s.kind).collect()
    }

    #[test]
    fn det_marker_propagates_through_calls() {
        let src = "/// deterministic\npub fn entry(v: &[f64]) -> f64 { inner(v) }\n\
                   fn inner(v: &[f64]) -> f64 { leaf(v) }\n\
                   fn leaf(v: &[f64]) -> f64 { v.len() as f64 }\n\
                   fn cold() {}";
        let graph = build(extract("t.rs", &analyze(src)));
        let det = det_set(&graph);
        let by_name = |name: &str| {
            graph
                .fns
                .iter()
                .position(|f| f.name == name)
                .expect("fn present")
        };
        assert!(det[by_name("entry")]);
        assert!(det[by_name("inner")]);
        assert!(det[by_name("leaf")]);
        assert!(!det[by_name("cold")]);
        let chain = shortest_det_chain(&graph, &det, by_name("leaf")).expect("in set");
        assert_eq!(render_chain(&graph, &chain), "entry -> inner -> leaf");
        assert!(shortest_det_chain(&graph, &det, by_name("cold")).is_none());
    }

    #[test]
    fn test_fns_do_not_seed_or_join_the_det_set() {
        let src = "#[cfg(test)]\nmod tests {\n/// deterministic\nfn t() { shared(); }\n}\n\
                   fn shared() {}";
        let graph = build(extract("t.rs", &analyze(src)));
        assert!(det_set(&graph).iter().all(|&d| !d));
    }

    #[test]
    fn colon_qualifier_is_malformed_prose_is_not() {
        let fns = extract(
            "t.rs",
            &analyze(
                "/// deterministic: always\npub fn a() {}\n/// deterministic order.\npub fn b() {}",
            ),
        );
        assert!(annotation_problem(&fns[0]).is_some());
        assert!(annotation_problem(&fns[1]).is_none());
        assert!(!is_det_marked(&fns[1]), "prose is not a marker either");
    }

    #[test]
    fn partial_cmp_unwrap_chain_is_flagged() {
        let src = "fn f(xs: &mut Vec<f64>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let sites = lint(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, DetKind::FloatOrder);
        assert!(
            sites[0].message.contains("panics on NaN"),
            "{}",
            sites[0].message
        );
    }

    #[test]
    fn match_handled_partial_cmp_is_exempt() {
        let src = "fn f(x: f64, y: f64) -> bool {\n\
                   match x.partial_cmp(&y) { Some(o) => o.is_lt(), None => false } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn float_minmax_paths_are_flagged() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().copied().fold(0.0, f64::max) }";
        assert_eq!(kinds(src), vec![DetKind::FloatOrder]);
        let src = "fn f(a: f64, b: f64) -> f64 { f64::min(a, b) }";
        assert_eq!(kinds(src), vec![DetKind::FloatOrder]);
        // `total_cmp` selection and f64 constants stay silent.
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().copied()\
                   .fold(f64::INFINITY, |a, b| if b.total_cmp(&a).is_lt() { b } else { a }) }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn hash_collections_and_clock_are_flagged() {
        let src = "fn f() { let m = std::collections::HashMap::new(); drop(m); }";
        assert_eq!(kinds(src), vec![DetKind::NondetSource]);
        let src =
            "fn f() -> u64 { let t = std::time::Instant::now(); t.elapsed().as_nanos() as u64 }";
        assert_eq!(kinds(src), vec![DetKind::NondetSource]);
    }

    #[test]
    fn pointer_cast_and_unseeded_rng_are_flagged() {
        let src = "fn f(v: &[f64]) -> usize { (v.as_ptr() as *const u8) as usize }";
        assert_eq!(kinds(src), vec![DetKind::NondetSource]);
        let src = "fn f() -> f64 { let mut rng = thread_rng(); rng.gen() }";
        assert_eq!(kinds(src), vec![DetKind::NondetSource]);
        // Plain `as` numeric casts stay silent.
        let src = "fn f(n: usize) -> f64 { n as f64 }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn chained_merge_of_chunk_partials_is_flagged() {
        let src = "fn f(ex: &Executor, n: usize) -> f64 {\n\
                   ex.map_chunks(n, 4, |s, w| part(s, w)).unwrap().into_iter().sum::<f64>() }";
        assert_eq!(kinds(src), vec![DetKind::ReductionOrder]);
    }

    #[test]
    fn captured_accumulator_in_chunk_closure_is_flagged() {
        let src = "fn f(ex: &Executor, data: &mut [f64]) -> f64 {\n\
                   let mut total = 0.0;\n\
                   let _ = ex.for_each_chunk_mut(data, 4, |_s, chunk| {\n\
                   for x in chunk.iter() { total += *x; } });\n\
                   total }";
        assert_eq!(kinds(src), vec![DetKind::ReductionOrder]);
    }

    #[test]
    fn input_order_reassembly_is_silent() {
        // Per-chunk work writes only through the chunk binding and
        // chunk-local state: the blessed pattern.
        let src = "fn f(ex: &Executor, data: &mut [f64]) {\n\
                   let _ = ex.for_each_chunk_mut(data, 4, |_s, chunk| {\n\
                   let mut local = 0.0;\n\
                   for x in chunk.iter_mut() { local += 1.0; *x += local; } });\n\
                   }";
        assert!(lint(src).is_empty());
        // Collecting per-chunk row blocks without a merge is silent too.
        let src = "fn f(ex: &Executor, n: usize) -> Result<Vec<Vec<f64>>, E> {\n\
                   ex.map_chunks(n, 4, |s, w| rows(s, w)) }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn definitions_and_forwarding_calls_are_silent() {
        // The definition site (`fn map_chunks`) and a plain forwarding
        // call with a function argument carry no closure and no merge.
        let src = "impl Executor {\n\
                   pub fn map_chunks<F>(&self, len: usize, width: usize, f: F) -> Out {\n\
                   match self { Executor::Pool(p) => p.map_chunks(len, width, f), } } }";
        let source = analyze(src);
        let fns = extract("t.rs", &source);
        assert!(lint_det_fn(&source, &fns[0]).is_empty());
    }
}
