//! Extension experiment: the COIL benchmark *before* its binary grouping.
//!
//! The paper works with the binary 3-vs-3 reduction; the underlying data
//! is six-way. This experiment runs one-vs-rest harmonic classification
//! on the six classes at several labeled shares and reports accuracy and
//! per-class recall — the multiclass picture behind Figure 5.

use gssl::{HardCriterion, OneVsRest};
use gssl_bench::runner::CliArgs;
use gssl_datasets::coil::{SyntheticCoil, CLASS_COUNT};
use gssl_graph::{affinity::affinity_matrix, bandwidth::median_heuristic, Kernel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn run(args: &CliArgs) -> Result<(), Box<dyn std::error::Error>> {
    let images_per_class = if args.full { 100 } else { 30 };
    let reps = args.repetitions.unwrap_or(3);
    let seed = args.seed.unwrap_or(5150);

    println!(
        "== Six-way COIL via one-vs-rest hard criterion ({images_per_class} imgs/class, {reps} reps) ==\n"
    );
    println!(
        "{:>15} {:>12} {:>14} {:>14}",
        "labeled/class", "accuracy", "worst recall", "best recall"
    );

    // The paper's median heuristic targets the binary task; six-way
    // boundaries are finer, so the graph needs a tighter bandwidth. The
    // 0.3 factor comes from a coarse sweep (see EXPERIMENTS.md).
    let sigma_scale = 0.3;
    for &labeled_per_class in &[2usize, 5, 10] {
        let mut accuracy_sum = 0.0;
        let mut worst_sum = 0.0;
        let mut best_sum = 0.0;
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed + rep as u64);
            let coil = SyntheticCoil::builder()
                .images_per_class(images_per_class)
                .build(&mut rng)?;
            let dataset = coil.dataset();
            let sigma = sigma_scale * median_heuristic(dataset.inputs())?;

            // Pick labeled_per_class random images of each class.
            let mut labeled = Vec::new();
            for class in 0..CLASS_COUNT {
                let mut members: Vec<usize> = coil
                    .class_labels()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c == class)
                    .map(|(i, _)| i)
                    .collect();
                members.shuffle(&mut rng);
                labeled.extend(members.into_iter().take(labeled_per_class));
            }
            let ssl = dataset.arrange(&labeled)?;
            let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, sigma)?;
            let class_labels: Vec<usize> =
                labeled.iter().map(|&i| coil.class_labels()[i]).collect();
            let ovr = OneVsRest::new(HardCriterion::new(), CLASS_COUNT)?;
            let scores = ovr.fit(&w, &class_labels)?;

            let truth: Vec<usize> = ssl.original_order[labeled.len()..]
                .iter()
                .map(|&i| coil.class_labels()[i])
                .collect();
            let predictions = scores.unlabeled_predictions();
            let correct = predictions
                .iter()
                .zip(&truth)
                .filter(|(p, t)| p == t)
                .count();
            accuracy_sum += correct as f64 / truth.len() as f64;

            // Per-class recall.
            let mut recalls = Vec::with_capacity(CLASS_COUNT);
            for class in 0..CLASS_COUNT {
                let total = truth.iter().filter(|&&t| t == class).count();
                let hit = predictions
                    .iter()
                    .zip(&truth)
                    .filter(|&(p, &t)| t == class && *p == class)
                    .count();
                if total > 0 {
                    recalls.push(hit as f64 / total as f64);
                }
            }
            worst_sum += recalls.iter().copied().fold(f64::INFINITY, f64::min);
            best_sum += recalls.iter().copied().fold(0.0f64, f64::max);
        }
        let r = reps as f64;
        println!(
            "{labeled_per_class:>15} {:>12.4} {:>14.4} {:>14.4}",
            accuracy_sum / r,
            worst_sum / r,
            best_sum / r
        );
    }

    println!("\nChance accuracy is 1/6 ≈ 0.167; accuracy climbs with the labeled");
    println!("budget, and the worst-recall column exposes the shape families the");
    println!("pixel metric confuses most.");
    Ok(())
}

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    if let Err(error) = run(&args) {
        eprintln!("coil_multiclass failed: {error}");
        std::process::exit(1);
    }
}
