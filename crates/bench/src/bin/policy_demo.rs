//! Solver-policy demo: shows which backend the [`SolverPolicy`] selector
//! routes a spread of systems to (dense Cholesky, dense LU, sparse
//! Jacobi-CG), factors each one through the unified [`Factorization`]
//! layer, and verifies the solve residual.
//!
//! ```text
//! cargo run --release -p gssl-bench --bin policy_demo [-- --json]
//! ```
//!
//! With `--json` the report is a machine-readable JSON array (one object
//! per system). The process exits nonzero when any residual exceeds the
//! acceptance threshold, so the script gate can use it as a smoke test.

use gssl_linalg::{CsrMatrix, Factorization, Matrix, SolverPolicy, Vector};
use std::process::ExitCode;

const RESIDUAL_THRESHOLD: f64 = 1e-8;

/// One system routed through the policy selector.
struct Case {
    name: &'static str,
    selected: &'static str,
    dim: usize,
    nnz: usize,
    residual: f64,
}

/// Symmetric positive-definite banded matrix (diagonally dominant).
fn banded_spd(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0 + (i as f64) * 0.01
        } else if i.abs_diff(j) <= 2 {
            -0.5
        } else {
            0.0
        }
    })
}

/// Dense SPD matrix with no zero entries (Gaussian-kernel-like Gram).
fn dense_spd(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let d = i.abs_diff(j) as f64;
        (-0.05 * d * d).exp() + if i == j { 1.0 } else { 0.0 }
    })
}

/// Asymmetric nonsingular matrix (forces the LU route).
fn asymmetric(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            3.0
        } else if j == i + 1 {
            1.0
        } else if i == j + 1 {
            -0.5
        } else {
            0.0
        }
    })
}

fn rhs(n: usize) -> Vector {
    Vector::from_fn(n, |i| ((i as f64) * 0.37).sin() + 0.1)
}

fn dense_nnz(a: &Matrix) -> usize {
    let mut nnz = 0;
    for i in 0..a.rows() {
        for v in a.row(i) {
            if v.abs() > 0.0 {
                nnz += 1;
            }
        }
    }
    nnz
}

fn run_dense(policy: &SolverPolicy, name: &'static str, a: &Matrix) -> Case {
    let b = rhs(a.rows());
    let backend = policy.factor_dense(a).expect("factor_dense");
    let x = backend.solve(&b).expect("solve");
    let residual = backend.residual(&x, &b).expect("residual");
    Case {
        name,
        selected: backend.kind().as_str(),
        dim: a.rows(),
        nnz: dense_nnz(a),
        residual,
    }
}

fn run_sparse(policy: &SolverPolicy, name: &'static str, a: &CsrMatrix) -> Case {
    let b = rhs(a.rows());
    let backend = policy.factor_sparse(a).expect("factor_sparse");
    let x = backend.solve(&b).expect("solve");
    let residual = backend.residual(&x, &b).expect("residual");
    Case {
        name,
        selected: backend.kind().as_str(),
        dim: a.rows(),
        nnz: a.nnz(),
        residual,
    }
}

fn main() -> ExitCode {
    let json = std::env::args().any(|a| a == "--json");
    let policy = SolverPolicy::default();

    let cases = vec![
        // Small SPD: below the dimension cutoff, direct Cholesky.
        run_dense(&policy, "small_spd_dense", &banded_spd(48)),
        // Small asymmetric: symmetry test fails, LU.
        run_dense(&policy, "small_asymmetric_dense", &asymmetric(48)),
        // Large but fully dense SPD: stays direct despite its size.
        run_dense(&policy, "large_dense_spd", &dense_spd(192)),
        // Large banded SPD held dense: density below the threshold, CG.
        run_dense(&policy, "large_banded_dense_storage", &banded_spd(256)),
        // The same system in CSR: CG without ever densifying.
        run_sparse(
            &policy,
            "large_banded_csr",
            &CsrMatrix::from_dense(&banded_spd(256), 0.0),
        ),
    ];

    let worst = cases.iter().fold(0.0f64, |acc, c| acc.max(c.residual));
    if json {
        let objects: Vec<String> = cases
            .iter()
            .map(|c| {
                format!(
                    "  {{\"system\": \"{}\", \"backend\": \"{}\", \"dim\": {}, \"nnz\": {}, \"residual\": {:e}}}",
                    c.name, c.selected, c.dim, c.nnz, c.residual
                )
            })
            .collect();
        println!("[\n{}\n]", objects.join(",\n"));
    } else {
        println!("== solver-policy selection demo ==");
        println!(
            "{:<28} {:>16} {:>6} {:>8} {:>12}",
            "system", "backend", "dim", "nnz", "residual"
        );
        for c in &cases {
            println!(
                "{:<28} {:>16} {:>6} {:>8} {:>12.2e}",
                c.name, c.selected, c.dim, c.nnz, c.residual
            );
        }
        println!("\nworst residual: {worst:.2e} (threshold {RESIDUAL_THRESHOLD:.0e})");
    }

    if worst > RESIDUAL_THRESHOLD {
        eprintln!("policy_demo: residual {worst:e} exceeds {RESIDUAL_THRESHOLD:e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
