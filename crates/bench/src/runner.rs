//! Parallel Monte-Carlo repetition runner.
//!
//! Repetitions are embarrassingly parallel; this runner fans them out over
//! the available cores with `std::thread::scope` and collects results under
//! a `std::sync::Mutex`. On a single-core host it degrades to the
//! sequential loop.

use std::sync::Mutex;

/// Runs `repetitions` independent evaluations of `f` (each receiving its
/// repetition index) across the available cores, preserving order.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing repetition; remaining
/// work is still drained (threads are joined) before returning.
pub fn average_over_repetitions<F>(
    repetitions: usize,
    f: F,
) -> Result<Vec<Vec<f64>>, Box<dyn std::error::Error>>
where
    F: Fn(usize) -> Result<Vec<f64>, Box<dyn std::error::Error>> + Sync,
{
    if repetitions == 0 {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(repetitions);

    if threads <= 1 {
        return (0..repetitions).map(|r| f(r)).collect();
    }

    let results: Mutex<Vec<Option<Result<Vec<f64>, String>>>> =
        Mutex::new((0..repetitions).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let r = {
                    let mut guard = next.lock().expect("index mutex poisoned");
                    if *guard >= repetitions {
                        break;
                    }
                    let r = *guard;
                    *guard += 1;
                    r
                };
                // Errors cross the thread boundary as strings; boxed errors
                // are not Send in general.
                let outcome = f(r).map_err(|e| e.to_string());
                results.lock().expect("result mutex poisoned")[r] = Some(outcome);
            });
        }
    });

    let collected = results
        .into_inner()
        .expect("result mutex poisoned after join");
    let mut out = Vec::with_capacity(repetitions);
    for slot in collected {
        match slot.expect("every repetition index was claimed") {
            Ok(v) => out.push(v),
            Err(message) => return Err(message.into()),
        }
    }
    Ok(out)
}

/// Parses a `--flag value` style argument list for the experiment
/// binaries: supported keys are returned via the accessor methods, and
/// unknown flags produce an error message listing the supported set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CliArgs {
    /// Overridden repetition count, when given.
    pub repetitions: Option<usize>,
    /// Run the paper-scale grid instead of the scaled-down default.
    pub full: bool,
    /// Overridden base seed, when given.
    pub seed: Option<u64>,
}

impl CliArgs {
    /// Parses `std::env::args`-style strings (the program name must be
    /// stripped by the caller).
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = CliArgs::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--reps" => {
                    let value = iter.next().ok_or("--reps requires a value")?;
                    out.repetitions = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad --reps value: {value}"))?,
                    );
                }
                "--seed" => {
                    let value = iter.next().ok_or("--seed requires a value")?;
                    out.seed = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad --seed value: {value}"))?,
                    );
                }
                "--full" => out.full = true,
                "--help" | "-h" => return Err("usage: [--reps N] [--seed S] [--full]".to_owned()),
                other => return Err(format!("unknown flag {other}; try --help")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_repetitions_in_order() {
        let results = average_over_repetitions(5, |r| Ok(vec![r as f64])).unwrap();
        assert_eq!(results.len(), 5);
        for (r, v) in results.iter().enumerate() {
            assert_eq!(v[0], r as f64);
        }
    }

    #[test]
    fn zero_repetitions_is_empty() {
        let results = average_over_repetitions(0, |_| unreachable!()).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn propagates_errors() {
        let result = average_over_repetitions(3, |r| {
            if r == 1 {
                Err("boom".into())
            } else {
                Ok(vec![0.0])
            }
        });
        assert!(result.is_err());
        assert!(result.unwrap_err().to_string().contains("boom"));
    }

    #[test]
    fn cli_parses_flags() {
        let args = CliArgs::parse(
            ["--reps", "12", "--seed", "99", "--full"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(args.repetitions, Some(12));
        assert_eq!(args.seed, Some(99));
        assert!(args.full);
    }

    #[test]
    fn cli_rejects_unknown_flags_and_bad_values() {
        assert!(CliArgs::parse(["--nope".to_owned()]).is_err());
        assert!(CliArgs::parse(["--reps".to_owned()]).is_err());
        assert!(CliArgs::parse(["--reps".to_owned(), "abc".to_owned()]).is_err());
        assert!(CliArgs::parse(["--help".to_owned()]).is_err());
        assert_eq!(CliArgs::parse([]).unwrap(), CliArgs::default());
    }
}
