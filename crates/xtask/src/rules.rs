//! The lint rules enforced by `gssl-xtask check`.
//!
//! Every rule works on the blanked per-line view produced by
//! [`crate::scanner`], skipping `#[cfg(test)]` regions. A violation can be
//! suppressed by an inline `// lint: allow(<rule>)` marker on the offending
//! line, but only when the file/rule pair is also registered in the
//! workspace allowlist (see [`crate::allowlist`]) — unregistered markers
//! and stale registrations are themselves violations.

use crate::scanner::SourceFile;

/// The rules the checker knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Crate roots must carry `#![forbid(unsafe_code)]` and
    /// `#![deny(missing_docs)]`.
    RootAttrs,
    /// Every `pub` item must have a doc comment.
    MissingDoc,
    /// No `unwrap()`/`expect(`/`panic!`-family calls in library code.
    NoPanic,
    /// No bare `==`/`!=` against float literals; use the named helpers
    /// (`is_exactly_zero`/`is_exactly_one`) for exact sentinels.
    FloatEq,
    /// `pub enum ...Error` must be `#[non_exhaustive]` with documented
    /// variants.
    ErrorEnum,
    /// An inline `lint: allow(...)` marker has no allowlist registration.
    AllowUnlisted,
    /// An allowlist registration matches no inline marker.
    AllowStale,
}

impl Rule {
    /// Stable key used in allowlist entries and inline markers.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Rule::RootAttrs => "root_attrs",
            Rule::MissingDoc => "missing_doc",
            Rule::NoPanic => "no_panic",
            Rule::FloatEq => "float_eq",
            Rule::ErrorEnum => "error_enum",
            Rule::AllowUnlisted => "allow_unlisted",
            Rule::AllowStale => "allow_stale",
        }
    }

    /// Parses an allowlist/marker key back into a rule.
    #[must_use]
    pub fn from_key(key: &str) -> Option<Rule> {
        match key {
            "root_attrs" => Some(Rule::RootAttrs),
            "missing_doc" => Some(Rule::MissingDoc),
            "no_panic" => Some(Rule::NoPanic),
            "float_eq" => Some(Rule::FloatEq),
            "error_enum" => Some(Rule::ErrorEnum),
            "allow_unlisted" => Some(Rule::AllowUnlisted),
            "allow_stale" => Some(Rule::AllowStale),
            _ => None,
        }
    }
}

/// One reported problem.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.key(),
            self.message
        )
    }
}

/// An inline `lint: allow(rule)` marker found while scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineAllow {
    /// Workspace-relative path of the file carrying the marker.
    pub file: String,
    /// 1-based line of the marker.
    pub line: usize,
    /// The rule being allowed.
    pub rule: Rule,
}

/// Extracts the rule allowed by a line comment, if any.
///
/// Recognized form: `lint: allow(<rule_key>)` anywhere in the comment.
#[must_use]
pub fn parse_inline_allow(comment: &str) -> Option<Rule> {
    let idx = comment.find("lint: allow(")?;
    let rest = &comment[idx + "lint: allow(".len()..];
    let close = rest.find(')')?;
    Rule::from_key(rest[..close].trim())
}

/// Per-file rule context passed to the checks.
#[derive(Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Analyzed source.
    pub source: &'a SourceFile,
}

/// Result of running line rules over a file: violations that were not
/// suppressed, plus every inline-allow marker encountered.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations surviving inline suppression.
    pub violations: Vec<Violation>,
    /// All inline markers (used for allowlist reconciliation).
    pub allows: Vec<InlineAllow>,
}

/// Tokens whose presence in library code is a panic path.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Checks a crate-root `lib.rs` for the required inner attributes.
#[must_use]
pub fn check_root_attrs(ctx: &FileContext<'_>) -> Vec<Violation> {
    let mut missing = Vec::new();
    for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        let found = ctx.source.lines.iter().any(|l| l.code.trim() == required);
        if !found {
            missing.push(Violation {
                rule: Rule::RootAttrs,
                file: ctx.path.to_owned(),
                line: 1,
                message: format!("crate root is missing `{required}`"),
            });
        }
    }
    missing
}

/// Scans for panic-path tokens in non-test code.
pub fn check_no_panic(ctx: &FileContext<'_>, out: &mut FileOutcome) {
    for (i, line) in ctx.source.lines.iter().enumerate() {
        if ctx.source.test_mask[i] {
            continue;
        }
        for token in PANIC_TOKENS {
            if line.code.contains(token) {
                report(
                    ctx,
                    out,
                    i,
                    Rule::NoPanic,
                    format!("`{token}` in library code; return an Error instead"),
                );
                break;
            }
        }
    }
}

/// Scans for bare `==`/`!=` comparisons against float literals.
pub fn check_float_eq(ctx: &FileContext<'_>, out: &mut FileOutcome) {
    for (i, line) in ctx.source.lines.iter().enumerate() {
        if ctx.source.test_mask[i] {
            continue;
        }
        if has_float_comparison(&line.code) {
            report(
                ctx,
                out,
                i,
                Rule::FloatEq,
                "bare float `==`/`!=`; use is_exactly_zero/is_exactly_one or an \
                 epsilon comparison"
                    .to_owned(),
            );
        }
    }
}

/// Whether `code` contains `==` or `!=` with a float literal on either side.
fn has_float_comparison(code: &str) -> bool {
    let bytes = code.as_bytes();
    for idx in 0..bytes.len().saturating_sub(1) {
        let op = &bytes[idx..idx + 2];
        let is_eq = op == b"==";
        let is_ne = op == b"!=";
        if !is_eq && !is_ne {
            continue;
        }
        // Exclude `<=`, `>=`, `===`-like runs and `a != =` oddities.
        if idx > 0 && matches!(bytes[idx - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if bytes.get(idx + 2) == Some(&b'=') {
            continue;
        }
        let left = token_before(code, idx);
        let right = token_after(code, idx + 2);
        if is_float_literal(left) || is_float_literal(right) {
            return true;
        }
    }
    false
}

/// The identifier/literal token ending at byte `end` (exclusive).
fn token_before(code: &str, end: usize) -> &str {
    let bytes = code.as_bytes();
    let mut stop = end;
    while stop > 0 && bytes[stop - 1] == b' ' {
        stop -= 1;
    }
    let mut start = stop;
    while start > 0 && is_token_byte(bytes[start - 1]) {
        start -= 1;
    }
    &code[start..stop]
}

/// The identifier/literal token starting at byte `start`.
fn token_after(code: &str, start: usize) -> &str {
    let bytes = code.as_bytes();
    let mut begin = start;
    while begin < bytes.len() && bytes[begin] == b' ' {
        begin += 1;
    }
    // A leading unary minus is part of a literal.
    if begin < bytes.len() && bytes[begin] == b'-' {
        begin += 1;
    }
    let mut stop = begin;
    while stop < bytes.len() && is_token_byte(bytes[stop]) {
        stop += 1;
    }
    &code[begin..stop]
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.'
}

/// A decimal float literal: digits, a dot, optionally more digits or an
/// `f32`/`f64` suffix (e.g. `0.0`, `1.`, `2.5f64`).
fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    let Some(dot) = t.find('.') else {
        return false;
    };
    let (mantissa, frac) = t.split_at(dot);
    !mantissa.is_empty()
        && mantissa.bytes().all(|b| b.is_ascii_digit())
        && frac[1..]
            .bytes()
            .all(|b| b.is_ascii_digit() || b == b'e' || b == b'E' || b == b'-' || b == b'+')
}

/// Checks that every `pub` item carries a doc comment.
pub fn check_missing_docs(ctx: &FileContext<'_>, out: &mut FileOutcome) {
    const ITEM_KEYWORDS: [&str; 9] = [
        "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
    ];
    for (i, line) in ctx.source.lines.iter().enumerate() {
        if ctx.source.test_mask[i] {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        let keyword_first = rest.split_whitespace().next().unwrap_or("");
        // `pub async fn` / `pub(crate)` handling: the latter never matches
        // because the prefix requires a space after `pub`.
        let item_word = if keyword_first == "async" {
            rest.split_whitespace().nth(1).unwrap_or("")
        } else {
            keyword_first
        };
        if !ITEM_KEYWORDS.contains(&item_word) {
            continue;
        }
        if !has_doc_above(ctx.source, i) {
            report(
                ctx,
                out,
                i,
                Rule::MissingDoc,
                format!("public {item_word} has no doc comment"),
            );
        }
    }
}

/// Walks upward over attribute lines; true when a doc comment is found
/// directly above the item.
fn has_doc_above(source: &SourceFile, item_line: usize) -> bool {
    let mut i = item_line;
    while i > 0 {
        i -= 1;
        let line = &source.lines[i];
        let trimmed = line.code.trim();
        if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            continue; // attribute between doc and item
        }
        // rustfmt splits long attributes across lines; a closing `)]` is
        // the tail of one. Hop to the `#[` opener and keep walking.
        if trimmed.ends_with(")]") || trimmed == "]" {
            let mut j = i;
            let mut opener = None;
            while j > 0 {
                j -= 1;
                let above = source.lines[j].code.trim();
                if above.starts_with("#[") || above.starts_with("#![") {
                    opener = Some(j);
                    break;
                }
                if above.is_empty() || source.lines[j].is_doc {
                    break;
                }
            }
            if let Some(j) = opener {
                i = j + 1; // the loop's decrement lands on the opener
                continue;
            }
        }
        return line.is_doc;
    }
    false
}

/// Checks `pub enum …Error` declarations: `#[non_exhaustive]` plus a doc
/// comment on every variant.
pub fn check_error_enum(ctx: &FileContext<'_>, out: &mut FileOutcome) {
    for (i, line) in ctx.source.lines.iter().enumerate() {
        if ctx.source.test_mask[i] {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub enum ") else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.ends_with("Error") && name != "Error" {
            continue;
        }
        if !has_attr_above(ctx.source, i, "#[non_exhaustive]") {
            report(
                ctx,
                out,
                i,
                Rule::ErrorEnum,
                format!("error enum `{name}` is not #[non_exhaustive]"),
            );
        }
        check_variant_docs(ctx, out, i, &name);
    }
}

/// Walks upward over contiguous attribute/doc lines looking for `attr`.
fn has_attr_above(source: &SourceFile, item_line: usize, attr: &str) -> bool {
    let mut i = item_line;
    while i > 0 {
        i -= 1;
        let line = &source.lines[i];
        let trimmed = line.code.trim();
        if trimmed == attr {
            return true;
        }
        if trimmed.starts_with("#[") || line.is_doc {
            continue;
        }
        return false;
    }
    false
}

/// Requires a doc comment on every variant of the enum starting at
/// `enum_line` (variants are code lines at brace depth 1 starting with an
/// uppercase identifier).
fn check_variant_docs(ctx: &FileContext<'_>, out: &mut FileOutcome, enum_line: usize, name: &str) {
    let mut depth = 0usize;
    let mut started = false;
    let mut pending_doc = false;
    for i in enum_line..ctx.source.lines.len() {
        let line = &ctx.source.lines[i];
        let trimmed = line.code.trim();
        if started && depth == 1 {
            if line.is_doc {
                pending_doc = true;
            } else if trimmed.starts_with("#[") {
                // attributes between doc and variant keep the pending doc
            } else if trimmed
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                if !pending_doc {
                    report(
                        ctx,
                        out,
                        i,
                        Rule::ErrorEnum,
                        format!("undocumented variant of error enum `{name}`"),
                    );
                }
                pending_doc = false;
            } else if !trimmed.is_empty() {
                pending_doc = false;
            }
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if started && depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Records a violation unless the line carries a matching inline allow;
/// inline allows are recorded either way for allowlist reconciliation.
fn report(
    ctx: &FileContext<'_>,
    out: &mut FileOutcome,
    line_idx: usize,
    rule: Rule,
    message: String,
) {
    let line = &ctx.source.lines[line_idx];
    if parse_inline_allow(&line.comment) == Some(rule) {
        out.allows.push(InlineAllow {
            file: ctx.path.to_owned(),
            line: line_idx + 1,
            rule,
        });
        return;
    }
    out.violations.push(Violation {
        rule,
        file: ctx.path.to_owned(),
        line: line_idx + 1,
        message,
    });
}

/// Collects inline allows that suppressed nothing (markers on clean lines
/// still count as present for reconciliation purposes).
pub fn collect_inline_allows(ctx: &FileContext<'_>, out: &mut FileOutcome) {
    for (i, line) in ctx.source.lines.iter().enumerate() {
        if let Some(rule) = parse_inline_allow(&line.comment) {
            let already = out
                .allows
                .iter()
                .any(|a| a.file == ctx.path && a.line == i + 1 && a.rule == rule);
            if !already {
                out.allows.push(InlineAllow {
                    file: ctx.path.to_owned(),
                    line: i + 1,
                    rule,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::analyze;

    fn run_all(path: &str, src: &str) -> FileOutcome {
        let source = analyze(src);
        let ctx = FileContext {
            path,
            source: &source,
        };
        let mut out = FileOutcome::default();
        check_no_panic(&ctx, &mut out);
        check_float_eq(&ctx, &mut out);
        check_missing_docs(&ctx, &mut out);
        check_error_enum(&ctx, &mut out);
        collect_inline_allows(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_outside_tests() {
        let out = run_all("x.rs", "fn f() { y.unwrap(); }");
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].rule, Rule::NoPanic);
    }

    #[test]
    fn ignores_unwrap_in_tests_and_docs() {
        let src =
            "/// y.unwrap()\nfn f() {}\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}";
        let out = run_all("x.rs", src);
        assert!(out.violations.iter().all(|v| v.rule != Rule::NoPanic));
    }

    #[test]
    fn unwrap_or_is_not_a_panic() {
        let out = run_all("x.rs", "fn f() { y.unwrap_or(0); z.unwrap_or_else(|| 1); }");
        assert!(out.violations.iter().all(|v| v.rule != Rule::NoPanic));
    }

    #[test]
    fn flags_float_equality() {
        let out = run_all("x.rs", "fn f(x: f64) -> bool { x == 0.0 }");
        assert_eq!(
            out.violations
                .iter()
                .filter(|v| v.rule == Rule::FloatEq)
                .count(),
            1
        );
    }

    #[test]
    fn integer_equality_is_fine() {
        let out = run_all("x.rs", "fn f(x: usize) -> bool { x == 0 && x != 3 }");
        assert!(out.violations.iter().all(|v| v.rule != Rule::FloatEq));
    }

    #[test]
    fn comparison_operators_are_fine() {
        let out = run_all("x.rs", "fn f(x: f64) -> bool { x <= 0.0 || x >= 1.0 }");
        assert!(out.violations.iter().all(|v| v.rule != Rule::FloatEq));
    }

    #[test]
    fn inline_allow_suppresses_and_is_recorded() {
        let out = run_all(
            "x.rs",
            "fn f(x: f64) -> bool { x == 0.0 } // lint: allow(float_eq)",
        );
        assert!(out.violations.is_empty());
        assert_eq!(out.allows.len(), 1);
        assert_eq!(out.allows[0].rule, Rule::FloatEq);
    }

    #[test]
    fn missing_doc_on_pub_fn() {
        let out = run_all("x.rs", "pub fn naked() {}");
        assert_eq!(
            out.violations
                .iter()
                .filter(|v| v.rule == Rule::MissingDoc)
                .count(),
            1
        );
        let out = run_all("x.rs", "/// documented\npub fn clothed() {}");
        assert!(out.violations.iter().all(|v| v.rule != Rule::MissingDoc));
    }

    #[test]
    fn doc_through_attributes() {
        let out = run_all("x.rs", "/// doc\n#[derive(Debug)]\npub struct S;");
        assert!(out.violations.iter().all(|v| v.rule != Rule::MissingDoc));
    }

    #[test]
    fn doc_through_multiline_attribute() {
        let src = "/// doc\n#[deprecated(\n    since = \"0.5.0\",\n    \
                   note = \"use the other one\"\n)]\n#[derive(Debug)]\npub struct S;";
        let out = run_all("x.rs", src);
        assert!(out.violations.iter().all(|v| v.rule != Rule::MissingDoc));
        let undocumented = "#[deprecated(\n    since = \"0.5.0\",\n    \
                            note = \"use the other one\"\n)]\npub struct S;";
        let out = run_all("x.rs", undocumented);
        assert_eq!(
            out.violations
                .iter()
                .filter(|v| v.rule == Rule::MissingDoc)
                .count(),
            1
        );
    }

    #[test]
    fn error_enum_needs_non_exhaustive_and_variant_docs() {
        let bad = "/// doc\npub enum Error {\n    Broken,\n}";
        let out = run_all("x.rs", bad);
        assert_eq!(
            out.violations
                .iter()
                .filter(|v| v.rule == Rule::ErrorEnum)
                .count(),
            2
        );

        let good =
            "/// doc\n#[non_exhaustive]\npub enum Error {\n    /// documented\n    Broken,\n}";
        let out = run_all("x.rs", good);
        assert!(out.violations.iter().all(|v| v.rule != Rule::ErrorEnum));
    }

    #[test]
    fn non_error_enums_are_ignored() {
        let out = run_all("x.rs", "/// doc\npub enum Kernel {\n    Gaussian,\n}");
        assert!(out.violations.iter().all(|v| v.rule != Rule::ErrorEnum));
    }

    #[test]
    fn root_attrs_detected() {
        let source = analyze("#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n");
        let ctx = FileContext {
            path: "lib.rs",
            source: &source,
        };
        assert!(check_root_attrs(&ctx).is_empty());
        let source = analyze("#![warn(missing_docs)]\n");
        let ctx = FileContext {
            path: "lib.rs",
            source: &source,
        };
        assert_eq!(check_root_attrs(&ctx).len(), 2);
    }
}
