//! Perf-pass fixture: seeded hot-path annotations and lint violations.
//!
//! Expected findings (see `tests/self_test.rs`):
//! * `hot_entry` — complexity_mismatch (declared O(n), nests 2 loops);
//!   its hotness must propagate to `helper`.
//! * `helper` — alloc_in_hot_loop (push without capacity) and
//!   bounds_check_hot_loop (`row[j]` in the innermost loop), both only
//!   because hotness arrived through the call graph.
//! * `hot_alloc` — complexity_contract (hot, loops, no contract) and
//!   alloc_in_hot_loop (`format!` per iteration).
//! * `hot_malformed` — complexity_contract (sum grammar rejected).
//! * `hot_baselined` — alloc_in_hot_loop suppressed by the baseline.
//! * `cold_alloc` — silent: same body as `hot_baselined`, never hot.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// hot
/// complexity: O(n)
pub fn hot_entry(rows: &[Vec<f64>], n: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..n {
        for row in rows.iter() {
            acc += helper(row);
        }
    }
    acc
}

fn helper(row: &[f64]) -> f64 {
    let mut buf = Vec::new();
    for j in 0..row.len() {
        buf.push(row[j] * 2.0);
    }
    buf.iter().sum()
}

/// hot
pub fn hot_alloc(names: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(names.len());
    for name in names.iter() {
        out.push(format!("hot:{name}"));
    }
    out
}

/// hot
/// complexity: O(n + m)
pub fn hot_malformed(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// hot
/// complexity: O(n)
pub fn hot_baselined(v: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in v.iter() {
        let tmp = vec![0.0; 4];
        acc += x + tmp[0];
    }
    acc
}

/// Cold control: identical body to `hot_baselined`, never marked hot.
pub fn cold_alloc(v: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in v.iter() {
        let tmp = vec![0.0; 4];
        acc += x + tmp[0];
    }
    acc
}
