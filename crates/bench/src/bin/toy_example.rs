//! Executes the paper's Section III toy example: when every input is the
//! same constant, the Gaussian RBF similarity matrix is all-ones and the
//! hard criterion's closed form collapses to the labeled mean on every
//! unlabeled point — "the best solution one can expect".
//!
//! The binary prints the explicit `(D₂₂ − W₂₂)⁻¹` entries next to the
//! paper's closed form `(n+1)/(n(m+n))` / `1/(n(m+n))` and verifies the
//! resulting predictions.

use gssl::{HardCriterion, Problem};
use gssl_linalg::{inverse, Matrix};

fn main() {
    let n = 5; // labeled
    let m = 3; // unlabeled
    let labels = vec![1.0, 0.0, 1.0, 1.0, 0.0];
    let label_mean: f64 = labels.iter().sum::<f64>() / n as f64;

    // All inputs identical => all pairwise distances 0 => w_ij ≡ 1.
    let w = Matrix::filled(n + m, n + m, 1.0);
    let problem = Problem::new(w, labels).expect("toy problem is valid");

    println!("== Section III toy example: identical inputs ==");
    println!("n = {n} labeled, m = {m} unlabeled, label mean = {label_mean:.4}\n");

    let system = problem.unlabeled_system().expect("valid problem");
    let inv = inverse(&system).expect("D22 - W22 is invertible");
    let nf = n as f64;
    let total = (n + m) as f64;
    println!("(D22 - W22)^-1 measured vs closed form:");
    let mut worst = 0.0f64;
    for a in 0..m {
        for b in 0..m {
            let expected = if a == b {
                (nf + 1.0) / (nf * total)
            } else {
                1.0 / (nf * total)
            };
            worst = worst.max((inv.get(a, b) - expected).abs());
        }
    }
    println!(
        "  diagonal:     {:.6} (paper: (n+1)/(n(m+n)) = {:.6})",
        inv.get(0, 0),
        (nf + 1.0) / (nf * total)
    );
    println!(
        "  off-diagonal: {:.6} (paper: 1/(n(m+n))     = {:.6})",
        inv.get(0, 1),
        1.0 / (nf * total)
    );
    println!("  max |measured - closed form| = {worst:.2e}\n");

    let scores = HardCriterion::new()
        .fit(&problem)
        .expect("anchored problem");
    println!("hard-criterion predictions on unlabeled points:");
    for (a, &s) in scores.unlabeled().iter().enumerate() {
        println!("  f[n+{a}] = {s:.6} (expected label mean {label_mean:.6})");
    }
    let max_gap = scores
        .unlabeled()
        .iter()
        .map(|s| (s - label_mean).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax |prediction - label mean| = {max_gap:.2e}");
    assert!(worst < 1e-10 && max_gap < 1e-10, "toy example check failed");
    println!("toy example verified ✓");
}
