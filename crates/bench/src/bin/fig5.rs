//! Reproduces Figure 5 of the paper: average AUC on the (synthetic) COIL
//! binary task versus λ ∈ {0, 0.01, 0.05, 0.1, 0.5, 1, 5} at labeled
//! ratios 80/20, 20/80 and 10/90.
//!
//! The default run uses a scaled-down render (40 images/class); pass
//! `--full` for the benchmark-sized 250 images/class with 100 repetitions
//! (hours of compute — the 10/90 setting solves 1350×1350 systems).

use gssl_bench::figures::{report_figure5, run_figure5};
use gssl_bench::report::format_series_csv;
use gssl_bench::runner::CliArgs;

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    match run_figure5(&args) {
        Ok(points) => {
            report_figure5(&points);
            print!("{}", format_series_csv(&points));
        }
        Err(error) => {
            eprintln!("figure 5 failed: {error}");
            std::process::exit(1);
        }
    }
}
