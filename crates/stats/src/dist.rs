//! Sampling distributions built on the `rand` core RNG.
//!
//! `rand_distr` is not on the approved dependency list, so the normal
//! sampler (Box–Muller) and the Cholesky-based multivariate normal are
//! implemented here. [`TruncatedMvn`] reproduces the paper's exact input
//! distribution: a multivariate normal whose coordinates are *replaced by
//! zero* when they fall outside `[0, 1]` (Section V.A).

use crate::error::{Error, Result};
use gssl_linalg::{Cholesky, Matrix, Vector};
use rand::Rng;

/// A univariate normal distribution sampled by the Box–Muller transform.
///
/// ```
/// use gssl_stats::dist::Normal;
/// use rand::SeedableRng;
/// let normal = Normal::new(1.0, 2.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = normal.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `std_dev < 0` or either
    /// parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "normal requires finite mean and std_dev >= 0, got ({mean}, {std_dev})"
                ),
            });
        }
        Ok(Normal { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws `count` samples.
    pub fn sample_vec(&self, rng: &mut impl Rng, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A multivariate normal `N(μ, Σ)` sampled via the Cholesky factor of `Σ`.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vector,
    /// Lower Cholesky factor of the covariance.
    factor: Matrix,
}

impl MultivariateNormal {
    /// Creates the distribution from a mean vector and covariance matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::LengthMismatch`] when `mean.len() != covariance.rows()`.
    /// * [`Error::Linalg`] when the covariance is not symmetric positive
    ///   definite.
    pub fn new(mean: Vector, covariance: &Matrix) -> Result<Self> {
        if mean.len() != covariance.rows() {
            return Err(Error::LengthMismatch {
                operation: "multivariate normal",
                left: mean.len(),
                right: covariance.rows(),
            });
        }
        let chol = Cholesky::factor(covariance)?;
        Ok(MultivariateNormal {
            mean,
            factor: chol.lower().clone(),
        })
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draws one sample as `μ + L z` with `z` standard normal.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        let d = self.dim();
        let z: Vec<f64> = (0..d).map(|_| standard_normal(rng)).collect();
        let mut out = vec![0.0; d];
        for i in 0..d {
            let mut sum = self.mean[i];
            // L is lower triangular: only j <= i contribute.
            for (j, zj) in z.iter().enumerate().take(i + 1) {
                sum += self.factor.get(i, j) * zj;
            }
            out[i] = sum;
        }
        out
    }

    /// Draws `count` samples as rows of a matrix.
    pub fn sample_matrix(&self, rng: &mut impl Rng, count: usize) -> Matrix {
        let d = self.dim();
        let mut out = Matrix::zeros(count, d);
        for i in 0..count {
            let row = self.sample(rng);
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

/// The paper's truncated multivariate normal: draw `X̃ ~ N(μ, Σ)` and set
/// each coordinate `X_k = X̃_k` if `X̃_k ∈ [lower, upper]`, else `X_k = 0`.
///
/// With the paper's parameters (`μ = 0.5·1`, `Σ = 0.05·1·1ᵀ + 0.05·I`,
/// bounds `[0, 1]`) this produces inputs on a compact support, as
/// Theorem II.1 requires.
#[derive(Debug, Clone)]
pub struct TruncatedMvn {
    inner: MultivariateNormal,
    lower: f64,
    upper: f64,
}

impl TruncatedMvn {
    /// Creates the truncated distribution.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `lower >= upper`.
    /// * Propagates [`MultivariateNormal::new`] errors.
    pub fn new(mean: Vector, covariance: &Matrix, lower: f64, upper: f64) -> Result<Self> {
        if !(lower < upper) {
            return Err(Error::InvalidParameter {
                message: format!(
                    "truncation bounds must satisfy lower < upper, got [{lower}, {upper}]"
                ),
            });
        }
        Ok(TruncatedMvn {
            inner: MultivariateNormal::new(mean, covariance)?,
            lower,
            upper,
        })
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// Draws one sample with the paper's zero-replacement truncation rule.
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        self.inner
            .sample(rng)
            .into_iter()
            .map(|x| {
                if (self.lower..=self.upper).contains(&x) {
                    x
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Draws `count` samples as rows of a matrix.
    pub fn sample_matrix(&self, rng: &mut impl Rng, count: usize) -> Matrix {
        let d = self.dim();
        let mut out = Matrix::zeros(count, d);
        for i in 0..count {
            let row = self.sample(rng);
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

/// The logistic sigmoid `1 / (1 + e^{−t})`.
///
/// ```
/// use gssl_stats::dist::sigmoid;
/// assert_eq!(sigmoid(0.0), 0.5);
/// assert!(sigmoid(10.0) > 0.999);
/// ```
pub fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        // Numerically stable branch for very negative t.
        let e = t.exp();
        e / (1.0 + e)
    }
}

/// The logit `log(p / (1 − p))`, inverse of [`sigmoid`].
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `p` is outside `(0, 1)`.
pub fn logit(p: f64) -> Result<f64> {
    if !(0.0 < p && p < 1.0) {
        return Err(Error::InvalidParameter {
            message: format!("logit requires p in (0, 1), got {p}"),
        });
    }
    Ok((p / (1.0 - p)).ln())
}

/// Draws a Bernoulli sample with success probability `p`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `p` is outside `[0, 1]`.
pub fn bernoulli(rng: &mut impl Rng, p: f64) -> Result<bool> {
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::InvalidParameter {
            message: format!("bernoulli requires p in [0, 1], got {p}"),
        });
    }
    Ok(rng.gen::<f64>() < p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_validates_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        let n = Normal::new(2.0, 3.0).unwrap();
        assert_eq!(n.mean(), 2.0);
        assert_eq!(n.std_dev(), 3.0);
    }

    #[test]
    fn normal_sample_moments() {
        let normal = Normal::new(1.5, 0.5).unwrap();
        let mut r = rng();
        let xs = normal.sample_vec(&mut r, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn degenerate_normal_is_constant() {
        let normal = Normal::new(3.0, 0.0).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut r), 3.0);
        }
    }

    /// The paper's covariance: 0.05 everywhere + 0.05 on the diagonal.
    fn paper_covariance(d: usize) -> Matrix {
        Matrix::from_fn(d, d, |i, j| if i == j { 0.1 } else { 0.05 })
    }

    #[test]
    fn mvn_sample_moments_match_parameters() {
        let d = 3;
        let mean = Vector::filled(d, 0.5);
        let mvn = MultivariateNormal::new(mean, &paper_covariance(d)).unwrap();
        let mut r = rng();
        let samples = mvn.sample_matrix(&mut r, 30_000);
        for j in 0..d {
            let col = samples.col(j);
            let m = col.mean();
            assert!((m - 0.5).abs() < 0.02, "coordinate {j} mean {m}");
            let var = col.iter().map(|x| (x - m).powi(2)).sum::<f64>() / col.len() as f64;
            assert!((var - 0.1).abs() < 0.02, "coordinate {j} var {var}");
        }
        // Off-diagonal covariance ~ 0.05.
        let c0 = samples.col(0);
        let c1 = samples.col(1);
        let (m0, m1) = (c0.mean(), c1.mean());
        let cov = c0
            .iter()
            .zip(c1.iter())
            .map(|(a, b)| (a - m0) * (b - m1))
            .sum::<f64>()
            / c0.len() as f64;
        assert!((cov - 0.05).abs() < 0.02, "cov {cov}");
    }

    #[test]
    fn mvn_validates_inputs() {
        let bad_cov = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(MultivariateNormal::new(Vector::zeros(2), &bad_cov).is_err());
        assert!(MultivariateNormal::new(Vector::zeros(3), &Matrix::identity(2)).is_err());
    }

    #[test]
    fn truncated_mvn_respects_bounds_or_zero() {
        let d = 5;
        let mvn =
            TruncatedMvn::new(Vector::filled(d, 0.5), &paper_covariance(d), 0.0, 1.0).unwrap();
        assert_eq!(mvn.dim(), d);
        let mut r = rng();
        let samples = mvn.sample_matrix(&mut r, 500);
        for i in 0..samples.rows() {
            for &x in samples.row(i) {
                assert!((0.0..=1.0).contains(&x), "coordinate {x} out of range");
            }
        }
    }

    #[test]
    fn truncated_mvn_produces_some_zeros_under_wide_noise() {
        // With a huge variance most draws land outside [0,1] and become 0.
        let cov = Matrix::from_diag(&[100.0, 100.0]);
        let mvn = TruncatedMvn::new(Vector::zeros(2), &cov, 0.0, 1.0).unwrap();
        let mut r = rng();
        let samples = mvn.sample_matrix(&mut r, 200);
        let zeros = samples.as_slice().iter().filter(|&&x| x == 0.0).count();
        assert!(zeros > 200, "expected mostly zeros, got {zeros}/400");
    }

    #[test]
    fn truncated_mvn_validates_bounds() {
        assert!(TruncatedMvn::new(Vector::zeros(1), &Matrix::identity(1), 1.0, 0.0).is_err());
        assert!(TruncatedMvn::new(Vector::zeros(1), &Matrix::identity(1), 1.0, 1.0).is_err());
    }

    #[test]
    fn sigmoid_and_logit_are_inverse() {
        for &p in &[0.01, 0.3, 0.5, 0.77, 0.99] {
            assert!((sigmoid(logit(p).unwrap()) - p).abs() < 1e-12);
        }
        assert!(logit(0.0).is_err());
        assert!(logit(1.0).is_err());
        // Stability at extremes.
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut r = rng();
        let hits = (0..10_000)
            .filter(|_| bernoulli(&mut r, 0.3).unwrap())
            .count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        assert!(bernoulli(&mut r, 1.5).is_err());
        assert!(bernoulli(&mut r, -0.1).is_err());
    }
}
