//! Workspace-local stand-in for the tiny slice of the `rand` crate API this
//! workspace uses.
//!
//! The build environment is fully offline, so the real crates-io `rand`
//! cannot be fetched. This crate re-implements, dependency-free, exactly the
//! surface the workspace consumes — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — with the same call-site
//! syntax, so library code, tests and examples compile unchanged.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64: deterministic per seed, fast, and of more than sufficient
//! statistical quality for Monte-Carlo experiments. It makes no security
//! claims whatsoever.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly; mirrors `rand`'s `gen_range` argument.
pub trait SampleRange {
    /// The element type produced by the range.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching the behaviour of the real
    /// `rand` crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire's widening
/// multiply; the shim skips the rejection step — the bias is below 2⁻⁶⁴·n,
/// irrelevant for experiment workloads).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut n2 = s2 ^ s0;
            let mut n3 = s3 ^ s1;
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.state = [n0, n1, n2, n3];
            result
        }
    }
}

/// Non-uniform distributions, mirroring the slice of `rand_distr` the
/// workspace uses: exponential inter-arrival gaps and the Poisson arrival
/// process they generate, for open-loop traffic benchmarks.
pub mod dist {
    use super::{RngCore, StandardSample};

    /// The exponential distribution `Exp(rate)` with density
    /// `rate · exp(−rate·x)` and mean `1/rate`, sampled by inverse CDF:
    /// `x = −ln(1 − u)/rate` for `u` uniform on `[0, 1)`.
    ///
    /// `1 − u` is never zero for `u ∈ [0, 1)`, so samples are always
    /// finite. Deterministic per generator stream.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Exp {
        rate: f64,
    }

    impl Exp {
        /// An exponential distribution with the given rate parameter.
        ///
        /// # Panics
        ///
        /// Panics unless `rate` is finite and strictly positive.
        pub fn new(rate: f64) -> Self {
            assert!(
                rate.is_finite() && rate > 0.0,
                "Exp rate must be finite and positive, got {rate}"
            );
            Exp { rate }
        }

        /// The rate parameter `λ`.
        pub fn rate(&self) -> f64 {
            self.rate
        }

        /// Draws one sample (an inter-arrival gap with mean `1/rate`).
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let u = f64::standard_sample(rng);
            -(1.0 - u).ln() / self.rate
        }
    }

    /// A homogeneous Poisson arrival process with intensity `rate` events
    /// per unit time: successive [`PoissonProcess::next_arrival`] calls
    /// return strictly increasing absolute arrival times whose gaps are
    /// i.i.d. `Exp(rate)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct PoissonProcess {
        gaps: Exp,
        now: f64,
    }

    impl PoissonProcess {
        /// A process starting at time `0` with the given intensity.
        ///
        /// # Panics
        ///
        /// Panics unless `rate` is finite and strictly positive.
        pub fn new(rate: f64) -> Self {
            PoissonProcess {
                gaps: Exp::new(rate),
                now: 0.0,
            }
        }

        /// Advances to and returns the next absolute arrival time.
        pub fn next_arrival<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> f64 {
            self.now += self.gaps.sample(rng);
            self.now
        }

        /// All arrival times strictly before `horizon`, in order.
        pub fn arrivals_until<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            horizon: f64,
        ) -> Vec<f64> {
            let mut times = Vec::new();
            loop {
                let t = self.next_arrival(rng);
                if t >= horizon {
                    return times;
                }
                times.push(t);
            }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random operations on slices (Fisher–Yates shuffling, element choice).
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..100 {
            let x = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_covers_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).expect("non-empty") as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_pinned() {
        // Property test over several seeds and rates: the empirical mean
        // of n = 100_000 draws must sit within 2% of 1/rate, and every
        // draw must be finite and nonnegative.
        for (seed, rate) in [(1u64, 0.5f64), (7, 1.0), (42, 4.0), (2026, 250.0)] {
            let exp = super::dist::Exp::new(rate);
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 100_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = exp.sample(&mut rng);
                assert!(x.is_finite() && x >= 0.0, "bad sample {x}");
                sum += x;
            }
            let mean = sum / n as f64;
            let expected = 1.0 / rate;
            assert!(
                (mean - expected).abs() < 0.02 * expected,
                "seed {seed}: mean {mean} far from {expected}"
            );
        }
    }

    #[test]
    fn exponential_is_deterministic_per_seed() {
        let exp = super::dist::Exp::new(3.0);
        assert_eq!(exp.rate(), 3.0);
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            assert_eq!(exp.sample(&mut a).to_bits(), exp.sample(&mut b).to_bits());
        }
    }

    #[test]
    fn poisson_arrivals_increase_and_track_intensity() {
        let mut process = super::dist::PoissonProcess::new(100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = process.arrivals_until(&mut rng, 50.0);
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(arrivals.iter().all(|&t| (0.0..50.0).contains(&t)));
        // Expect rate·horizon = 5000 arrivals within a few percent.
        let count = arrivals.len() as f64;
        assert!(
            (count - 5000.0).abs() < 250.0,
            "count {count} far from 5000"
        );
        // Resuming the process keeps times strictly increasing.
        let next = process.next_arrival(&mut rng);
        assert!(next >= 50.0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn exponential_rejects_bad_rate() {
        let _ = super::dist::Exp::new(0.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} far from 0.25");
    }
}
