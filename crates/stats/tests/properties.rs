//! Property-style tests for metrics, ROC/AUC and resampling.
//!
//! Originally written against `proptest`; the workspace is now fully
//! offline and dependency-free, so each property is exercised over a
//! deterministic sweep of seeded random cases instead of a shrinking
//! strategy. Seeds are fixed, so failures are exactly reproducible.

use gssl_stats::describe::{mean, median, quantile, std_dev};
use gssl_stats::metrics::{mae, mse, rmse, ConfusionMatrix};
use gssl_stats::roc::{auc, roc_curve, trapezoid_area};
use gssl_stats::split::{labeled_unlabeled_split, KFold};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const CASES: u64 = 48;

/// Runs `body` once per seeded case.
fn for_cases(mut body: impl FnMut(&mut StdRng)) {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57A7 + seed);
        body(&mut rng);
    }
}

/// Two aligned vectors with entries in [-5, 5].
fn paired(rng: &mut StdRng) -> (Vec<f64>, Vec<f64>) {
    let n = rng.gen_range(1..30usize);
    let draw =
        |rng: &mut StdRng| -> Vec<f64> { (0..n).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect() };
    (draw(rng), draw(rng))
}

/// Scores in [0, 1) with boolean labels containing both classes.
fn scored_labels(rng: &mut StdRng) -> (Vec<f64>, Vec<bool>) {
    let n = rng.gen_range(2..40usize);
    let scores: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let mut labels: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
    // Guarantee both classes are present.
    labels[0] = true;
    labels[n - 1] = false;
    (scores, labels)
}

#[test]
fn rmse_is_nonnegative_and_zero_iff_equal() {
    for_cases(|rng| {
        let (truth, est) = paired(rng);
        let r = rmse(&truth, &est).unwrap();
        assert!(r >= 0.0);
        let self_r = rmse(&truth, &truth).unwrap();
        assert_eq!(self_r, 0.0);
    });
}

#[test]
fn rmse_dominates_mae() {
    for_cases(|rng| {
        // Quadratic mean >= arithmetic mean of absolute errors.
        let (truth, est) = paired(rng);
        let r = rmse(&truth, &est).unwrap();
        let a = mae(&truth, &est).unwrap();
        assert!(r >= a - 1e-12);
    });
}

#[test]
fn mse_is_symmetric() {
    for_cases(|rng| {
        let (truth, est) = paired(rng);
        assert_eq!(mse(&truth, &est).unwrap(), mse(&est, &truth).unwrap());
    });
}

#[test]
fn auc_in_unit_interval_and_complement() {
    for_cases(|rng| {
        let (scores, labels) = scored_labels(rng);
        let a = auc(&scores, &labels).unwrap();
        assert!((0.0..=1.0).contains(&a));
        // Flipping labels complements the AUC.
        let flipped: Vec<bool> = labels.iter().map(|&y| !y).collect();
        let a_flipped = auc(&scores, &flipped).unwrap();
        assert!((a + a_flipped - 1.0).abs() < 1e-12);
        // Negating scores also complements.
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        let a_neg = auc(&negated, &labels).unwrap();
        assert!((a + a_neg - 1.0).abs() < 1e-12);
    });
}

#[test]
fn auc_equals_trapezoid_area() {
    for_cases(|rng| {
        let (scores, labels) = scored_labels(rng);
        let a = auc(&scores, &labels).unwrap();
        let curve = roc_curve(&scores, &labels).unwrap();
        assert!((a - trapezoid_area(&curve)).abs() < 1e-10);
    });
}

#[test]
fn roc_curve_is_monotone() {
    for_cases(|rng| {
        let (scores, labels) = scored_labels(rng);
        let curve = roc_curve(&scores, &labels).unwrap();
        for w in curve.windows(2) {
            assert!(w[1].false_positive_rate >= w[0].false_positive_rate - 1e-15);
            assert!(w[1].true_positive_rate >= w[0].true_positive_rate - 1e-15);
        }
    });
}

#[test]
fn confusion_matrix_conserves_counts() {
    for_cases(|rng| {
        let (scores, labels) = scored_labels(rng);
        let threshold = rng.gen::<f64>();
        let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold).unwrap();
        assert_eq!(cm.total(), scores.len());
        let positives = labels.iter().filter(|&&y| y).count();
        assert_eq!(cm.true_positives + cm.false_negatives, positives);
        assert_eq!(
            cm.false_positives + cm.true_negatives,
            scores.len() - positives
        );
        assert!((0.0..=1.0).contains(&cm.accuracy()));
    });
}

#[test]
fn kfold_covers_indices_exactly_once() {
    for_cases(|rng| {
        let k = rng.gen_range(2..5usize);
        let len = rng.gen_range(k.max(4)..60usize);
        let folds = KFold::new(k).unwrap().splits(len, rng).unwrap();
        let mut seen = HashSet::new();
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), len);
            for &i in &f.test {
                assert!(seen.insert(i));
            }
        }
        assert_eq!(seen.len(), len);
    });
}

#[test]
fn labeled_split_partitions() {
    for_cases(|rng| {
        let len = rng.gen_range(2..80usize);
        let n_labeled = 1 + len / 3;
        let s = labeled_unlabeled_split(len, n_labeled, rng).unwrap();
        assert_eq!(s.train.len(), n_labeled);
        let all: HashSet<usize> = s.train.iter().chain(&s.test).copied().collect();
        assert_eq!(all.len(), len);
    });
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    for_cases(|rng| {
        let n = rng.gen_range(1..50usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 20.0 - 10.0).collect();
        let q25 = quantile(&xs, 0.25).unwrap();
        let q50 = quantile(&xs, 0.5).unwrap();
        let q75 = quantile(&xs, 0.75).unwrap();
        assert!(q25 <= q50 && q50 <= q75);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo <= q25 && q75 <= hi);
        assert_eq!(median(&xs).unwrap(), q50);
    });
}

#[test]
fn mean_is_within_range() {
    for_cases(|rng| {
        let n = rng.gen_range(2..50usize);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 20.0 - 10.0).collect();
        let m = mean(&xs).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo - 1e-12 <= m && m <= hi + 1e-12);
        assert!(std_dev(&xs).unwrap() >= 0.0);
    });
}
