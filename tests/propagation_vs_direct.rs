//! Backend-agreement integration tests: all hard-criterion solvers (direct
//! Cholesky/LU, conjugate gradient, iterative propagation) coincide on
//! realistic graphs, including sparse kNN constructions.

use gssl::{HardCriterion, HardSolver, LabelPropagation, Problem, SweepKind};
use gssl_datasets::synthetic::two_moons;
use gssl_graph::{affinity::affinity_matrix, knn_graph, Kernel, Symmetrization};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn moons_problem(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = two_moons(120, 0.05, &mut rng).expect("generation");
    // Label the mid-arc point of each moon (indices 30 and 90): the
    // points farthest from the opposite moon.
    let ssl = ds.arrange(&[30, 90]).expect("one label per moon");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, 0.25).expect("affinity");
    Problem::new(w, ssl.labels.clone()).expect("valid problem")
}

#[test]
fn all_backends_agree_on_two_moons() {
    let problem = moons_problem(1);
    let reference = HardCriterion::new().fit(&problem).expect("cholesky");
    let others = [
        HardCriterion::new().solver(HardSolver::Lu),
        HardCriterion::new().solver(HardSolver::ConjugateGradient(Default::default())),
        HardCriterion::new().solver(HardSolver::Propagation(SweepKind::Simultaneous)),
        HardCriterion::new().solver(HardSolver::Propagation(SweepKind::InPlace)),
    ];
    for backend in others {
        let scores = backend.fit(&problem).expect("backend fits");
        let gap = reference
            .unlabeled()
            .iter()
            .zip(scores.unlabeled())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(gap < 1e-5, "{:?} diverges by {gap}", backend.solver_kind());
    }
}

#[test]
fn propagation_on_sparse_knn_graph_matches_dense_solver() {
    // Build the same graph sparsely (kNN) and densify for the direct
    // solver; the iterative path should reach the same harmonic solution.
    let mut rng = StdRng::seed_from_u64(2);
    let ds = two_moons(100, 0.05, &mut rng).expect("generation");
    let ssl = ds.arrange(&[0, 50]).expect("one label per moon");
    let sparse =
        knn_graph(&ssl.inputs, 8, Kernel::Gaussian, 0.4, Symmetrization::Union).expect("knn graph");
    let dense = sparse.to_dense();
    let problem = Problem::new(dense, ssl.labels.clone()).expect("valid problem");

    let direct = HardCriterion::new().fit(&problem).expect("direct");
    let (iterative, sweeps) = LabelPropagation::new()
        .tolerance(1e-11)
        .fit_with_iterations(&problem)
        .expect("propagation");
    assert!(sweeps > 1);
    let gap = direct
        .unlabeled()
        .iter()
        .zip(iterative.unlabeled())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(gap < 1e-7, "propagation diverges by {gap}");
}

#[test]
fn gauss_seidel_needs_no_more_sweeps_than_jacobi() {
    let problem = moons_problem(3);
    let (_, jacobi) = LabelPropagation::new()
        .fit_with_iterations(&problem)
        .expect("jacobi");
    let (_, gs) = LabelPropagation::new()
        .sweep(SweepKind::InPlace)
        .fit_with_iterations(&problem)
        .expect("gauss-seidel");
    assert!(gs <= jacobi, "GS took {gs} sweeps vs Jacobi's {jacobi}");
}

#[test]
fn two_moons_is_solved_with_one_label_per_moon() {
    let problem = moons_problem(4);
    let scores = HardCriterion::new().fit(&problem).expect("fit");
    // Reconstruct the ground truth through the same arrangement.
    let mut rng = StdRng::seed_from_u64(4);
    let ds = two_moons(120, 0.05, &mut rng).expect("generation");
    let ssl = ds.arrange(&[30, 90]).expect("arrangement");
    let truth = ssl.hidden_targets_binary();
    let accuracy = scores
        .unlabeled_predictions(0.5)
        .iter()
        .zip(&truth)
        .filter(|(p, t)| p == t)
        .count() as f64
        / truth.len() as f64;
    assert!(accuracy > 0.9, "two moons accuracy only {accuracy}");
}
