//! End-to-end checks of Proposition II.1 (soft → hard as λ → 0) and
//! Proposition II.2 (soft → labeled mean as λ → ∞) on realistic data.

use gssl::{HardCriterion, MeanPredictor, Problem, SoftCriterion};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model1_problem(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let h = paper_rate(n, PAPER_DIM).expect("rate");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    Problem::new(w, ssl.labels.clone()).expect("valid problem")
}

fn max_gap(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn soft_converges_to_hard_as_lambda_vanishes() {
    let problem = model1_problem(80, 25, 11);
    let hard = HardCriterion::new().fit(&problem).expect("hard fit");
    let mut previous = f64::INFINITY;
    for &lambda in &[1.0, 0.1, 0.01, 0.001, 0.0001] {
        let soft = SoftCriterion::new(lambda)
            .expect("valid lambda")
            .fit(&problem)
            .expect("soft fit");
        let gap = max_gap(soft.unlabeled(), hard.unlabeled());
        assert!(gap < previous, "gap failed to shrink at lambda {lambda}");
        previous = gap;
    }
    assert!(previous < 1e-3, "soft(1e-4) still {previous} from hard");
}

#[test]
fn soft_at_zero_is_exactly_hard() {
    let problem = model1_problem(60, 20, 5);
    let hard = HardCriterion::new().fit(&problem).expect("hard fit");
    let soft0 = SoftCriterion::new(0.0)
        .expect("valid lambda")
        .fit(&problem)
        .expect("soft fit");
    assert!(max_gap(soft0.all(), hard.all()) < 1e-9);
}

#[test]
fn soft_converges_to_labeled_mean_as_lambda_explodes() {
    let problem = model1_problem(50, 20, 23);
    let mean = MeanPredictor::new().fit(&problem).expect("mean fit");
    let mut previous = f64::INFINITY;
    for &lambda in &[1.0, 10.0, 100.0, 1000.0, 10_000.0] {
        let soft = SoftCriterion::new(lambda)
            .expect("valid lambda")
            .fit(&problem)
            .expect("soft fit");
        let gap = max_gap(soft.unlabeled(), mean.unlabeled());
        assert!(gap < previous, "gap failed to shrink at lambda {lambda}");
        previous = gap;
    }
    assert!(previous < 1e-2, "soft(1e4) still {previous} from the mean");
}

#[test]
fn block_form_matches_full_system_on_real_graph() {
    let problem = model1_problem(40, 15, 31);
    for &lambda in &[0.01, 0.1, 1.0, 5.0] {
        let soft = SoftCriterion::new(lambda).expect("valid lambda");
        let block = soft.fit(&problem).expect("block fit");
        let full = soft.fit_full_system(&problem).expect("full fit");
        assert!(
            max_gap(block.all(), full.all()) < 1e-8,
            "paths disagree at lambda {lambda}"
        );
    }
}

#[test]
fn rmse_ordering_matches_figure_1_at_moderate_n() {
    // Average over seeds so the ordering is stable: hard < soft(0.1) < soft(5).
    let reps = 12;
    let mut sums = [0.0f64; 3];
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let ds = paper_dataset(PaperModel::Linear, 130, &mut rng).expect("generation");
        let ssl = ds.arrange_prefix(100).expect("arrangement");
        let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");
        let h = paper_rate(100, PAPER_DIM).expect("rate");
        let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
        let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
        let hard = HardCriterion::new().fit(&problem).expect("hard");
        let soft_small = SoftCriterion::new(0.1)
            .unwrap()
            .fit(&problem)
            .expect("soft");
        let soft_large = SoftCriterion::new(5.0)
            .unwrap()
            .fit(&problem)
            .expect("soft");
        sums[0] += gssl_stats::metrics::rmse(truth, hard.unlabeled()).unwrap();
        sums[1] += gssl_stats::metrics::rmse(truth, soft_small.unlabeled()).unwrap();
        sums[2] += gssl_stats::metrics::rmse(truth, soft_large.unlabeled()).unwrap();
    }
    assert!(
        sums[0] < sums[1] && sums[1] < sums[2],
        "expected RMSE(hard) < RMSE(0.1) < RMSE(5), got {sums:?}"
    );
}
