//! Failure-injection tests: malformed inputs must surface as typed
//! errors at the public API boundary, never as panics or silent garbage.

use gssl::{Criterion, GsslModel, HardCriterion, Problem, SoftCriterion};
use gssl_graph::{Bandwidth, Kernel};
use gssl_linalg::Matrix;

fn line_points() -> Matrix {
    Matrix::from_rows(&[&[0.0], &[1.0], &[0.5]]).unwrap()
}

#[test]
fn nan_weights_are_rejected() {
    let mut w = Matrix::filled(3, 3, 0.5);
    w.set(0, 1, f64::NAN);
    w.set(1, 0, f64::NAN);
    // Plain builds report the generic constructor error; with
    // `strict-checks` the sanitizer pinpoints the element instead.
    assert!(matches!(
        Problem::new(w, vec![1.0]),
        Err(gssl::Error::InvalidProblem { .. } | gssl::Error::NonFiniteValue { .. })
    ));
}

#[test]
fn infinite_and_nan_labels_are_rejected() {
    let w = Matrix::filled(3, 3, 0.5);
    assert!(Problem::new(w.clone(), vec![f64::INFINITY]).is_err());
    assert!(Problem::new(w, vec![f64::NAN]).is_err());
}

#[test]
fn negative_weights_are_rejected() {
    let mut w = Matrix::filled(3, 3, 0.5);
    w.set(1, 2, -0.1);
    w.set(2, 1, -0.1);
    assert!(Problem::new(w, vec![1.0]).is_err());
}

#[test]
fn asymmetric_weights_are_rejected() {
    let mut w = Matrix::filled(3, 3, 0.5);
    w.set(0, 2, 0.9); // symmetric partner left at 0.5
    assert!(Problem::new(w, vec![1.0]).is_err());
}

#[test]
fn zero_bandwidth_fails_through_the_facade() {
    let mut builder = GsslModel::builder();
    builder.bandwidth(Bandwidth::Fixed(0.0));
    assert!(builder.fit(&line_points(), &[0.0, 1.0]).is_err());
    let mut builder = GsslModel::builder();
    builder.bandwidth(Bandwidth::Fixed(-1.0));
    assert!(builder.fit(&line_points(), &[0.0, 1.0]).is_err());
}

#[test]
fn degenerate_data_fails_median_heuristic_cleanly() {
    // All points identical: the median pairwise distance is 0 and the
    // rule must refuse rather than divide by zero.
    let points = Matrix::filled(4, 2, 0.7);
    let mut builder = GsslModel::builder();
    builder.bandwidth(Bandwidth::MedianHeuristic);
    let result = builder.fit(&points, &[0.0, 1.0]);
    assert!(result.is_err());
}

#[test]
fn unanchored_components_surface_by_name() {
    // A compact kernel strands the far point; the error identifies it.
    let points = Matrix::from_rows(&[&[0.0], &[0.5], &[100.0]]).unwrap();
    let mut builder = GsslModel::builder();
    builder
        .kernel(Kernel::Boxcar)
        .bandwidth(Bandwidth::Fixed(1.0))
        .criterion(Criterion::Hard);
    match builder.fit(&points, &[0.0, 1.0]) {
        Err(gssl::Error::UnanchoredUnlabeled { unlabeled_index }) => {
            assert_eq!(unlabeled_index, 0);
        }
        other => panic!("expected UnanchoredUnlabeled, got {other:?}"),
    }
}

#[test]
fn extreme_lambda_values_stay_finite() {
    let points = Matrix::from_rows(&[&[0.0], &[1.0], &[0.3], &[0.7]]).unwrap();
    let problem = Problem::from_points(&points, vec![0.0, 1.0], Kernel::Gaussian, 0.6).unwrap();
    for &lambda in &[1e-300, 1e-12, 1e6, 1e12] {
        let scores = SoftCriterion::new(lambda)
            .unwrap()
            .fit(&problem)
            .unwrap_or_else(|e| panic!("lambda {lambda} failed: {e}"));
        for &s in scores.all() {
            assert!(s.is_finite(), "lambda {lambda} produced {s}");
        }
    }
}

#[test]
fn huge_label_magnitudes_survive() {
    let points = Matrix::from_rows(&[&[0.0], &[1.0], &[0.5]]).unwrap();
    let problem = Problem::from_points(&points, vec![-1e9, 1e9], Kernel::Gaussian, 0.6).unwrap();
    let scores = HardCriterion::new().fit(&problem).unwrap();
    let s = scores.unlabeled()[0];
    assert!(s.is_finite());
    assert!((-1e9..=1e9).contains(&s), "maximum principle violated: {s}");
}

#[test]
fn empty_label_slice_is_rejected_everywhere() {
    let w = Matrix::filled(2, 2, 1.0);
    assert!(Problem::new(w, vec![]).is_err());
    let mut builder = GsslModel::builder();
    builder.bandwidth(Bandwidth::Fixed(1.0));
    assert!(builder.fit(&line_points(), &[]).is_err());
}

#[test]
fn errors_format_without_panicking() {
    // Every public error variant must Display.
    let errors: Vec<gssl::Error> = vec![
        gssl::Error::InvalidProblem {
            message: "test".into(),
        },
        gssl::Error::UnanchoredUnlabeled { unlabeled_index: 7 },
        gssl::Error::InvalidParameter {
            message: "test".into(),
        },
        gssl::Error::ZeroKernelMass { unlabeled_index: 2 },
        gssl::Error::Linalg(gssl_linalg::Error::Singular { pivot: 1 }),
        gssl::Error::Graph(gssl_graph::Error::InvalidBandwidth { value: -1.0 }),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty());
    }
}
