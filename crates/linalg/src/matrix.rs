//! Dense, row-major matrices of `f64`.

use crate::error::{Error, Result};
use crate::vector::{dot_slices, Vector};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// An owned, dense, row-major matrix of `f64`.
///
/// This is the workhorse type of the workspace: similarity matrices, graph
/// Laplacians and the closed-form solutions of both semi-supervised criteria
/// are all built from it.
///
/// ```
/// use gssl_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(a.get(1, 0), 3.0);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    /// shape: (rows, cols)
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// use gssl_linalg::Matrix;
    /// let i = Matrix::identity(2);
    /// assert_eq!(i.get(0, 0), 1.0);
    /// assert_eq!(i.get(0, 1), 0.0);
    /// ```
    /// shape: (n, n)
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix filled with `value`.
    /// shape: (rows, cols)
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLength`] when `data.len() != rows * cols`.
    /// shape: (rows, cols)
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::InvalidLength {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLength`] when rows have differing lengths.
    /// shape: (rows.len, cols)
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(Error::InvalidLength {
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f` at every `(row, col)` position.
    ///
    /// ```
    /// use gssl_linalg::Matrix;
    /// let hilbert = Matrix::from_fn(2, 2, |i, j| 1.0 / (i + j + 1) as f64);
    /// assert_eq!(hilbert.get(1, 1), 1.0 / 3.0);
    /// ```
    /// shape: (rows, cols)
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a square matrix with `diag` on the diagonal and zeros
    /// elsewhere.
    /// shape: (diag.len, diag.len)
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `j >= cols`.
    /// shape: (self.rows,)
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the row-major storage mutably (`rows * cols` elements,
    /// row `i` at `i * cols .. (i + 1) * cols`). This is the hook the
    /// execution layer uses to hand disjoint row blocks to workers via
    /// `split_at_mut` / `chunks_mut`.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    /// shape: (self.cols, self.rows)
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `self.cols() != rhs.rows()`.
    ///
    /// ```
    /// use gssl_linalg::Matrix;
    /// # fn main() -> Result<(), gssl_linalg::Error> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// let b = Matrix::identity(2);
    /// assert_eq!(a.matmul(&b)?, a);
    /// # Ok(())
    /// # }
    /// ```
    /// shape: (self.rows, rhs.cols)
    /// hot
    /// complexity: O(n * m * k)
    /// deterministic
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                operation: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            for (k, &a_ik) in lhs_row.iter().enumerate() {
                if crate::float::is_exactly_zero(a_ik) {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a_ik * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs`, row-blocked across `executor`.
    ///
    /// Each worker computes a contiguous block of whole output rows with
    /// exactly the i-k-j accumulation order of [`Matrix::matmul`], so the
    /// result is bit-identical to the sequential product for any worker
    /// count (each output row is owned by one worker; reassembly is by row
    /// position, not completion order).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `self.cols() != rhs.rows()`.
    /// shape: (self.rows, rhs.cols)
    /// hot
    /// complexity: O(n * m * k)
    /// deterministic
    pub fn matmul_with(&self, rhs: &Matrix, executor: &gssl_runtime::Executor) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                operation: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        if executor.is_sequential() || self.rows <= 1 || rhs.cols == 0 {
            return self.matmul(rhs);
        }
        let cols = rhs.cols;
        let block_rows = self
            .rows
            .div_ceil(executor.workers().saturating_mul(4))
            .max(1);
        let mut out = Matrix::zeros(self.rows, cols);
        executor.for_each_chunk_mut(out.as_mut_slice(), block_rows * cols, |start, chunk| {
            let first_row = start / cols;
            for (local, out_row) in chunk.chunks_mut(cols).enumerate() {
                let lhs_row = self.row(first_row + local);
                for (k, &a_ik) in lhs_row.iter().enumerate() {
                    if crate::float::is_exactly_zero(a_ik) {
                        continue;
                    }
                    for (o, r) in out_row.iter_mut().zip(rhs.row(k)) {
                        *o += a_ik * r;
                    }
                }
            }
        })?;
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `self.cols() != x.len()`.
    /// shape: (self.rows,)
    /// hot
    /// complexity: O(n * m)
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if self.cols != x.len() {
            return Err(Error::DimensionMismatch {
                operation: "matvec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            out.push(dot_slices(self.row(i), x.as_slice()));
        }
        Ok(Vector::from(out))
    }

    /// Sum of each row, as a vector of length `rows`.
    /// shape: (self.rows,)
    pub fn row_sums(&self) -> Vector {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Sum of each column, as a vector of length `cols`.
    /// shape: (self.cols,)
    pub fn col_sums(&self) -> Vector {
        let mut sums = Vector::zeros(self.cols);
        for i in 0..self.rows {
            for (s, v) in sums.as_mut_slice().iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// The main diagonal as a vector (length `min(rows, cols)`).
    /// shape: (n,)
    pub fn diag(&self) -> Vector {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(Error::NotSquare {
                shape: self.shape(),
            });
        }
        Ok(self.diag().sum())
    }

    /// Returns `true` when `|a_ij - a_ji| <= tol` for every pair.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        dot_slices(&self.data, &self.data).sqrt()
    }

    /// Largest absolute entry (the `‖·‖_max` norm used in the paper's proof);
    /// 0 for an empty matrix.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, x| acc.max(x.abs()))
    }

    /// Copies the rectangular block with rows `r0..r1` and columns `c0..c1`.
    ///
    /// # Panics
    ///
    /// Panics when the ranges are not `r0 <= r1 <= rows` / `c0 <= c1 <= cols`.
    /// shape: (nr, nc)
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column range out of bounds");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Stacks `self` above `bottom`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when column counts differ.
    /// shape: (rows, self.cols)
    pub fn vstack(&self, bottom: &Matrix) -> Result<Matrix> {
        if self.cols != bottom.cols {
            return Err(Error::DimensionMismatch {
                operation: "vstack",
                left: self.shape(),
                right: bottom.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&bottom.data);
        Ok(Matrix {
            rows: self.rows + bottom.rows,
            cols: self.cols,
            data,
        })
    }

    /// Places `self` to the left of `right`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when row counts differ.
    /// shape: (self.rows, cols)
    pub fn hstack(&self, right: &Matrix) -> Result<Matrix> {
        if self.rows != right.rows {
            return Err(Error::DimensionMismatch {
                operation: "hstack",
                left: self.shape(),
                right: right.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + right.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(right.row(i));
        }
        Ok(out)
    }

    /// Returns a new matrix with `f` applied to every element.
    /// shape: (self.rows, self.cols)
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when shapes differ.
    /// shape: (self.rows, self.cols)
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(Error::DimensionMismatch {
                operation: "hadamard",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Returns `true` when every pairwise difference is at most `tol`.
    /// Matrices of different shapes are never close.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

macro_rules! matrix_elementwise {
    ($trait:ident, $method:ident, $op:tt, $name:expr) => {
        impl $trait for &Matrix {
            type Output = Matrix;

            fn $method(self, rhs: &Matrix) -> Matrix {
                assert_eq!(
                    self.shape(),
                    rhs.shape(),
                    concat!("shape mismatch in matrix ", $name)
                );
                Matrix {
                    rows: self.rows,
                    cols: self.cols,
                    data: self
                        .data
                        .iter()
                        .zip(&rhs.data)
                        .map(|(a, b)| a $op b)
                        .collect(),
                }
            }
        }

        impl $trait for Matrix {
            type Output = Matrix;

            fn $method(self, rhs: Matrix) -> Matrix {
                (&self).$method(&rhs)
            }
        }
    };
}

matrix_elementwise!(Add, add, +, "addition");
matrix_elementwise!(Sub, sub, -, "subtraction");

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, alpha: f64) -> Matrix {
        self.map(|x| x * alpha)
    }
}

impl Mul<f64> for Matrix {
    type Output = Matrix;

    fn mul(mut self, alpha: f64) -> Matrix {
        self.scale(alpha);
        self
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matmul_with_is_bit_identical_to_sequential() {
        let a = Matrix::from_fn(37, 23, |i, j| ((i * 31 + j * 7) as f64 * 0.37).sin());
        let b = Matrix::from_fn(23, 29, |i, j| ((i * 13 + j * 17) as f64 * 0.73).cos());
        let reference = a.matmul(&b).unwrap();
        for workers in [1, 2, 3, 4] {
            let executor = gssl_runtime::Executor::with_workers(workers);
            let parallel = a.matmul_with(&b, &executor).unwrap();
            assert_eq!(parallel, reference, "workers = {workers}");
        }
    }

    #[test]
    fn matmul_with_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let executor = gssl_runtime::Executor::with_workers(2);
        assert!(matches!(
            a.matmul_with(&b, &executor),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn constructors_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert!(Matrix::identity(3).is_square());
        assert_eq!(Matrix::filled(2, 2, 9.0).get(1, 1), 9.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidLength {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn from_diag_places_diagonal() {
        let m = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matmul(&Matrix::identity(2)).unwrap(), a);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(matches!(
            a.matmul(&a),
            Err(Error::DimensionMismatch {
                operation: "matmul",
                ..
            })
        ));
    }

    #[test]
    fn matvec_known_product() {
        let m = sample();
        let x = Vector::from(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&x).unwrap().as_slice(), &[-2.0, -2.0]);
        assert!(m.matvec(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn sums_diag_trace() {
        let m = sample();
        assert_eq!(m.row_sums().as_slice(), &[6.0, 15.0]);
        assert_eq!(m.col_sums().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(m.diag().as_slice(), &[1.0, 5.0]);
        assert!(m.trace().is_err());
        assert_eq!(Matrix::identity(4).trace().unwrap(), 4.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(f64::INFINITY));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert_eq!(m.norm_frobenius(), 5.0);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = sample();
        let b = m.submatrix(0, 2, 1, 3);
        assert_eq!(b, Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]).unwrap());
        let empty = m.submatrix(1, 1, 0, 3);
        assert_eq!(empty.shape(), (0, 3));
    }

    #[test]
    fn stacking() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(1, 2);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.get(2, 0), 0.0);
        let h = a.hstack(&Matrix::zeros(2, 1)).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn swap_rows_in_place() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!((&a + &b).get(0, 0), 2.0);
        assert_eq!((&b - &a).get(0, 0), 0.0);
        assert_eq!((&a * 3.0).get(1, 1), 3.0);
        assert_eq!(a.hadamard(&b).unwrap(), a);
        assert!(a.hadamard(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn indexing_operators() {
        let mut m = sample();
        assert_eq!(m[(0, 2)], 3.0);
        m[(0, 2)] = 7.0;
        assert_eq!(m.get(0, 2), 7.0);
    }

    #[test]
    #[should_panic(expected = "matrix index out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(2, 0);
    }

    #[test]
    fn display_contains_shape() {
        assert!(sample().to_string().contains("[2x3]"));
    }
}
