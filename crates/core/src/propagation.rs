//! Iterative label propagation (Zhu, Ghahramani & Lafferty, 2003).
//!
//! The harmonic fixed point of the hard criterion —
//! `f_{n+a} = Σ_j w_{n+a,j} f_j / d_{n+a}` — can be reached without any
//! matrix factorization by repeatedly averaging neighbours:
//!
//! ```text
//! f_U ← D₂₂⁻¹ (W₂₁ Y + W₂₂ f_U)
//! ```
//!
//! which is exactly Jacobi iteration on `(D₂₂ − W₂₂) f_U = W₂₁ Y`. This
//! backend scales to sparse graphs where direct solves are too expensive.

use crate::error::{Error, Result};
use crate::problem::{Problem, Scores};
use crate::traits::TransductiveModel;
use gssl_linalg::stationary::{gauss_seidel, jacobi, IterationOptions};
use gssl_linalg::CsrMatrix;

/// Which sweep order the propagation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SweepKind {
    /// Classic simultaneous update (Jacobi) — the textbook formulation.
    #[default]
    Simultaneous,
    /// In-place update (Gauss–Seidel) — usually converges in about half
    /// the sweeps.
    InPlace,
}

/// Iterative label propagation solver for the hard criterion.
///
/// ```
/// use gssl::{LabelPropagation, Problem, TransductiveModel};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.9, 0.0],
///     &[0.9, 1.0, 0.9],
///     &[0.0, 0.9, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?;
/// let scores = LabelPropagation::new().fit(&problem)?;
/// assert!(scores.unlabeled().iter().all(|&s| (0.0..=1.0).contains(&s)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabelPropagation {
    sweep: SweepKind,
    options: IterationOptions,
}

impl LabelPropagation {
    /// Creates a propagation solver with default options (simultaneous
    /// sweeps, `1e-10` tolerance, automatic iteration budget).
    pub fn new() -> Self {
        LabelPropagation::default()
    }

    /// Selects the sweep order.
    pub fn sweep(mut self, sweep: SweepKind) -> Self {
        self.sweep = sweep;
        self
    }

    /// Sets the maximum number of sweeps (0 = automatic).
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.options.max_iterations = max_iterations;
        self
    }

    /// Sets the convergence tolerance on the max-norm change per sweep.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.options.tolerance = tolerance;
        self
    }

    /// Runs the propagation, also returning the number of sweeps.
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when some unlabeled vertex cannot
    ///   be reached from the labeled set.
    /// * [`Error::Linalg`] wrapping `NotConverged` when the sweep budget
    ///   is exhausted.
    /// hot
    /// complexity: O(iters * nnz)
    pub fn fit_with_iterations(&self, problem: &Problem) -> Result<(Scores, usize)> {
        problem.require_anchored(0.0)?;
        if problem.n_unlabeled() == 0 {
            return Ok((Scores::from_parts(problem.labels(), &[]), 0));
        }
        if let Some(w) = problem.weights().as_sparse() {
            return self.fit_sparse(problem, w);
        }
        let system = problem.unlabeled_system()?;
        let rhs = problem.unlabeled_rhs()?;
        let outcome = match self.sweep {
            SweepKind::Simultaneous => jacobi(&system, &rhs, None, &self.options),
            SweepKind::InPlace => gauss_seidel(&system, &rhs, None, &self.options),
        }
        .map_err(Error::from)?;
        Ok((
            Scores::from_parts(problem.labels(), outcome.solution.as_slice()),
            outcome.iterations,
        ))
    }

    /// Matrix-free sweeps over the CSR structure: the `m × m` system is
    /// never assembled, each sweep walks the stored edges of the unlabeled
    /// rows directly.
    fn fit_sparse(&self, problem: &Problem, w: &CsrMatrix) -> Result<(Scores, usize)> {
        let n = problem.n_labeled();
        let m = problem.n_unlabeled();
        let degrees = problem.degrees();
        let rhs = problem.unlabeled_rhs()?;
        let budget = if self.options.max_iterations == 0 {
            (100 * m).clamp(1000, 100_000)
        } else {
            self.options.max_iterations
        };
        let mut f = vec![0.0; m];
        let mut next = vec![0.0; m];
        for sweep in 1..=budget {
            let mut change = 0.0f64;
            for a in 0..m {
                let i = n + a;
                let mut numerator = rhs[a];
                let mut diagonal = degrees[i];
                for (j, v) in w.row_iter(i) {
                    if j == i {
                        diagonal -= v;
                    } else if j >= n {
                        let current = match self.sweep {
                            SweepKind::Simultaneous => f[j - n],
                            // Gauss–Seidel reads already-updated scores.
                            SweepKind::InPlace => {
                                if j - n < a {
                                    next[j - n]
                                } else {
                                    f[j - n]
                                }
                            }
                        };
                        numerator += v * current;
                    }
                }
                if !(diagonal > 0.0) {
                    // Defensive: anchoring was checked above, but a zero
                    // diagonal would divide to infinity.
                    return Err(Error::UnanchoredUnlabeled { unlabeled_index: a });
                }
                let value = numerator / diagonal;
                change = change.max((value - f[a]).abs());
                next[a] = value;
            }
            std::mem::swap(&mut f, &mut next);
            if change <= self.options.tolerance {
                return Ok((Scores::from_parts(problem.labels(), &f), sweep));
            }
        }
        Err(Error::Linalg(gssl_linalg::Error::NotConverged {
            iterations: budget,
            residual: f64::NAN,
        }))
    }
}

impl TransductiveModel for LabelPropagation {
    fn fit(&self, problem: &Problem) -> Result<Scores> {
        Ok(self.fit_with_iterations(problem)?.0)
    }

    fn name(&self) -> String {
        match self.sweep {
            SweepKind::Simultaneous => "label-propagation (jacobi)".to_owned(),
            SweepKind::InPlace => "label-propagation (gauss-seidel)".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gssl_linalg::Matrix;

    fn chain_problem() -> Problem {
        let w = Matrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.0],
            &[0.5, 1.0, 0.5, 0.0],
            &[0.0, 0.5, 1.0, 0.5],
            &[0.0, 0.0, 0.5, 1.0],
        ])
        .unwrap();
        Problem::new(w, vec![0.0, 1.0]).unwrap()
    }

    #[test]
    fn propagation_reaches_harmonic_solution() {
        let p = chain_problem();
        let (scores, iterations) = LabelPropagation::new().fit_with_iterations(&p).unwrap();
        assert!(iterations > 0);
        // Harmonicity: each unlabeled score is the weighted average of its
        // neighbours.
        let f = scores.all();
        let w = p.weights();
        let d = p.degrees();
        for a in 2..4 {
            let avg: f64 = (0..4)
                .filter(|&j| j != a)
                .map(|j| w.get(a, j) * f[j])
                .sum::<f64>()
                / (d[a] - w.get(a, a));
            assert!((f[a] - avg).abs() < 1e-7, "vertex {a} not harmonic");
        }
    }

    #[test]
    fn jacobi_and_gauss_seidel_agree() {
        let p = chain_problem();
        let a = LabelPropagation::new().fit(&p).unwrap();
        let b = LabelPropagation::new()
            .sweep(SweepKind::InPlace)
            .fit(&p)
            .unwrap();
        for (x, y) in a.unlabeled().iter().zip(b.unlabeled()) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn labeled_scores_stay_clamped() {
        let p = chain_problem();
        let scores = LabelPropagation::new().fit(&p).unwrap();
        assert_eq!(scores.labeled(), &[0.0, 1.0]);
    }

    #[test]
    fn rejects_unanchored_problem() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let p = Problem::new(w, vec![1.0]).unwrap();
        assert!(matches!(
            LabelPropagation::new().fit(&p),
            Err(Error::UnanchoredUnlabeled { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let p = chain_problem();
        let result = LabelPropagation::new()
            .max_iterations(1)
            .tolerance(1e-15)
            .fit(&p);
        assert!(matches!(result, Err(Error::Linalg(_))));
    }

    #[test]
    fn fully_labeled_problem_short_circuits() {
        let w = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 1.0]]).unwrap();
        let p = Problem::new(w, vec![0.0, 1.0]).unwrap();
        let (scores, iterations) = LabelPropagation::new().fit_with_iterations(&p).unwrap();
        assert_eq!(iterations, 0);
        assert!(scores.unlabeled().is_empty());
    }

    #[test]
    fn sparse_representation_matches_dense() {
        let dense = chain_problem();
        let csr = gssl_linalg::CsrMatrix::from_dense(dense.dense_weights().unwrap(), 0.0);
        let sparse = Problem::new(csr, dense.labels().to_vec()).unwrap();
        for sweep in [SweepKind::Simultaneous, SweepKind::InPlace] {
            let a = LabelPropagation::new().sweep(sweep).fit(&dense).unwrap();
            let b = LabelPropagation::new().sweep(sweep).fit(&sparse).unwrap();
            for (x, y) in a.unlabeled().iter().zip(b.unlabeled()) {
                assert!((x - y).abs() < 1e-7, "{sweep:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(
            LabelPropagation::new().name(),
            LabelPropagation::new().sweep(SweepKind::InPlace).name()
        );
    }
}
