//! Engine configuration: criterion, kernel graph parameters, update
//! policy and thread-pool width.

use crate::error::{Error, Result};
use gssl_graph::Kernel;
use gssl_linalg::SolverPolicy;

/// Which of the paper's criteria the engine caches a factorization of.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ServeCriterion {
    /// The hard criterion (Eq. 5): the engine caches the Cholesky
    /// factorization and explicit inverse of the `m × m` unlabeled-block
    /// system `D₂₂ − W₂₂`. Labeled scores are clamped to the
    /// observations. Label arrival is an exact rank-1 deletion update.
    Hard,
    /// The soft criterion in its full-system form (Eq. 3): the engine
    /// caches the LU factorization and explicit inverse of the
    /// `(n+m) × (n+m)` system `V + λL`. Label arrival is a textbook
    /// Sherman–Morrison update (`V` gains `eᵢeᵢᵀ`, exactly rank 1).
    Soft {
        /// The tuning parameter `λ > 0` (the full system is singular at
        /// `λ = 0`; use [`ServeCriterion::Hard`] for that limit, per
        /// Proposition II.1).
        lambda: f64,
    },
}

/// How the engine factors its cached criterion system.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum EngineSolver {
    /// The legacy direct route: Cholesky for the hard system, LU for the
    /// soft full system, always with an explicit cached inverse so label
    /// arrivals stay exact rank-1 updates.
    #[default]
    Direct,
    /// Route every factorization through a [`SolverPolicy`], which picks
    /// dense Cholesky, dense LU, or Jacobi-preconditioned CG from the
    /// system's size and sparsity. When the policy selects the iterative
    /// backend no explicit inverse is formed — label arrivals re-solve
    /// the exactly-maintained cached system instead of updating an
    /// inverse, trading per-update cost for `O(nnz)` memory.
    Auto(SolverPolicy),
}

/// How `predict_batch` evaluates the out-of-sample extension (Eq. 6)
/// `f(x) = Σᵢ w(x, xᵢ) fᵢ / Σᵢ w(x, xᵢ)` for each query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum QueryPath {
    /// Evaluate the full kernel row: `O(n·d)` per query, exact for every
    /// kernel. The legacy (and default) path.
    #[default]
    Dense,
    /// Restrict the sums of Eq. 6 to the query's `k` nearest fitted
    /// nodes, found through a spatial index built once at fit time —
    /// `O(k)` kernel weights per query after a sublinear tree search.
    /// A truncation of the dense extension: exact when the kernel's
    /// support holds at most `k` nodes, an approximation otherwise.
    KNearest {
        /// Number of nearest fitted nodes kept per query (`k ≥ 1`;
        /// clamped to the fitted graph size).
        k: usize,
    },
    /// Restrict the sums of Eq. 6 to the fitted nodes within distance
    /// `bandwidth` of the query. For compactly supported kernels
    /// (everything except Gaussian) every omitted weight is *exactly*
    /// zero, so this path agrees with [`QueryPath::Dense`] up to
    /// floating-point summation order — while touching only the nodes
    /// inside the support ball. Rejected by [`EngineConfig::validate`]
    /// for the Gaussian kernel, whose support is the whole space.
    WithinSupport,
}

/// Configuration for [`crate::ServingEngine::fit`].
///
/// ```
/// use gssl_graph::Kernel;
/// use gssl_serve::{EngineConfig, ServeCriterion};
/// let config = EngineConfig::new(Kernel::Gaussian, 0.4)
///     .criterion(ServeCriterion::Hard)
///     .refactor_every(128)
///     .workers(4);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Kernel used for both the fitted graph and out-of-sample rows.
    pub kernel: Kernel,
    /// Bandwidth `h > 0` shared by fit and query paths.
    pub bandwidth: f64,
    /// Criterion whose factorization is cached.
    pub criterion: ServeCriterion,
    /// Periodic fallback: force a full refactorization after this many
    /// rank-1 updates (`0` disables the periodic trigger; the residual
    /// guard below still applies).
    pub refactor_every: usize,
    /// Residual guard: after each rank-1 update the engine checks
    /// `‖A f − b‖∞` of the cached system and refactors from scratch when
    /// it exceeds this tolerance.
    pub residual_tolerance: f64,
    /// Thread-pool width for `predict_batch` (`0` = host parallelism).
    pub workers: usize,
    /// Factorization backend selection for the cached system.
    pub solver: EngineSolver,
    /// How `predict_batch` evaluates Eq. 6: dense kernel rows, or
    /// index-backed neighbor sums.
    pub query_path: QueryPath,
}

impl EngineConfig {
    /// Creates a configuration with the given kernel graph parameters and
    /// default policy: hard criterion, refactor every 64 updates,
    /// residual tolerance `1e-8`, auto-sized pool.
    pub fn new(kernel: Kernel, bandwidth: f64) -> Self {
        EngineConfig {
            kernel,
            bandwidth,
            criterion: ServeCriterion::Hard,
            refactor_every: 64,
            residual_tolerance: 1e-8,
            workers: 0,
            solver: EngineSolver::Direct,
            query_path: QueryPath::Dense,
        }
    }

    /// Selects the cached criterion.
    pub fn criterion(mut self, criterion: ServeCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Sets the periodic refactor interval (`0` disables it).
    pub fn refactor_every(mut self, every: usize) -> Self {
        self.refactor_every = every;
        self
    }

    /// Sets the residual-guard tolerance.
    pub fn residual_tolerance(mut self, tolerance: f64) -> Self {
        self.residual_tolerance = tolerance;
        self
    }

    /// Sets the thread-pool width (`0` = host parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the factorization backend route.
    pub fn solver(mut self, solver: EngineSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the query evaluation path for Eq. 6.
    pub fn query_path(mut self, path: QueryPath) -> Self {
        self.query_path = path;
        self
    }

    /// Checks every parameter's domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the bandwidth, residual
    /// tolerance or soft-criterion `λ` is outside its valid domain.
    pub fn validate(&self) -> Result<()> {
        if !self.bandwidth.is_finite() || !(self.bandwidth > 0.0) {
            return Err(Error::InvalidConfig {
                message: format!(
                    "bandwidth must be finite and positive, got {}",
                    self.bandwidth
                ),
            });
        }
        if !self.residual_tolerance.is_finite() || !(self.residual_tolerance > 0.0) {
            return Err(Error::InvalidConfig {
                message: format!(
                    "residual tolerance must be finite and positive, got {}",
                    self.residual_tolerance
                ),
            });
        }
        if let ServeCriterion::Soft { lambda } = self.criterion {
            if !lambda.is_finite() || !(lambda > 0.0) {
                return Err(Error::InvalidConfig {
                    message: format!(
                        "soft-criterion lambda must be finite and positive, got {lambda} \
                         (use ServeCriterion::Hard for the lambda = 0 limit)"
                    ),
                });
            }
        }
        match self.query_path {
            QueryPath::KNearest { k } if k == 0 => {
                return Err(Error::InvalidConfig {
                    message: "QueryPath::KNearest requires k >= 1".to_owned(),
                });
            }
            QueryPath::WithinSupport if !self.kernel.is_compactly_supported() => {
                return Err(Error::InvalidConfig {
                    message: format!(
                        "QueryPath::WithinSupport requires a compactly supported kernel \
                         (support radius = bandwidth); {:?} has unbounded support — \
                         use QueryPath::Dense or QueryPath::KNearest instead",
                        self.kernel
                    ),
                });
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0).validate().is_ok());
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = EngineConfig::new(Kernel::Boxcar, 0.5)
            .criterion(ServeCriterion::Soft { lambda: 0.1 })
            .refactor_every(7)
            .residual_tolerance(1e-6)
            .workers(3);
        assert_eq!(c.kernel, Kernel::Boxcar);
        assert_eq!(c.bandwidth, 0.5);
        assert_eq!(c.criterion, ServeCriterion::Soft { lambda: 0.1 });
        assert_eq!(c.refactor_every, 7);
        assert_eq!(c.residual_tolerance, 1e-6);
        assert_eq!(c.workers, 3);
    }

    #[test]
    fn solver_route_defaults_direct_and_is_selectable() {
        let c = EngineConfig::new(Kernel::Gaussian, 1.0);
        assert_eq!(c.solver, EngineSolver::Direct);
        let auto = c.solver(EngineSolver::Auto(SolverPolicy::default()));
        assert_eq!(auto.solver, EngineSolver::Auto(SolverPolicy::default()));
        assert!(auto.validate().is_ok());
    }

    #[test]
    fn query_path_defaults_dense_and_validates() {
        let c = EngineConfig::new(Kernel::Epanechnikov, 0.5);
        assert_eq!(c.query_path, QueryPath::Dense);
        assert!(c
            .clone()
            .query_path(QueryPath::KNearest { k: 4 })
            .validate()
            .is_ok());
        assert!(c
            .clone()
            .query_path(QueryPath::WithinSupport)
            .validate()
            .is_ok());
        // k = 0 keeps no neighbors at all.
        assert!(matches!(
            c.query_path(QueryPath::KNearest { k: 0 }).validate(),
            Err(Error::InvalidConfig { .. })
        ));
        // Gaussian support is the whole space; the ball of radius
        // `bandwidth` would silently drop non-zero weights.
        assert!(matches!(
            EngineConfig::new(Kernel::Gaussian, 0.5)
                .query_path(QueryPath::WithinSupport)
                .validate(),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rejects_invalid_domains() {
        assert!(EngineConfig::new(Kernel::Gaussian, 0.0).validate().is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, f64::NAN)
            .validate()
            .is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0)
            .residual_tolerance(0.0)
            .validate()
            .is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0)
            .criterion(ServeCriterion::Soft { lambda: 0.0 })
            .validate()
            .is_err());
        assert!(EngineConfig::new(Kernel::Gaussian, 1.0)
            .criterion(ServeCriterion::Soft {
                lambda: f64::INFINITY
            })
            .validate()
            .is_err());
    }
}
