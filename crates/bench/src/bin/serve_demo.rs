//! Serving-engine demo: fit once on two-moons, answer 10 000
//! out-of-sample queries from the cached factorization, stream label
//! updates through rank-1 repairs, and cross-check against a direct
//! refit.
//!
//! ```text
//! cargo run --release -p gssl-bench --bin serve_demo
//! ```

use gssl_datasets::synthetic::two_moons;
use gssl_datasets::SemiSupervisedData;
use gssl_graph::Kernel;
use gssl_serve::{EngineConfig, QueryPoint, ServingEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 200;
const LABELED: usize = 40;
const QUERIES: usize = 10_000;
const STREAMED_LABELS: usize = 30;
const AGREEMENT_SAMPLE: usize = 500;

/// True target of arranged node `i` (labeled prefix or hidden remainder).
fn target_of(ssl: &SemiSupervisedData, i: usize) -> f64 {
    if i < ssl.n_labeled() {
        ssl.labels[i]
    } else {
        ssl.hidden_targets[i - ssl.n_labeled()]
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2019);
    let ds = two_moons(NODES, 0.1, &mut rng).expect("two_moons generation");
    // Stride the labeled set across the index range so both moons are
    // represented (the generator orders one moon before the other).
    let labeled: Vec<usize> = (0..LABELED).map(|i| i * (NODES / LABELED)).collect();
    let ssl = ds.arrange(&labeled).expect("arrange");

    println!("== gssl-serve demo: fit once, query many ==");
    println!(
        "two-moons: {NODES} nodes ({LABELED} labeled), hard criterion, Gaussian bandwidth 0.35\n"
    );

    let config = EngineConfig::new(Kernel::Gaussian, 0.35);
    let mut engine =
        ServingEngine::fit(&ssl.inputs, &ssl.labels, config.clone()).expect("engine fit");

    // 10k out-of-sample queries jittered around the data's bounding box.
    let queries: Vec<QueryPoint> = (0..QUERIES)
        .map(|_| QueryPoint::new(vec![rng.gen_range(-1.8..2.8), rng.gen_range(-1.3..1.8)]))
        .collect();
    let predictions = engine.predict_batch(&queries).expect("batch predict");
    let positive = predictions.iter().filter(|p| p.class == 1).count();

    let metrics = engine.metrics();
    let p50 = metrics.latency_quantile(0.5).expect("p50");
    let p99 = metrics.latency_quantile(0.99).expect("p99");
    println!("answered {} queries in one batch:", metrics.queries);
    println!("  p50 latency     = {:.1} µs", p50 * 1e6);
    println!("  p99 latency     = {:.1} µs", p99 * 1e6);
    println!("  throughput      = {:.0} queries/s", metrics.throughput());
    println!("  pool workers    = {}", engine.workers());
    println!("  class balance   = {positive}/{QUERIES} predicted positive");
    println!(
        "  factorizations  = {} (query path never refactors)",
        metrics.factorizations
    );
    assert_eq!(
        metrics.factorizations, 1,
        "query path must not refactor the cached system"
    );

    // Stream label updates: each is a rank-1 repair of the cached inverse.
    for node in LABELED..LABELED + STREAMED_LABELS {
        engine
            .observe_label(node, target_of(&ssl, node))
            .expect("streamed label");
    }
    let metrics = engine.metrics();
    println!(
        "\nstreamed {STREAMED_LABELS} labels: {} rank-1 updates, {} guarded refactors, residual {:.2e}",
        metrics.rank1_updates,
        metrics.guarded_refactors,
        engine.residual().expect("residual")
    );

    // Direct refit: fresh engine over the same (now larger) labeled set.
    // The streamed nodes sit right after the labeled prefix, so the
    // arranged layout is still labeled-first.
    let total_labeled = LABELED + STREAMED_LABELS;
    let all_labels: Vec<f64> = (0..total_labeled).map(|i| target_of(&ssl, i)).collect();
    let direct = ServingEngine::fit(&ssl.inputs, &all_labels, config).expect("direct refit");

    let sample: Vec<QueryPoint> = queries[..AGREEMENT_SAMPLE].to_vec();
    let streamed_out = engine.predict_batch(&sample).expect("streamed predict");
    let direct_out = direct.predict_batch(&sample).expect("direct predict");
    let max_gap = streamed_out
        .iter()
        .zip(&direct_out)
        .map(|(a, b)| (a.score - b.score).abs())
        .fold(0.0f64, f64::max);
    let class_agreement = streamed_out
        .iter()
        .zip(&direct_out)
        .filter(|(a, b)| a.class == b.class)
        .count();
    println!(
        "\nagreement with direct refit on {AGREEMENT_SAMPLE} queries: max |Δscore| = {max_gap:.2e}, {class_agreement}/{AGREEMENT_SAMPLE} identical classes"
    );
    assert!(
        max_gap < 1e-8,
        "streamed engine drifted from the direct refit: {max_gap:.2e}"
    );
    assert_eq!(class_agreement, AGREEMENT_SAMPLE);

    // Transductive accuracy sanity check on the held-out nodes.
    let node_queries: Vec<QueryPoint> = (total_labeled..NODES)
        .map(|i| QueryPoint::new(ssl.inputs.row(i).to_vec()))
        .collect();
    let node_out = engine.predict_batch(&node_queries).expect("node predict");
    let correct = node_out
        .iter()
        .enumerate()
        .filter(|(j, p)| p.class == usize::from(target_of(&ssl, total_labeled + j) >= 0.5))
        .count();
    println!(
        "held-out accuracy via the extension: {}/{} nodes",
        correct,
        NODES - total_labeled
    );

    let final_metrics = engine.metrics();
    println!(
        "\ntotals: {} queries, {} batches, {} factorizations, {} rank-1 updates",
        final_metrics.queries,
        final_metrics.batches,
        final_metrics.factorizations,
        final_metrics.rank1_updates
    );
    println!("serve demo verified ✓");
}
