//! The perf pass: `/// hot` markers, transitive hot-set propagation over
//! the call graph, and the two hot-path lints.
//!
//! A function is **hot** when it carries a `/// hot` doc marker or is
//! (transitively) called by one — hotness flows *forward* along call
//! edges, so annotating `matmul` covers every helper it reaches. Inside
//! hot, non-test functions two lints run:
//!
//! * **allocation-in-loop** — constructor calls (`Vec::new`, `vec![…]`,
//!   `String::new`, `Vec::with_capacity`), owning conversions
//!   (`.clone()`, `.to_vec()`, `.to_owned()`, `.to_string()`,
//!   `.collect()`), `format!`, and `.push(…)` on a local binding created
//!   without `with_capacity` — anywhere inside a loop body;
//! * **bounds-check in innermost loop** — raw `a[i]` indexing inside a
//!   loop that contains no further loop, where an iterator/zip or a
//!   hoisted re-slice (`&row[..len]`, which is exempt) would let the
//!   optimizer elide the per-element bounds check.
//!
//! Findings ratchet through `crates/xtask/analyze.baseline` exactly like
//! the panic pass, so justified sites carry a written reason.

use crate::callgraph::CallGraph;
use crate::items::FnInfo;
use crate::lexer::{Tok, TokKind};
use crate::scanner::SourceFile;
use std::collections::{HashMap, VecDeque};

/// Owning conversion methods flagged inside hot loops.
const OWNING_METHODS: [&str; 5] = ["clone", "to_vec", "to_owned", "to_string", "collect"];

/// Whether the function carries an explicit `/// hot` marker.
#[must_use]
pub fn is_hot_marked(f: &FnInfo) -> bool {
    f.doc.iter().any(|d| d.trim() == "hot")
}

/// Computes the transitive hot set over the call graph: one flag per
/// node, `true` when the function is `/// hot` or reachable from one via
/// forward call edges. Test functions neither seed nor join the set.
#[must_use]
pub fn hot_set(graph: &CallGraph) -> Vec<bool> {
    let n = graph.fns.len();
    // Forward (callee) adjacency, inverted from the stored caller edges.
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (callee, callers) in graph.callers.iter().enumerate() {
        for &caller in callers {
            callees[caller].push(callee);
        }
    }
    let mut hot = vec![false; n];
    let mut queue = VecDeque::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !f.in_test && is_hot_marked(f) {
            hot[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &callees[i] {
            if !hot[j] && !graph.fns[j].in_test {
                hot[j] = true;
                queue.push_back(j);
            }
        }
    }
    hot
}

/// Which hot-path lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfKind {
    /// Allocation (or owning conversion) inside a loop.
    Alloc,
    /// Raw indexing inside an innermost loop.
    Bounds,
}

/// One hot-path lint finding.
#[derive(Debug, Clone)]
pub struct PerfSite {
    /// Which lint fired.
    pub kind: PerfKind,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// One open brace frame during the body walk.
struct Frame {
    /// Whether this brace opened a loop body.
    is_loop: bool,
    /// Whether a further loop opened inside this frame (loops only).
    has_nested: bool,
    /// Index sites collected while this loop was innermost.
    index_sites: Vec<(usize, String)>,
}

/// Runs both hot-path lints over one function body.
#[must_use]
pub fn lint_hot_fn(source: &SourceFile, f: &FnInfo) -> Vec<PerfSite> {
    let toks: Vec<&Tok> = source
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();
    let end = f.body.end.min(toks.len());
    let capacity_ok = scan_bindings(&toks, f.body.start, end);

    let mut out = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut pending_loop = false;
    let mut k = f.body.start;
    while k < end {
        let t = toks[k];
        let prev = (k > f.body.start).then(|| toks[k - 1]);
        let next = toks.get(k + 1).copied();
        let in_loop = frames.iter().any(|fr| fr.is_loop);

        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "for" | "while" | "loop") {
            pending_loop = true;
            k += 1;
            continue;
        }
        if t.is_punct('{') {
            let is_loop = std::mem::take(&mut pending_loop);
            if is_loop {
                for fr in &mut frames {
                    if fr.is_loop {
                        fr.has_nested = true;
                    }
                }
            }
            frames.push(Frame {
                is_loop,
                has_nested: false,
                index_sites: Vec::new(),
            });
            k += 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(fr) = frames.pop() {
                flush_frame(fr, &mut out);
            }
            k += 1;
            continue;
        }

        if t.kind == TokKind::Ident && in_loop {
            // `Vec::new` / `Vec::with_capacity` / `String::new`.
            if matches!(t.text.as_str(), "Vec" | "String")
                && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(k + 2).is_some_and(|n| n.is_punct(':'))
            {
                if let Some(method) = toks.get(k + 3) {
                    if method.is_ident("new") || method.is_ident("with_capacity") {
                        out.push(PerfSite {
                            kind: PerfKind::Alloc,
                            line: t.line,
                            message: format!(
                                "`{}::{}` allocates on every loop iteration; hoist the buffer out of the loop",
                                t.text, method.text
                            ),
                        });
                        k += 4;
                        continue;
                    }
                }
            }
            // `vec![…]` / `format!(…)`.
            if (t.is_ident("vec") || t.is_ident("format")) && next.is_some_and(|n| n.is_punct('!'))
            {
                out.push(PerfSite {
                    kind: PerfKind::Alloc,
                    line: t.line,
                    message: format!(
                        "`{}!` allocates on every loop iteration; hoist or reuse a scratch buffer",
                        t.text
                    ),
                });
                k += 2;
                continue;
            }
            // `.clone()` / `.to_vec()` / `.to_owned()` / `.to_string()` /
            // `.collect()` — owning conversions on the hot path.
            if OWNING_METHODS.contains(&t.text.as_str()) && prev.is_some_and(|p| p.is_punct('.')) {
                out.push(PerfSite {
                    kind: PerfKind::Alloc,
                    line: t.line,
                    message: format!(
                        "`.{}()` copies per loop iteration; borrow a slice or reuse a buffer",
                        t.text
                    ),
                });
                k += 1;
                continue;
            }
            // `recv.push(…)` where `recv` was bound without capacity.
            if t.is_ident("push")
                && prev.is_some_and(|p| p.is_punct('.'))
                && next.is_some_and(|n| n.is_punct('('))
            {
                let recv = (k >= f.body.start + 2)
                    .then(|| toks[k - 2])
                    .filter(|r| r.kind == TokKind::Ident);
                if let Some(recv) = recv {
                    if capacity_ok.get(recv.text.as_str()) == Some(&false) {
                        out.push(PerfSite {
                            kind: PerfKind::Alloc,
                            line: t.line,
                            message: format!(
                                "`{}.push` grows a buffer created without `with_capacity`; reserve up front",
                                recv.text
                            ),
                        });
                    }
                }
                k += 1;
                continue;
            }
        }

        // Raw indexing: `[` after an expression terminator, bracket group
        // naming at least one identifier and no `..` re-slice.
        if t.is_punct('[')
            && in_loop
            && prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !p.is_ident("mut"))
                    || p.is_punct(')')
                    || p.is_punct(']')
            })
        {
            let recv = prev
                .filter(|p| p.kind == TokKind::Ident)
                .map_or_else(|| "expr".to_owned(), |p| p.text.clone());
            if let Some(site) = index_site(&toks, k, end, t.line, &recv) {
                // Attach to the nearest enclosing loop frame; emitted only
                // if that loop turns out to be innermost.
                if let Some(fr) = frames.iter_mut().rev().find(|fr| fr.is_loop) {
                    fr.index_sites.push(site);
                }
            }
        }
        k += 1;
    }
    while let Some(fr) = frames.pop() {
        flush_frame(fr, &mut out);
    }
    out
}

/// Emits a popped loop frame's index sites when it was innermost.
fn flush_frame(fr: Frame, out: &mut Vec<PerfSite>) {
    if fr.is_loop && !fr.has_nested {
        for (line, recv) in fr.index_sites {
            out.push(PerfSite {
                kind: PerfKind::Bounds,
                line,
                message: format!(
                    "`{recv}[…]` indexing in a hot innermost loop; iterate or hoist a re-slice so bounds checks can be elided"
                ),
            });
        }
    }
}

/// Inspects one bracket group: returns the site when it names at least
/// one identifier (constant indices are fine) and is not a `..` re-slice
/// (re-slicing is the approved hoisting pattern).
fn index_site(
    toks: &[&Tok],
    at: usize,
    end: usize,
    line: usize,
    recv: &str,
) -> Option<(usize, String)> {
    let mut depth = 0i32;
    let mut has_ident = false;
    let mut k = at;
    while k < end {
        let t = toks[k];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct('.') && toks.get(k + 1).is_some_and(|n| n.is_punct('.')) {
            return None;
        } else if t.kind == TokKind::Ident {
            has_ident = true;
        }
        k += 1;
    }
    has_ident.then(|| (line, recv.to_owned()))
}

/// Prescans the body for `let [mut] name = …;` bindings of growable
/// containers: `true` when the initializer reserves with `with_capacity`,
/// `false` for bare `Vec::new()` / `vec![…]` / `String::new()` inits.
/// Bindings of anything else (and unknown receivers like fields or
/// parameters) are absent, and `.push` on them is not judged.
fn scan_bindings<'a>(toks: &[&'a Tok], start: usize, end: usize) -> HashMap<&'a str, bool> {
    let mut map = HashMap::new();
    let mut k = start;
    while k < end {
        if toks[k].is_ident("let") {
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = toks.get(j).filter(|t| t.kind == TokKind::Ident);
            if let Some(name) = name {
                if toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    let mut grows = false;
                    let mut reserved = false;
                    let mut e = j + 2;
                    while e < end && !toks[e].is_punct(';') {
                        let t = toks[e];
                        if t.is_ident("with_capacity") {
                            reserved = true;
                            grows = true;
                        } else if t.is_ident("Vec") || t.is_ident("vec") || t.is_ident("String") {
                            grows = true;
                        }
                        e += 1;
                    }
                    if grows {
                        map.insert(name.text.as_str(), reserved);
                    }
                    k = e;
                    continue;
                }
            }
        }
        k += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::items::extract;
    use crate::scanner::analyze;

    fn lint(src: &str) -> Vec<PerfSite> {
        let source = analyze(src);
        let fns = extract("t.rs", &source);
        lint_hot_fn(&source, &fns[0])
    }

    fn kinds(src: &str) -> Vec<PerfKind> {
        lint(src).into_iter().map(|s| s.kind).collect()
    }

    #[test]
    fn hotness_propagates_through_calls() {
        let src = "/// hot\npub fn entry(v: &[f64]) -> f64 { inner(v) }\n\
                   fn inner(v: &[f64]) -> f64 { leaf(v) }\n\
                   fn leaf(v: &[f64]) -> f64 { v.len() as f64 }\n\
                   fn cold() {}";
        let graph = build(extract("t.rs", &analyze(src)));
        let hot = hot_set(&graph);
        let by_name = |name: &str| {
            graph
                .fns
                .iter()
                .position(|f| f.name == name)
                .expect("fn present")
        };
        assert!(hot[by_name("entry")]);
        assert!(hot[by_name("inner")]);
        assert!(hot[by_name("leaf")]);
        assert!(!hot[by_name("cold")]);
    }

    #[test]
    fn test_fns_do_not_seed_or_join_the_hot_set() {
        let src = "#[cfg(test)]\nmod tests {\n/// hot\nfn t() { shared(); }\n}\n\
                   fn shared() {}";
        let graph = build(extract("t.rs", &analyze(src)));
        let hot = hot_set(&graph);
        assert!(hot.iter().all(|&h| !h));
    }

    #[test]
    fn constructors_in_loop_are_flagged() {
        let src = "fn f(n: usize) { for i in 0..n { let v = Vec::new(); use_it(v, i); } }";
        assert_eq!(kinds(src), vec![PerfKind::Alloc]);
        let src = "fn f(n: usize) { for i in 0..n { let v = vec![0.0; 4]; use_it(v, i); } }";
        assert_eq!(kinds(src), vec![PerfKind::Alloc]);
        let src = "fn f(n: usize) { for i in 0..n { log(format!(\"{i}\")); } }";
        assert_eq!(kinds(src), vec![PerfKind::Alloc]);
    }

    #[test]
    fn allocation_outside_loop_is_fine() {
        let src = "fn f(n: usize) { let mut v = Vec::new(); for i in 0..n { v.len(); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn owning_conversions_in_loop_are_flagged() {
        let src = "fn f(rows: &[Vec<f64>]) { for r in rows.iter() { use_it(r.clone()); } }";
        assert_eq!(kinds(src), vec![PerfKind::Alloc]);
        let src = "fn f(rows: &[Vec<f64>]) { for r in rows.iter() { use_it(r.to_vec()); } }";
        assert_eq!(kinds(src), vec![PerfKind::Alloc]);
    }

    #[test]
    fn push_without_capacity_is_flagged_with_capacity_is_not() {
        let src = "fn f(v: &[f64]) { let mut out = Vec::new(); \
                   for &x in v.iter() { out.push(x); } }";
        assert_eq!(kinds(src), vec![PerfKind::Alloc]);
        let src = "fn f(v: &[f64]) { let mut out = Vec::with_capacity(v.len()); \
                   for &x in v.iter() { out.push(x); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn push_on_unknown_receiver_is_not_judged() {
        let src = "fn f(out: &mut Vec<f64>, v: &[f64]) { for &x in v.iter() { out.push(x); } }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn indexing_in_innermost_loop_is_flagged() {
        let src = "fn f(v: &[f64], n: usize) -> f64 { let mut s = 0.0; \
                   for i in 0..n { s += v[i]; } s }";
        assert_eq!(kinds(src), vec![PerfKind::Bounds]);
    }

    #[test]
    fn indexing_in_outer_loop_is_not_innermost() {
        let src = "fn f(v: &[f64], n: usize) -> f64 { let mut s = 0.0; \
                   for i in 0..n { s += v[i]; for j in 0..n { s += g(j); } } s }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn constant_index_and_reslice_are_exempt() {
        let src = "fn f(v: &[f64], n: usize) -> f64 { let mut s = 0.0; \
                   for _i in 0..n { s += v[0]; } s }";
        assert!(lint(src).is_empty());
        let src = "fn f(v: &[f64], n: usize) -> f64 { let mut s = 0.0; \
                   for i in 0..n { s += dot(&v[..i]); } s }";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn indexing_under_an_if_attaches_to_the_loop() {
        let src = "fn f(v: &[f64], n: usize) -> f64 { let mut s = 0.0; \
                   for i in 0..n { if s > 0.0 { s += v[i]; } } s }";
        assert_eq!(kinds(src), vec![PerfKind::Bounds]);
    }

    #[test]
    fn nothing_fires_outside_loops() {
        let src = "fn f(v: &[f64]) -> f64 { let c = v.to_vec(); c[0] }";
        assert!(lint(src).is_empty());
    }
}
