//! Integration tests of the multiclass (one-vs-rest) wrapper and
//! class-mass normalization on generated datasets.

use gssl::cmn::{class_mass_normalize, labeled_prior};
use gssl::{HardCriterion, OneVsRest, Problem};
use gssl_datasets::coil::SyntheticCoil;
use gssl_datasets::synthetic::gaussian_blobs;
use gssl_graph::{affinity::affinity_matrix, bandwidth::median_heuristic, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn one_vs_rest_solves_gaussian_blobs() {
    let mut rng = StdRng::seed_from_u64(17);
    let centers = vec![vec![0.0, 0.0], vec![6.0, 0.0], vec![3.0, 6.0]];
    let ds = gaussian_blobs(20, &centers, 0.6, &mut rng).expect("generation");
    // Label the first 4 samples of each blob (indices 0..4, 20..24, 40..44).
    let labeled: Vec<usize> = (0..3)
        .flat_map(|c| (0..4).map(move |i| c * 20 + i))
        .collect();
    let ssl = ds.arrange(&labeled).expect("arrangement");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, 1.5).expect("affinity");
    let class_labels: Vec<usize> = ssl.labels.iter().map(|&y| y as usize).collect();

    let ovr = OneVsRest::new(HardCriterion::new(), 3).expect("3 classes");
    let scores = ovr.fit(&w, &class_labels).expect("fit");
    let predictions = scores.unlabeled_predictions();
    let truth: Vec<usize> = ssl.hidden_targets.iter().map(|&y| y as usize).collect();
    let correct = predictions
        .iter()
        .zip(&truth)
        .filter(|(p, t)| p == t)
        .count();
    let accuracy = correct as f64 / truth.len() as f64;
    assert!(
        accuracy > 0.95,
        "well-separated blobs should be nearly solved, accuracy {accuracy}"
    );
}

#[test]
fn one_vs_rest_on_six_class_coil() {
    let mut rng = StdRng::seed_from_u64(35);
    let coil = SyntheticCoil::builder()
        .images_per_class(12)
        .build(&mut rng)
        .expect("rendering succeeds");
    let dataset = coil.dataset();
    let sigma = median_heuristic(dataset.inputs()).expect("bandwidth");
    // Label the first 6 images of each class by walking class_labels.
    let mut labeled = Vec::new();
    let mut counts = [0usize; 6];
    for (i, &c) in coil.class_labels().iter().enumerate() {
        if counts[c] < 6 {
            counts[c] += 1;
            labeled.push(i);
        }
    }
    // Build an arranged six-way problem by hand: reorder weights/labels.
    let ssl = dataset.arrange(&labeled).expect("arrangement");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, sigma).expect("affinity");
    let class_labels: Vec<usize> = labeled.iter().map(|&i| coil.class_labels()[i]).collect();
    let ovr = OneVsRest::new(HardCriterion::new(), 6).expect("6 classes");
    let scores = ovr.fit(&w, &class_labels).expect("fit");
    // Truth for unlabeled rows via the arrangement order.
    let truth: Vec<usize> = ssl.original_order[labeled.len()..]
        .iter()
        .map(|&i| coil.class_labels()[i])
        .collect();
    let predictions = scores.unlabeled_predictions();
    let correct = predictions
        .iter()
        .zip(&truth)
        .filter(|(p, t)| p == t)
        .count();
    let accuracy = correct as f64 / truth.len() as f64;
    assert!(
        accuracy > 1.5 / 6.0,
        "six-way accuracy should clearly beat chance (1/6), got {accuracy}"
    );
}

#[test]
fn cmn_improves_decisions_under_label_imbalance() {
    // A skewed labeled set biases harmonic scores; CMN with the true
    // prior recovers decisions on a symmetric two-cluster geometry.
    let mut rng = StdRng::seed_from_u64(33);
    let centers = vec![vec![0.0, 0.0], vec![4.0, 0.0]];
    let ds = gaussian_blobs(25, &centers, 0.7, &mut rng).expect("generation");
    // Label 8 from class 0 but only 2 from class 1.
    let labeled: Vec<usize> = (0..8).chain(25..27).collect();
    let ssl = ds.arrange(&labeled).expect("arrangement");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, 1.2).expect("affinity");
    let problem = Problem::new(w, ssl.labels.clone()).expect("valid problem");
    let scores = HardCriterion::new().fit(&problem).expect("fit");
    let truth = ssl.hidden_targets_binary();

    let raw_accuracy = scores
        .unlabeled_predictions(0.5)
        .iter()
        .zip(&truth)
        .filter(|(p, t)| p == t)
        .count() as f64
        / truth.len() as f64;

    // The data are actually balanced (25/25); normalize toward 0.5.
    let normalized = class_mass_normalize(scores.unlabeled(), 0.5).expect("normalize");
    let cmn_accuracy = normalized
        .iter()
        .map(|&s| s >= 0.5)
        .zip(&truth)
        .filter(|(p, t)| p == *t)
        .count() as f64
        / truth.len() as f64;

    assert!(
        cmn_accuracy >= raw_accuracy,
        "CMN should not hurt: raw {raw_accuracy}, cmn {cmn_accuracy}"
    );
    assert!(cmn_accuracy > 0.9, "balanced clusters should be solved");
}

#[test]
fn labeled_prior_matches_construction() {
    let labels = [1.0, 0.0, 1.0, 1.0];
    assert!((labeled_prior(&labels).unwrap() - 0.75).abs() < 1e-12);
}
