//! Timings of the linear-algebra substrate: factorizations, solves and
//! products at the sizes the criteria actually use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gssl_linalg::{conjugate_gradient, CgOptions, Cholesky, CsrMatrix, Lu, Matrix, Vector};

/// A well-conditioned SPD matrix shaped like a hard-criterion system.
fn spd_system(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0 + (n as f64) * 0.01
        } else {
            let d = i.abs_diff(j) as f64;
            (-d * d / (n as f64)).exp() * 0.5
        }
    })
}

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        let a = spd_system(n);
        group.bench_with_input(BenchmarkId::new("lu", n), &a, |b, a| {
            b.iter(|| Lu::factor(a).expect("nonsingular"));
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &a, |b, a| {
            b.iter(|| Cholesky::factor(a).expect("spd"));
        });
    }
    group.finish();
}

fn bench_solves(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_200");
    group.sample_size(10);
    let n = 200;
    let a = spd_system(n);
    let rhs = Vector::from_fn(n, |i| (i as f64 * 0.37).sin());
    let lu = Lu::factor(&a).expect("nonsingular");
    let chol = Cholesky::factor(&a).expect("spd");
    group.bench_function("lu_backsolve", |b| {
        b.iter(|| lu.solve(&rhs).expect("solve"));
    });
    group.bench_function("cholesky_backsolve", |b| {
        b.iter(|| chol.solve(&rhs).expect("solve"));
    });
    group.bench_function("conjugate_gradient", |b| {
        b.iter(|| conjugate_gradient(&a, &rhs, &CgOptions::default()).expect("cg"));
    });
    group.finish();
}

fn bench_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("products");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let a = spd_system(n);
        let x = Vector::from_fn(n, |i| i as f64);
        group.bench_with_input(BenchmarkId::new("matmul", n), &a, |b, a| {
            b.iter(|| a.matmul(a).expect("conformal"));
        });
        group.bench_with_input(BenchmarkId::new("matvec", n), &a, |b, a| {
            b.iter(|| a.matvec(&x).expect("conformal"));
        });
        let sparse = CsrMatrix::from_dense(&a.map(|v| if v > 0.4 { v } else { 0.0 }), 0.0);
        group.bench_with_input(BenchmarkId::new("csr_matvec", n), &sparse, |b, sparse| {
            b.iter(|| sparse.matvec(x.as_slice()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factorizations, bench_solves, bench_products);
criterion_main!(benches);
