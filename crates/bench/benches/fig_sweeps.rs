//! Criterion timings of single experiment repetitions for every figure —
//! the per-cell cost behind the `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gssl_bench::experiment::{CoilConfig, LabeledRatio, SyntheticConfig, SYNTHETIC_LAMBDAS};
use gssl_datasets::synthetic::PaperModel;

fn synthetic_cell(model: PaperModel, n: usize, m: usize) -> SyntheticConfig {
    SyntheticConfig {
        model,
        n_labeled: n,
        n_unlabeled: m,
        lambdas: SYNTHETIC_LAMBDAS.to_vec(),
        repetitions: 1,
        seed: 99,
    }
}

fn bench_fig1_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_repetition");
    group.sample_size(10);
    for &n in &[30usize, 100, 300] {
        let config = synthetic_cell(PaperModel::Linear, n, 30);
        group.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, cfg| {
            b.iter(|| cfg.run_once(0).expect("repetition succeeds"));
        });
    }
    group.finish();
}

fn bench_fig2_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_repetition");
    group.sample_size(10);
    for &m in &[30usize, 100, 300] {
        let config = synthetic_cell(PaperModel::Linear, 100, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &config, |b, cfg| {
            b.iter(|| cfg.run_once(0).expect("repetition succeeds"));
        });
    }
    group.finish();
}

fn bench_model2_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fig4_model2_repetition");
    group.sample_size(10);
    // Model 2 shares Figure 1/2's pipeline; one representative cell each.
    let fig3 = synthetic_cell(PaperModel::Interaction, 100, 30);
    group.bench_function("fig3_n100_m30", |b| {
        b.iter(|| fig3.run_once(0).expect("repetition succeeds"));
    });
    let fig4 = synthetic_cell(PaperModel::Interaction, 100, 100);
    group.bench_function("fig4_n100_m100", |b| {
        b.iter(|| fig4.run_once(0).expect("repetition succeeds"));
    });
    group.finish();
}

fn bench_fig5_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_repetition");
    group.sample_size(10);
    for ratio in LabeledRatio::all() {
        let config = CoilConfig {
            images_per_class: 15,
            lambdas: vec![0.0, 0.1, 5.0],
            repetitions: 1,
            seed: 5,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(ratio.label()),
            &config,
            |b, cfg| {
                b.iter(|| cfg.run_once(ratio, 0).expect("repetition succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_cells,
    bench_fig2_cells,
    bench_model2_cells,
    bench_fig5_cells
);
criterion_main!(benches);
