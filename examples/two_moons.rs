//! The classic two-moons demonstration of why graphs help: with one label
//! per moon, the hard criterion follows the manifold and recovers both
//! moons, while plain kernel regression (Nadaraya–Watson) — which ignores
//! unlabeled geometry — fails near the moon tips.
//!
//! ```text
//! cargo run --release --example two_moons
//! ```

use gssl::{HardCriterion, NadarayaWatson, Problem, TransductiveModel};
use gssl_datasets::synthetic::two_moons;
use gssl_graph::{affinity::affinity_matrix, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);
    let ds = two_moons(200, 0.06, &mut rng)?;

    // Label only two points: the first sample of each moon (index 0 is in
    // the upper moon, index 100 in the lower).
    let ssl = ds.arrange(&[0, 100])?;
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, 0.25)?;
    let problem = Problem::new(w, ssl.labels.clone())?;
    let truth = ssl.hidden_targets_binary();

    let accuracy = |model: &dyn TransductiveModel| -> Result<f64, Box<dyn std::error::Error>> {
        let scores = model.fit(&problem)?;
        let correct = scores
            .unlabeled_predictions(0.5)
            .iter()
            .zip(&truth)
            .filter(|(p, t)| p == t)
            .count();
        Ok(correct as f64 / truth.len() as f64)
    };

    let hard = accuracy(&HardCriterion::new())?;
    let nw = accuracy(&NadarayaWatson::new())?;

    println!("two moons, 200 points, ONE label per moon:");
    println!("  hard criterion accuracy:   {:.1}%", hard * 100.0);
    println!("  Nadaraya-Watson accuracy:  {:.1}%", nw * 100.0);
    println!("\nThe harmonic solution propagates along the manifold through");
    println!("unlabeled neighbours; kernel regression only sees the two");
    println!("labeled points and misassigns the far ends of each moon.");

    assert!(hard > nw, "graph-based method should win on two moons");
    assert!(hard > 0.9, "hard criterion should nearly solve two moons");
    Ok(())
}
