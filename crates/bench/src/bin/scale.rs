//! Million-point scaling benchmark for the `gssl-index` subsystem:
//! assembles a kNN similarity graph over point clouds of increasing
//! size, fits the hard criterion end-to-end through the sparse CG
//! backend, and measures the spatial index's build time and query
//! throughput along the way. Writes `BENCH_scale.json`.
//!
//! ```text
//! cargo run --release -p gssl-bench --bin scale [-- --ci] [-- --quiet]
//! ```
//!
//! `--ci` shrinks the point counts so the run finishes in CI seconds and
//! writes `BENCH_scale_ci.json` instead, leaving the committed
//! million-point record untouched.
//!
//! Timing is reported as measured and never gates the exit code: wall
//! clock depends on the host (see `host_parallelism` in the JSON). What
//! gates is the invariant that survives any machine: on a subsample of
//! queries the tree index must return **exactly** the brute-force
//! neighbor set — same indices, bitwise-equal distances — and, at the
//! sizes where it is re-run, the assembled graph must be bit-identical
//! across worker counts.

use gssl::{HardCriterion, HardSolver, Problem};
use gssl_graph::{knn_graph_with, Kernel, Symmetrization};
use gssl_index::{k_nearest_batch, BruteForce, NeighborSearch, SpatialIndex};
use gssl_linalg::{CgOptions, Matrix, SolverPolicy};
use gssl_runtime::Executor;
use std::process::ExitCode;
use std::time::Instant;

/// Ambient dimension (low: the auto index selects the KD-tree).
const DIM: usize = 3;
/// Neighbors per vertex in the assembled graph.
const K: usize = 10;
/// Out-of-sample queries timed against each index.
const QUERY_COUNT: usize = 2_000;
/// Queries cross-checked against the brute-force oracle per size.
const ORACLE_QUERIES: usize = 200;
/// Labeled fraction: 1 in 100 vertices, labeled-first convention.
const LABEL_EVERY: usize = 100;
/// Full-run point counts (the acceptance ladder ends at one million).
const FULL_SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
/// CI point counts: same code path, seconds not minutes.
const CI_SIZES: [usize; 2] = [2_000, 10_000];
/// Graph assembly is re-run at a second worker count (and compared bit
/// for bit) up to this size; beyond it the assembly is paid once.
const WORKER_CHECK_MAX_N: usize = 100_000;

/// Roberts' R3 low-discrepancy sequence: the i-th point of a Kronecker
/// walk with the plastic-number powers as step. Deterministic, no RNG
/// state, and well spread in the unit cube (unlike a single-multiplier
/// recurrence, which would collapse onto a line and flatter the tree).
fn r3_point(i: usize, offset: f64) -> [f64; DIM] {
    const ALPHA: [f64; DIM] = [
        0.819_172_513_396_164_4, // 1/g
        0.671_043_606_703_789_2, // 1/g²
        0.549_700_477_901_936_5, // 1/g³
    ];
    let mut p = [0.0; DIM];
    for (x, a) in p.iter_mut().zip(ALPHA) {
        *x = (0.5 + offset + a * (i as f64 + 1.0)).fract();
    }
    p
}

fn cloud(n: usize) -> Matrix {
    Matrix::from_fn(n, DIM, |i, j| r3_point(i, 0.0)[j])
}

fn query_cloud(count: usize) -> Matrix {
    // A quarter-cell shift keeps the queries off the fitted lattice.
    Matrix::from_fn(count, DIM, |i, j| r3_point(i, 0.25)[j])
}

/// Paper-style shrinking bandwidth: the typical k-NN radius at density
/// `n` in the unit cube, `h_n ≈ (k/n)^(1/d)`.
fn bandwidth_for(n: usize) -> f64 {
    (K as f64 / n as f64).powf(1.0 / DIM as f64)
}

/// Per-size measurements, serialized as one JSON object.
struct SizeReport {
    n: usize,
    bandwidth: f64,
    labeled: usize,
    index_backend: &'static str,
    index_build_seconds: f64,
    batch_seconds: f64,
    queries_per_sec: f64,
    assembly_seconds: f64,
    graph_nnz: usize,
    fit_seconds: f64,
    score_min: f64,
    score_max: f64,
    oracle_identical: bool,
    workers_identical: Option<bool>,
}

impl SizeReport {
    fn to_json(&self) -> String {
        let workers = match self.workers_identical {
            Some(v) => v.to_string(),
            None => "null".to_owned(),
        };
        format!(
            "  {{\"n\": {}, \"bandwidth\": {:.6}, \"labeled\": {}, \
             \"index_backend\": \"{}\", \"index_build_seconds\": {:.6}, \
             \"batch_queries\": {QUERY_COUNT}, \"batch_seconds\": {:.6}, \
             \"queries_per_sec\": {:.1}, \"assembly_seconds\": {:.6}, \
             \"graph_nnz\": {}, \"fit_seconds\": {:.6}, \
             \"score_min\": {:.6}, \"score_max\": {:.6}, \
             \"oracle_check_queries\": {ORACLE_QUERIES}, \
             \"oracle_identical\": {}, \"workers_identical\": {}}}",
            self.n,
            self.bandwidth,
            self.labeled,
            self.index_backend,
            self.index_build_seconds,
            self.batch_seconds,
            self.queries_per_sec,
            self.assembly_seconds,
            self.graph_nnz,
            self.fit_seconds,
            self.score_min,
            self.score_max,
            self.oracle_identical,
            workers,
        )
    }
}

/// Bitwise comparison of two CSR graphs (structure and values).
fn graphs_identical(a: &gssl_linalg::CsrMatrix, b: &gssl_linalg::CsrMatrix) -> bool {
    a.rows() == b.rows()
        && a.nnz() == b.nnz()
        && (0..a.rows()).all(|i| {
            a.row_iter(i)
                .zip(b.row_iter(i))
                .all(|((ca, va), (cb, vb))| ca == cb && va.to_bits() == vb.to_bits())
        })
}

/// The tree index answers a query subsample exactly like the oracle:
/// same neighbor ids, bitwise-equal squared distances.
fn oracle_agrees(points: &Matrix, index: &SpatialIndex, queries: &Matrix) -> bool {
    let brute = BruteForce::build(points).expect("brute build");
    let take = queries.rows().min(ORACLE_QUERIES);
    (0..take).all(|qi| {
        let q = queries.row(qi);
        let expect = brute.k_nearest(q, K).expect("oracle query");
        let got = index.k_nearest(q, K).expect("tree query");
        expect.len() == got.len()
            && expect
                .iter()
                .zip(&got)
                .all(|(e, g)| e.index == g.index && e.dist2.to_bits() == g.dist2.to_bits())
    })
}

fn run_size(n: usize, quiet: bool) -> SizeReport {
    let points = cloud(n);
    let bandwidth = bandwidth_for(n);
    let labeled = (n / LABEL_EVERY).max(2);
    let executor = Executor::with_workers(0);

    let start = Instant::now();
    let index = SpatialIndex::build(&points).expect("index build");
    let index_build_seconds = start.elapsed().as_secs_f64();

    let queries = query_cloud(QUERY_COUNT);
    let start = Instant::now();
    let batches = k_nearest_batch(&index, &queries, K, &executor).expect("batched queries");
    let batch_seconds = start.elapsed().as_secs_f64();
    assert_eq!(batches.len(), QUERY_COUNT);
    let queries_per_sec = QUERY_COUNT as f64 / batch_seconds.max(1e-12);

    let oracle_identical = oracle_agrees(&points, &index, &queries);

    let start = Instant::now();
    let graph = knn_graph_with(
        &points,
        K,
        Kernel::Gaussian,
        bandwidth,
        Symmetrization::Union,
        &executor,
    )
    .expect("graph assembly");
    let assembly_seconds = start.elapsed().as_secs_f64();
    let graph_nnz = graph.nnz();

    // At the smaller rungs, pay the assembly once more at a different
    // worker count and require the result bit for bit.
    let workers_identical = (n <= WORKER_CHECK_MAX_N).then(|| {
        let twin = knn_graph_with(
            &points,
            K,
            Kernel::Gaussian,
            bandwidth,
            Symmetrization::Union,
            &Executor::with_workers(4),
        )
        .expect("graph assembly (4 workers)");
        graphs_identical(&graph, &twin)
    });

    // End-to-end hard-criterion fit through the policy-selected sparse
    // path (the dense solvers would need an n × n matrix — 8 TB at a
    // million points; the CSR route runs in O(nnz) memory). The kNN
    // graph's CSR bandwidth is ~n (spatial neighbors are scattered in
    // index order), which the policy's locality guard reads as "the
    // bandwidth signal is uninformative" — these anchored systems are
    // well-conditioned, so every rung routes to IC(0) PCG, which halves
    // the iteration count of the old plain Jacobi-CG path.
    let labels: Vec<f64> = (0..labeled).map(|i| f64::from(i as u8 % 2)).collect();
    let start = Instant::now();
    let problem = Problem::new(graph, labels).expect("problem");
    problem.require_anchored(0.0).expect("anchored graph");
    let scores = HardCriterion::new()
        .solver(HardSolver::Auto(SolverPolicy::with_cg(CgOptions {
            max_iterations: 10_000,
            tolerance: 1e-7,
        })))
        .fit(&problem)
        .expect("hard fit");
    let fit_seconds = start.elapsed().as_secs_f64();
    let (score_min, score_max) = scores
        .all()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
            (lo.min(s), hi.max(s))
        });

    let report = SizeReport {
        n,
        bandwidth,
        labeled,
        index_backend: index.backend(),
        index_build_seconds,
        batch_seconds,
        queries_per_sec,
        assembly_seconds,
        graph_nnz,
        fit_seconds,
        score_min,
        score_max,
        oracle_identical,
        workers_identical,
    };
    if !quiet {
        println!(
            "n={:>9}  build {:>8.3}s  {:>9.0} q/s  assemble {:>8.3}s  \
             fit {:>8.3}s  nnz {:>10}  oracle {}  workers {}",
            report.n,
            report.index_build_seconds,
            report.queries_per_sec,
            report.assembly_seconds,
            report.fit_seconds,
            report.graph_nnz,
            report.oracle_identical,
            report
                .workers_identical
                .map_or("skipped".to_owned(), |v| v.to_string()),
        );
    }
    report
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let ci = args.iter().any(|a| a == "--ci");
    let (sizes, out_path): (&[usize], &str) = if ci {
        (&CI_SIZES, "BENCH_scale_ci.json")
    } else {
        (&FULL_SIZES, "BENCH_scale.json")
    };

    if !quiet {
        println!(
            "== scale: kNN graph assembly and hard fit, d={DIM} k={K} ({} mode) ==",
            if ci { "ci" } else { "full" }
        );
    }
    let total_start = Instant::now();
    let reports: Vec<SizeReport> = sizes.iter().map(|&n| run_size(n, quiet)).collect();
    let end_to_end_seconds = total_start.elapsed().as_secs_f64();

    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let body = reports
        .iter()
        .map(SizeReport::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n\"mode\": \"{}\",\n\"host_parallelism\": {host_parallelism},\n\
         \"dim\": {DIM},\n\"k\": {K},\n\"end_to_end_seconds\": {end_to_end_seconds:.3},\n\
         \"sizes\": [\n{body}\n]\n}}\n",
        if ci { "ci" } else { "full" },
    );
    std::fs::write(out_path, &json).expect("write scale report");

    // Exit gates: exactness, never timing. (Per-query latency growing
    // sublinearly is visible in the recorded queries_per_sec column —
    // a 100× size step must not cost 100× the query time — but wall
    // clock is host-dependent, so it is reported, not gated.)
    let exact = reports
        .iter()
        .all(|r| r.oracle_identical && r.workers_identical.unwrap_or(true));
    if !quiet {
        let first = &reports[0];
        let last = &reports[reports.len() - 1];
        let size_ratio = last.n as f64 / first.n as f64;
        let qps_ratio = first.queries_per_sec / last.queries_per_sec.max(1e-12);
        println!(
            "\nsize grew {size_ratio:.0}x, per-query cost grew {qps_ratio:.1}x \
             (linear scan would be ~{size_ratio:.0}x); wrote {out_path}"
        );
        println!(
            "exactness gates: {}",
            if exact { "all passed" } else { "FAILED" }
        );
    }
    if exact {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
