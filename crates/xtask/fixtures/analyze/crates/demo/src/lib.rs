//! Analyze fixture: panic-reachability through a private helper, plus a
//! baselined offender the fixture baseline must suppress.

/// Public entry point; reaches the unguarded index in `pick`.
pub fn api(values: &[f64]) -> f64 {
    pick(values)
}

fn pick(values: &[f64]) -> f64 {
    values[3]
}

/// Directly offending pub function; suppressed by the fixture baseline.
pub fn baselined(values: &[f64]) -> f64 {
    values[7]
}

/// A guarded sibling that must stay silent.
pub fn guarded(values: &[f64]) -> f64 {
    if values.len() <= 3 {
        return 0.0;
    }
    values[3]
}
