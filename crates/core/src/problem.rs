//! The transductive problem instance and the score vectors the criteria
//! return.

use crate::error::{Error, Result};
use gssl_graph::{affinity::affinity_matrix, components::unlabeled_anchored, Kernel};
use gssl_linalg::{strict, BlockPartition, Matrix, Vector};

/// A graph-based semi-supervised learning problem: a symmetric similarity
/// matrix over `n + m` points, of which the first `n` carry observed
/// responses.
///
/// This is exactly the setting of the paper's Section II: `W = [w_ij]`
/// with `0 ≤ w_ij ≤ 1` (soft requirement; any nonnegative symmetric matrix
/// is accepted), responses `Y₁, …, Y_n` observed, `Y_{n+1}, …, Y_{n+m}`
/// to be predicted.
///
/// ```
/// use gssl::Problem;
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl::Error> {
/// let w = Matrix::from_rows(&[
///     &[1.0, 0.8, 0.1],
///     &[0.8, 1.0, 0.2],
///     &[0.1, 0.2, 1.0],
/// ])?;
/// let problem = Problem::new(w, vec![1.0])?; // 1 labeled, 2 unlabeled
/// assert_eq!(problem.n_labeled(), 1);
/// assert_eq!(problem.n_unlabeled(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    weights: Matrix,
    labels: Vec<f64>,
}

impl Problem {
    /// Symmetry tolerance accepted by the constructor.
    const SYMMETRY_TOL: f64 = 1e-9;

    /// Creates a problem from a similarity matrix and the observed labels
    /// of the first `labels.len()` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when:
    /// * `weights` is not square or not symmetric (within `1e-9`),
    /// * any weight is negative or non-finite,
    /// * `labels` is empty or longer than the vertex count,
    /// * any label is non-finite.
    ///
    /// With the `strict-checks` cargo feature enabled, non-finite weights
    /// or labels are instead reported as [`Error::NonFiniteValue`], which
    /// pinpoints the first offending element.
    pub fn new(weights: Matrix, labels: Vec<f64>) -> Result<Self> {
        strict::check_finite("Problem::new labels", &labels)?;
        strict::check_finite_matrix("Problem::new weights", &weights)?;
        if !weights.is_square() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "similarity matrix must be square, got {}x{}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        if labels.is_empty() {
            return Err(Error::InvalidProblem {
                message: "at least one labeled point is required".to_owned(),
            });
        }
        if labels.len() > weights.rows() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "{} labels exceed the {} vertices",
                    labels.len(),
                    weights.rows()
                ),
            });
        }
        if labels.iter().any(|y| !y.is_finite()) {
            return Err(Error::InvalidProblem {
                message: "labels must be finite".to_owned(),
            });
        }
        if weights
            .as_slice()
            .iter()
            .any(|w| !w.is_finite() || *w < 0.0)
        {
            return Err(Error::InvalidProblem {
                message: "weights must be finite and nonnegative".to_owned(),
            });
        }
        if !weights.is_symmetric(Self::SYMMETRY_TOL) {
            return Err(Error::InvalidProblem {
                message: "similarity matrix must be symmetric".to_owned(),
            });
        }
        Ok(Problem { weights, labels })
    }

    /// Builds the problem directly from points (rows of `points`, labeled
    /// rows first) using a kernel graph, as the paper's experiments do.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors and [`Problem::new`] errors.
    pub fn from_points(
        points: &Matrix,
        labels: Vec<f64>,
        kernel: Kernel,
        bandwidth: f64,
    ) -> Result<Self> {
        let weights = affinity_matrix(points, kernel, bandwidth)?;
        Problem::new(weights, labels)
    }

    /// Number of labeled points `n`.
    pub fn n_labeled(&self) -> usize {
        self.labels.len()
    }

    /// Number of unlabeled points `m`.
    pub fn n_unlabeled(&self) -> usize {
        self.weights.rows() - self.labels.len()
    }

    /// Total number of vertices `n + m`.
    pub fn len(&self) -> usize {
        self.weights.rows()
    }

    /// Returns `true` when the problem has no vertices (impossible after
    /// construction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.rows() == 0
    }

    /// Borrows the similarity matrix `W`.
    /// shape: (total, total)
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrows the observed labels `Y₁, …, Y_n`.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The observed labels as a [`Vector`].
    /// shape: (n,)
    pub fn labels_vector(&self) -> Vector {
        Vector::from(self.labels.as_slice())
    }

    /// Degree vector `d_i = Σ_j w_ij` over the full graph.
    /// shape: (total,)
    pub fn degrees(&self) -> Vector {
        self.weights.row_sums()
    }

    /// Splits `W` into the 2×2 labeled/unlabeled block structure used by
    /// Eq. (4)/(5) of the paper.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed problem; errors are propagated from
    /// the underlying partition for completeness.
    pub fn weight_blocks(&self) -> Result<BlockPartition> {
        Ok(BlockPartition::split(&self.weights, self.n_labeled())?)
    }

    /// The hard-criterion system matrix `D₂₂ − W₂₂` (degrees taken over
    /// the *full* graph, as in the paper).
    ///
    /// # Errors
    ///
    /// Propagates partition errors (none for a constructed problem).
    /// shape: (m, m)
    pub fn unlabeled_system(&self) -> Result<Matrix> {
        let blocks = self.weight_blocks()?;
        strict::check_symmetric("unlabeled system block W22", &blocks.a22, 1e-9)?;
        let degrees = self.degrees();
        let n = self.n_labeled();
        let m = self.n_unlabeled();
        let mut system = blocks.a22.map(|x| -x);
        for a in 0..m {
            system.set(a, a, degrees[n + a] - blocks.a22.get(a, a));
        }
        Ok(system)
    }

    /// The hard-criterion right-hand side `W₂₁ Y_n`.
    ///
    /// # Errors
    ///
    /// Propagates partition errors (none for a constructed problem).
    /// shape: (m,)
    pub fn unlabeled_rhs(&self) -> Result<Vector> {
        let blocks = self.weight_blocks()?;
        Ok(blocks.a21.matvec(&self.labels_vector())?)
    }

    /// Checks that every unlabeled vertex is connected (through edges of
    /// weight `> threshold`) to some labeled vertex — the condition under
    /// which `D₂₂ − W₂₂` is nonsingular and the hard criterion well posed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnanchoredUnlabeled`] naming the first stranded
    /// vertex.
    pub fn require_anchored(&self, threshold: f64) -> Result<()> {
        if unlabeled_anchored(&self.weights, self.n_labeled(), threshold)? {
            return Ok(());
        }
        // Identify a stranded vertex for the error message.
        let labels = gssl_graph::components::connected_components(&self.weights, threshold)?;
        let anchored: std::collections::HashSet<usize> =
            labels[..self.n_labeled()].iter().copied().collect();
        let stranded = match labels[self.n_labeled()..]
            .iter()
            .position(|l| !anchored.contains(l))
        {
            Some(index) => index,
            // The cheap check and the component analysis disagree (e.g.
            // borderline thresholds); treat the precise answer as anchored.
            None => return Ok(()),
        };
        Err(Error::UnanchoredUnlabeled {
            unlabeled_index: stranded,
        })
    }
}

/// Scores produced by a criterion: one value per vertex, labeled first.
#[derive(Debug, Clone, PartialEq)]
pub struct Scores {
    all: Vector,
    n_labeled: usize,
}

impl Scores {
    /// Assembles scores from the labeled and unlabeled parts.
    pub(crate) fn from_parts(labeled: &[f64], unlabeled: &[f64]) -> Self {
        let mut all = Vec::with_capacity(labeled.len() + unlabeled.len());
        all.extend_from_slice(labeled);
        all.extend_from_slice(unlabeled);
        Scores {
            all: Vector::from(all),
            n_labeled: labeled.len(),
        }
    }

    /// Scores of every vertex (labeled first).
    pub fn all(&self) -> &[f64] {
        self.all.as_slice()
    }

    /// Scores of the labeled vertices.
    pub fn labeled(&self) -> &[f64] {
        &self.all.as_slice()[..self.n_labeled]
    }

    /// Scores of the unlabeled vertices — `f̂_{(n+1):(n+m)}` in the paper.
    pub fn unlabeled(&self) -> &[f64] {
        &self.all.as_slice()[self.n_labeled..]
    }

    /// Number of labeled vertices.
    pub fn n_labeled(&self) -> usize {
        self.n_labeled
    }

    /// Binary predictions on the unlabeled vertices (`score >= threshold`).
    pub fn unlabeled_predictions(&self, threshold: f64) -> Vec<bool> {
        self.unlabeled().iter().map(|&s| s >= threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_weights() -> Matrix {
        // 0 - 1 - 2 chain with weights 1 (plus unit self-loops like the
        // Gaussian kernel produces).
        Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 1.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        assert_eq!(p.n_labeled(), 1);
        assert_eq!(p.n_unlabeled(), 2);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.labels(), &[1.0]);
        assert_eq!(p.degrees().as_slice(), &[2.0, 3.0, 2.0]);
    }

    #[test]
    fn construction_validates() {
        assert!(Problem::new(Matrix::zeros(2, 3), vec![1.0]).is_err());
        assert!(Problem::new(chain_weights(), vec![]).is_err());
        assert!(Problem::new(chain_weights(), vec![1.0; 4]).is_err());
        assert!(Problem::new(chain_weights(), vec![f64::NAN]).is_err());
        let mut asym = chain_weights();
        asym.set(0, 1, 0.5);
        assert!(Problem::new(asym, vec![1.0]).is_err());
        let mut negative = chain_weights();
        negative.set(0, 1, -0.5);
        negative.set(1, 0, -0.5);
        assert!(Problem::new(negative, vec![1.0]).is_err());
    }

    #[test]
    fn from_points_builds_kernel_graph() {
        let pts = Matrix::from_rows(&[&[0.0], &[0.1], &[0.2]]).unwrap();
        let p = Problem::from_points(&pts, vec![1.0, 0.0], Kernel::Gaussian, 1.0).unwrap();
        assert_eq!(p.n_labeled(), 2);
        assert!(p.weights().is_symmetric(1e-12));
    }

    #[test]
    fn unlabeled_system_matches_hand_computation() {
        // n = 1 labeled, m = 2 unlabeled on the chain.
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        let system = p.unlabeled_system().unwrap();
        // D22 = diag(3, 2); W22 = [[1, 1], [1, 1]].
        let expected = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 1.0]]).unwrap();
        assert!(system.approx_eq(&expected, 1e-12));
        // RHS: W21 Y = [1, 0]ᵀ · 1.
        assert_eq!(p.unlabeled_rhs().unwrap().as_slice(), &[1.0, 0.0]);
    }

    #[test]
    fn anchoring_check() {
        let p = Problem::new(chain_weights(), vec![1.0]).unwrap();
        assert!(p.require_anchored(0.0).is_ok());
        // Disconnect vertex 2 entirely.
        let w = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let stranded = Problem::new(w, vec![1.0]).unwrap();
        assert_eq!(
            stranded.require_anchored(0.0),
            Err(Error::UnanchoredUnlabeled { unlabeled_index: 1 })
        );
    }

    #[test]
    fn scores_views() {
        let s = Scores::from_parts(&[1.0, 0.0], &[0.7, 0.2]);
        assert_eq!(s.all(), &[1.0, 0.0, 0.7, 0.2]);
        assert_eq!(s.labeled(), &[1.0, 0.0]);
        assert_eq!(s.unlabeled(), &[0.7, 0.2]);
        assert_eq!(s.n_labeled(), 2);
        assert_eq!(s.unlabeled_predictions(0.5), vec![true, false]);
    }
}
