//! The out-of-sample query plane: Eq. 6 evaluation shared by every
//! engine flavor.
//!
//! Both the monolithic [`crate::ServingEngine`] and the shard-decomposed
//! [`crate::ShardedEngine`] answer queries by borrowing a [`QueryPlane`]
//! over `(graph, index, scores, config)` and running *this* code — one
//! implementation, two owners. That sharing is what makes the sharded
//! engine's predictions bitwise-identical to the monolithic engine's:
//! the kernel row of Eq. 6 spans **all** `N` fitted nodes (it is not
//! block-diagonal across graph components, unlike the criterion
//! systems), so prediction must always run over the globally assembled
//! score matrix, and it does so through the exact same loops here.

use crate::config::{EngineConfig, QueryPath};
use crate::error::{Error, Result};
use crate::types::{Prediction, QueryPoint};
use gssl_graph::KernelGraph;
use gssl_index::{NeighborSearch, SpatialIndex};
use gssl_linalg::{strict, Matrix};
use gssl_runtime::Executor;
use std::time::Instant;

/// A borrowed view of everything the out-of-sample extension needs:
/// the fitted kernel graph, the optional spatial index, the current
/// score matrix (`N × k`) and the query-path configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueryPlane<'a> {
    /// Fitted points + kernel + bandwidth.
    pub graph: &'a KernelGraph,
    /// Spatial index over the fitted points (index-backed paths only).
    pub index: Option<&'a SpatialIndex>,
    /// Current fitted scores for all `N` nodes, one column per class.
    pub scores: &'a Matrix,
    /// Kernel parameters and query path.
    pub config: &'a EngineConfig,
    /// Whether predictions arg-max over one-vs-rest columns.
    pub multiclass: bool,
}

/// A scored batch plus its latency accounting, handed back to the owning
/// engine so each engine records its own metrics.
pub(crate) struct BatchOutcome {
    /// One prediction per query, in input order.
    pub predictions: Vec<Prediction>,
    /// Per-query latency samples in seconds, in input order.
    pub latencies: Vec<f64>,
    /// Wall-clock seconds for the whole batch.
    pub batch_seconds: f64,
}

impl QueryPlane<'_> {
    /// Scores a batch of out-of-sample queries, sharded across
    /// `executor`; see [`crate::ServingEngine::predict_batch`] for the
    /// user-facing contract this implements.
    /// hot
    /// complexity: O(b * n * c)
    pub fn predict_batch(
        &self,
        executor: &Executor,
        queries: &[QueryPoint],
    ) -> Result<BatchOutcome> {
        let dim = self.graph.dim();
        for (qi, q) in queries.iter().enumerate() {
            if q.coords.len() != dim {
                return Err(Error::InvalidQuery {
                    message: format!(
                        "query {qi} has dimension {}, engine was fitted on {dim}",
                        q.coords.len()
                    ),
                });
            }
            // Unconditional sanitizing at the serving boundary: bad query
            // coordinates are caller error, not a numerical accident, so
            // they are rejected even without the strict-checks feature.
            if let Some(pos) = q.coords.iter().position(|v| !v.is_finite()) {
                return Err(Error::NonFiniteValue {
                    context: "serve.predict query coordinates",
                    index: qi * dim + pos,
                });
            }
        }

        let batch_start = Instant::now();
        // One kernel-row scratch buffer per chunk, not per query: the row
        // is overwritten in place by `kernel_row_into` for every query the
        // worker handles. The index-backed paths never touch a dense row,
        // so their chunks allocate nothing here.
        let nodes = if self.config.query_path == QueryPath::Dense {
            self.graph.len()
        } else {
            0
        };
        let block = queries
            .len()
            .div_ceil(executor.workers().saturating_mul(4))
            .max(1);
        let chunks = executor.map_chunks(queries.len(), block, |range| {
            let mut row = vec![0.0; nodes];
            let chunk_queries = &queries[range.start..range.end];
            let mut outcomes = Vec::with_capacity(chunk_queries.len());
            for (q, qi) in chunk_queries.iter().zip(range) {
                let start = Instant::now();
                let prediction = self.predict_one(qi, q, &mut row)?;
                outcomes.push((prediction, start.elapsed().as_secs_f64()));
            }
            Ok::<_, Error>(outcomes)
        })?;
        let batch_seconds = batch_start.elapsed().as_secs_f64();

        let mut predictions = Vec::with_capacity(queries.len());
        let mut latencies = Vec::with_capacity(queries.len());
        for (prediction, latency) in chunks {
            predictions.push(prediction);
            latencies.push(latency);
        }
        Ok(BatchOutcome {
            predictions,
            latencies,
            batch_seconds,
        })
    }

    /// The out-of-sample extension of Theorem II.1 / Eq. 6 for one query,
    /// routed through the configured [`QueryPath`]: dense kernel rows
    /// (`O(n·d)` into the caller's reusable `row` scratch) or index-backed
    /// neighbor sums (`O(k)` weights after a sublinear tree search).
    /// hot
    /// complexity: O(n * c)
    fn predict_one(
        &self,
        query_index: usize,
        query: &QueryPoint,
        row: &mut [f64],
    ) -> Result<Prediction> {
        let per_class = match self.config.query_path {
            QueryPath::Dense => self.extend_dense(query_index, query, row)?,
            QueryPath::KNearest { k } => {
                let index = self.query_index_handle()?;
                let neighbors = index.k_nearest(&query.coords, k.min(index.len()))?;
                self.extend_over_neighbors(query_index, &neighbors)?
            }
            QueryPath::WithinSupport => {
                let index = self.query_index_handle()?;
                // Compact kernels vanish beyond `t = dist/bandwidth = 1`
                // and `within_radius` is inclusive, so the ball holds
                // every node with a non-zero weight (boxcar is non-zero
                // AT t = 1) — the truncation drops exact zeros only.
                let neighbors = index.within_radius(&query.coords, self.config.bandwidth)?;
                self.extend_over_neighbors(query_index, &neighbors)?
            }
        };
        strict::check_finite("serve.predict output", &per_class)?;

        let (class, score) = if self.multiclass {
            let mut best = 0;
            let mut best_score = per_class[0];
            for (c, &v) in per_class.iter().enumerate().skip(1) {
                if v > best_score {
                    best = c;
                    best_score = v;
                }
            }
            (best, best_score)
        } else {
            let score = per_class[0];
            (usize::from(score >= 0.5), score)
        };
        Ok(Prediction {
            per_class,
            class,
            score,
        })
    }

    /// The fitted spatial index, present iff an index-backed
    /// [`QueryPath`] was configured at fit time.
    fn query_index_handle(&self) -> Result<&SpatialIndex> {
        self.index.ok_or_else(|| Error::Internal {
            message: "index-backed query path configured but no spatial index was built at fit"
                .to_owned(),
        })
    }

    /// Dense Eq. 6: the full kernel row over all fitted nodes, written
    /// into the caller's reusable scratch, then the normalized weighted
    /// average of the fitted scores.
    /// hot
    /// complexity: O(n * c)
    /// shape: (classes,)
    fn extend_dense(
        &self,
        query_index: usize,
        query: &QueryPoint,
        row: &mut [f64],
    ) -> Result<Vec<f64>> {
        self.graph.kernel_row_into(&query.coords, row)?;
        strict::check_finite("serve.predict kernel row", row)?;
        let mass: f64 = row.iter().sum();
        if !mass.is_finite() || !(mass > 0.0) {
            return Err(Error::ZeroKernelMass { query_index });
        }
        let k = self.scores.cols();
        let mut per_class = vec![0.0; k];
        for (i, &w) in row.iter().enumerate() {
            let score_row = self.scores.row(i);
            for (acc, &s) in per_class.iter_mut().zip(score_row) {
                *acc += w * s;
            }
        }
        for acc in &mut per_class {
            *acc /= mass;
        }
        Ok(per_class)
    }

    /// Truncated Eq. 6: the kernel weights and score average run over an
    /// index-provided neighbor list only, reusing each neighbor's stored
    /// squared distance (no coordinate access, no dense row).
    /// hot
    /// complexity: O(k * c)
    /// shape: (classes,)
    fn extend_over_neighbors(
        &self,
        query_index: usize,
        neighbors: &[gssl_index::Neighbor],
    ) -> Result<Vec<f64>> {
        let k = self.scores.cols();
        let mut per_class = vec![0.0; k];
        let mut mass = 0.0;
        for nb in neighbors {
            let w = self
                .config
                .kernel
                .weight_unchecked(nb.dist2, self.config.bandwidth);
            mass += w;
            let score_row = self.scores.row(nb.index);
            for (acc, &s) in per_class.iter_mut().zip(score_row) {
                *acc += w * s;
            }
        }
        if !mass.is_finite() || !(mass > 0.0) {
            return Err(Error::ZeroKernelMass { query_index });
        }
        for acc in &mut per_class {
            *acc /= mass;
        }
        Ok(per_class)
    }
}
