//! Graph Laplacians and the Dirichlet energy both criteria regularize.

use crate::error::{Error, Result};
use gssl_linalg::{Matrix, Vector};

/// Which Laplacian normalization to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum LaplacianKind {
    /// `L = D − W` — the paper's choice (see its Eq. 3).
    #[default]
    Unnormalized,
    /// `L_sym = I − D^{-1/2} W D^{-1/2}`.
    Symmetric,
    /// `L_rw = I − D^{-1} W`.
    RandomWalk,
}

/// Degree vector `d_i = Σ_j w_ij` of an affinity matrix.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square.
/// shape: (w.rows,)
pub fn degrees(w: &Matrix) -> Result<Vector> {
    require_square(w)?;
    Ok(w.row_sums())
}

/// Volume of the graph: `Σ_i d_i`.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square.
pub fn volume(w: &Matrix) -> Result<f64> {
    Ok(degrees(w)?.sum())
}

/// Builds the requested graph Laplacian from an affinity matrix.
///
/// # Errors
///
/// * [`Error::InvalidArgument`] when `w` is not square or (for the
///   normalized kinds) when some vertex has zero degree.
///
/// ```
/// use gssl_graph::{laplacian, LaplacianKind};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl_graph::Error> {
/// let w = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])?;
/// let l = laplacian(&w, LaplacianKind::Unnormalized)?;
/// assert_eq!(l.get(0, 0), 1.0);
/// assert_eq!(l.get(0, 1), -1.0);
/// # Ok(())
/// # }
/// ```
/// shape: (w.rows, w.rows)
pub fn laplacian(w: &Matrix, kind: LaplacianKind) -> Result<Matrix> {
    require_square(w)?;
    let n = w.rows();
    let d = degrees(w)?;
    match kind {
        LaplacianKind::Unnormalized => {
            let mut l = w.map(|x| -x);
            for i in 0..n {
                l.set(i, i, d[i] - w.get(i, i));
            }
            Ok(l)
        }
        LaplacianKind::Symmetric => {
            let inv_sqrt = positive_degree_transform(&d, |x| 1.0 / x.sqrt())?;
            let mut l = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let normalized = inv_sqrt[i] * w.get(i, j) * inv_sqrt[j];
                    let identity = if i == j { 1.0 } else { 0.0 };
                    l.set(i, j, identity - normalized);
                }
            }
            Ok(l)
        }
        LaplacianKind::RandomWalk => {
            let inv = positive_degree_transform(&d, |x| 1.0 / x)?;
            let mut l = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let identity = if i == j { 1.0 } else { 0.0 };
                    l.set(i, j, identity - inv[i] * w.get(i, j));
                }
            }
            Ok(l)
        }
    }
}

/// The paper's smoothness penalty `Σ_i Σ_j w_ij (f_i − f_j)²`.
///
/// Equals `2 fᵀ L f` for the unnormalized Laplacian — an identity the test
/// suite checks on random inputs.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] when `w` is not square or `f` has the
/// wrong length.
pub fn dirichlet_energy(w: &Matrix, f: &Vector) -> Result<f64> {
    require_square(w)?;
    if f.len() != w.rows() {
        return Err(Error::InvalidArgument {
            message: format!("score vector has length {}, expected {}", f.len(), w.rows()),
        });
    }
    let mut energy = 0.0;
    for i in 0..w.rows() {
        for j in 0..w.cols() {
            let diff = f[i] - f[j];
            energy += w.get(i, j) * diff * diff;
        }
    }
    Ok(energy)
}

fn require_square(w: &Matrix) -> Result<()> {
    if w.is_square() {
        Ok(())
    } else {
        Err(Error::InvalidArgument {
            message: format!(
                "affinity matrix must be square, got {}x{}",
                w.rows(),
                w.cols()
            ),
        })
    }
}

fn positive_degree_transform(d: &Vector, f: impl Fn(f64) -> f64) -> Result<Vec<f64>> {
    d.iter()
        .enumerate()
        .map(|(i, di)| {
            if di > 0.0 {
                Ok(f(di))
            } else {
                Err(Error::InvalidArgument {
                    message: format!("vertex {i} has zero degree; normalized Laplacian undefined"),
                })
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> Matrix {
        // 0 - 1 - 2 path with unit weights.
        Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]).unwrap()
    }

    #[test]
    fn degrees_and_volume() {
        let w = path_graph();
        assert_eq!(degrees(&w).unwrap().as_slice(), &[1.0, 2.0, 1.0]);
        assert_eq!(volume(&w).unwrap(), 4.0);
    }

    #[test]
    fn unnormalized_rows_sum_to_zero_and_symmetric() {
        let l = laplacian(&path_graph(), LaplacianKind::Unnormalized).unwrap();
        assert!(l.is_symmetric(0.0));
        for s in l.row_sums().iter() {
            assert!(s.abs() < 1e-15);
        }
    }

    #[test]
    fn unnormalized_ignores_self_loops() {
        // Self-loops cancel in D - W: diagonal gets d_i - w_ii.
        let mut w = path_graph();
        let l_plain = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        for i in 0..3 {
            w.set(i, i, 5.0);
        }
        let l_loops = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        assert!(l_plain.approx_eq(&l_loops, 1e-15));
    }

    #[test]
    fn symmetric_laplacian_of_regular_graph() {
        // Complete graph K3 without self-loops: every degree is 2.
        let w = Matrix::from_rows(&[&[0.0, 1.0, 1.0], &[1.0, 0.0, 1.0], &[1.0, 1.0, 0.0]]).unwrap();
        let l = laplacian(&w, LaplacianKind::Symmetric).unwrap();
        assert!(l.is_symmetric(1e-15));
        assert!((l.get(0, 0) - 1.0).abs() < 1e-15);
        assert!((l.get(0, 1) + 0.5).abs() < 1e-15);
    }

    #[test]
    fn random_walk_rows_sum_to_zero() {
        let l = laplacian(&path_graph(), LaplacianKind::RandomWalk).unwrap();
        for s in l.row_sums().iter() {
            assert!(s.abs() < 1e-15);
        }
        // Not symmetric in general for irregular graphs.
        assert!((l.get(0, 1) + 1.0).abs() < 1e-15); // -w01/d0 = -1/1
        assert!((l.get(1, 0) + 0.5).abs() < 1e-15); // -w10/d1 = -1/2
    }

    #[test]
    fn normalized_kinds_reject_isolated_vertices() {
        let w = Matrix::zeros(2, 2);
        assert!(laplacian(&w, LaplacianKind::Symmetric).is_err());
        assert!(laplacian(&w, LaplacianKind::RandomWalk).is_err());
        // Unnormalized is fine: L = 0.
        let l = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        assert!(l.approx_eq(&Matrix::zeros(2, 2), 0.0));
    }

    #[test]
    fn dirichlet_energy_identity_with_quadratic_form() {
        let w = path_graph();
        let l = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        let f = Vector::from(vec![1.0, -0.5, 2.0]);
        let energy = dirichlet_energy(&w, &f).unwrap();
        let quad = f.dot(&l.matvec(&f).unwrap()).unwrap();
        assert!((energy - 2.0 * quad).abs() < 1e-12);
    }

    #[test]
    fn dirichlet_energy_zero_for_constant_scores() {
        let w = path_graph();
        let f = Vector::filled(3, 4.2);
        assert_eq!(dirichlet_energy(&w, &f).unwrap(), 0.0);
    }

    #[test]
    fn laplacian_is_positive_semidefinite() {
        let w = path_graph();
        let l = laplacian(&w, LaplacianKind::Unnormalized).unwrap();
        // xᵀLx >= 0 on a grid of directions.
        for seed in 0..20 {
            let f = Vector::from_fn(3, |i| ((seed * 3 + i) as f64 * 0.7).sin());
            let quad = f.dot(&l.matvec(&f).unwrap()).unwrap();
            assert!(quad >= -1e-12);
        }
    }

    #[test]
    fn validates_shapes() {
        let rect = Matrix::zeros(2, 3);
        assert!(laplacian(&rect, LaplacianKind::Unnormalized).is_err());
        assert!(degrees(&rect).is_err());
        assert!(dirichlet_energy(&path_graph(), &Vector::zeros(5)).is_err());
    }
}
