//! Reproduces Figure 4 of the paper: Figure 2's design (sweep `m`,
//! `n = 100`) under the non-linear Model 2.

use gssl_bench::figures::SyntheticFigure;
use gssl_bench::report::format_series_csv;
use gssl_bench::runner::CliArgs;

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    match SyntheticFigure::Fig4.run_and_report(&args) {
        Ok(points) => print!("{}", format_series_csv(&points)),
        Err(error) => {
            eprintln!("figure 4 failed: {error}");
            std::process::exit(1);
        }
    }
}
