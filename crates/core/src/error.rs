//! Error type for the graph-based semi-supervised learners.

use std::fmt;

/// Errors returned by problem construction and the criteria solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The similarity matrix and labels are inconsistent with each other.
    InvalidProblem {
        /// Description of the violated requirement.
        message: String,
    },
    /// Some unlabeled vertex has no path (through positive-weight edges)
    /// to any labeled vertex, so the hard-criterion system `D₂₂ − W₂₂` is
    /// singular and the scores on that component are undetermined.
    UnanchoredUnlabeled {
        /// Index (within the unlabeled block) of a stranded vertex.
        unlabeled_index: usize,
    },
    /// A tuning parameter was outside its valid domain (e.g. `λ < 0`).
    InvalidParameter {
        /// Description of the violated requirement.
        message: String,
    },
    /// A kernel-regression denominator vanished: the query point has zero
    /// similarity to every labeled point.
    ZeroKernelMass {
        /// Index (within the unlabeled block) of the affected query.
        unlabeled_index: usize,
    },
    /// A NaN or infinity was detected at a sanitized boundary (only
    /// raised with the `strict-checks` cargo feature enabled). The
    /// `context` names the boundary — e.g. `"Problem::new weights"` — and
    /// `index` is the flat position of the first offending element.
    NonFiniteValue {
        /// Name of the guarded boundary.
        context: &'static str,
        /// Flat index of the first non-finite element.
        index: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(gssl_linalg::Error),
    /// An underlying graph operation failed.
    Graph(gssl_graph::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProblem { message } => write!(f, "invalid problem: {message}"),
            Error::UnanchoredUnlabeled { unlabeled_index } => write!(
                f,
                "unlabeled vertex {unlabeled_index} is not connected to any labeled vertex"
            ),
            Error::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            Error::ZeroKernelMass { unlabeled_index } => write!(
                f,
                "unlabeled vertex {unlabeled_index} has zero kernel mass on the labeled set"
            ),
            Error::NonFiniteValue { context, index } => write!(
                f,
                "non-finite value (NaN or infinity) at {context}, element {index}"
            ),
            Error::Linalg(inner) => write!(f, "linear algebra error: {inner}"),
            Error::Graph(inner) => write!(f, "graph error: {inner}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Linalg(inner) => Some(inner),
            Error::Graph(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<gssl_linalg::Error> for Error {
    fn from(inner: gssl_linalg::Error) -> Self {
        // Keep the sanitizer's verdict first-class instead of burying it
        // under the linalg wrapper: callers match on one variant whether
        // the non-finite value was caught here or a layer below.
        match inner {
            gssl_linalg::Error::NonFiniteValue { context, index } => {
                Error::NonFiniteValue { context, index }
            }
            other => Error::Linalg(other),
        }
    }
}

impl From<gssl_graph::Error> for Error {
    fn from(inner: gssl_graph::Error) -> Self {
        Error::Graph(inner)
    }
}

impl From<gssl_runtime::Error> for Error {
    fn from(inner: gssl_runtime::Error) -> Self {
        // Runtime failures (zero chunk width, a lost batch slot) are
        // configuration/protocol problems, not modelling ones.
        Error::InvalidParameter {
            message: inner.to_string(),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::InvalidProblem {
            message: "labels empty".into()
        }
        .to_string()
        .contains("labels empty"));
        assert!(Error::UnanchoredUnlabeled { unlabeled_index: 3 }
            .to_string()
            .contains("vertex 3"));
        assert!(Error::ZeroKernelMass { unlabeled_index: 0 }
            .to_string()
            .contains("kernel mass"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let e: Error = gssl_linalg::Error::Singular { pivot: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
        let g: Error = gssl_graph::Error::InvalidBandwidth { value: -1.0 }.into();
        assert!(g.to_string().contains("bandwidth"));
    }
}
