//! Per-request latency and throughput counters for the serving engine.
//!
//! The engine records one latency sample per query (seconds, measured
//! around the out-of-sample extension) plus monotone counters for
//! factorizations, rank-1 updates and guarded refactorizations. Summaries
//! reuse the [`gssl_stats`] descriptive machinery, so p50/p99 follow the
//! same type-7 quantile rule as every other statistic in the workspace.

use crate::error::{Error, Result};
use gssl_linalg::FactorReport;
use gssl_stats::describe::{quantile, Summary};

/// Monotone counters and latency samples accumulated by one engine.
///
/// Snapshots are cheap value types; the engine hands them out through
/// [`crate::ServingEngine::metrics`] so callers never observe a lock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries answered since the engine was fitted.
    pub queries: usize,
    /// `predict_batch` calls since the engine was fitted.
    pub batches: usize,
    /// Matrix factorizations performed (1 after `fit`; grows only when a
    /// label update triggers the guarded full refactor — never on the
    /// query path).
    pub factorizations: usize,
    /// Sherman–Morrison rank-1 label updates applied to the cached
    /// factorization.
    pub rank1_updates: usize,
    /// Full refactorizations triggered by the residual guard or the
    /// periodic fallback.
    pub guarded_refactors: usize,
    /// Per-query latency samples, in seconds, in completion order.
    pub latencies: Vec<f64>,
    /// Wall-clock seconds spent inside `predict_batch` calls.
    pub batch_seconds: f64,
    /// Report of the most recent system factorization: backend, dimension,
    /// and — for iterative backends — the last solve's iteration count and
    /// final residual, so iteration-cap hits are observable in serving.
    pub last_factor: Option<FactorReport>,
}

impl MetricsSnapshot {
    /// Five-number summary of the per-query latencies.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] when no queries have been answered
    /// yet.
    pub fn latency_summary(&self) -> Result<Summary> {
        if self.latencies.is_empty() {
            return Err(Error::InvalidQuery {
                message: "no latency samples recorded yet".to_owned(),
            });
        }
        Summary::of(&self.latencies).map_err(|e| Error::Internal {
            message: format!("latency summary failed: {e}"),
        })
    }

    /// A latency quantile in seconds (`q` in `[0, 1]`; p50 is `0.5`, p99
    /// is `0.99`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] when no queries have been answered
    /// yet or `q` is out of range.
    pub fn latency_quantile(&self, q: f64) -> Result<f64> {
        if self.latencies.is_empty() {
            return Err(Error::InvalidQuery {
                message: "no latency samples recorded yet".to_owned(),
            });
        }
        quantile(&self.latencies, q).map_err(|e| Error::InvalidQuery {
            message: format!("latency quantile failed: {e}"),
        })
    }

    /// Mean sustained throughput in queries per second over all batches.
    ///
    /// Returns 0 when no batch time has been accumulated (e.g. before the
    /// first `predict_batch`).
    pub fn throughput(&self) -> f64 {
        if self.batch_seconds > 0.0 {
            self.queries as f64 / self.batch_seconds
        } else {
            0.0
        }
    }
}

/// Internal mutable counters; the engine keeps one behind a mutex and
/// exposes value snapshots.
#[derive(Debug, Clone, Default)]
pub(crate) struct ServeMetrics {
    snapshot: MetricsSnapshot,
}

impl ServeMetrics {
    /// Records the initial (or a repeated full) factorization.
    pub(crate) fn record_factorization(&mut self) {
        self.snapshot.factorizations += 1;
    }

    /// Records one applied rank-1 update.
    pub(crate) fn record_rank1_update(&mut self) {
        self.snapshot.rank1_updates += 1;
    }

    /// Records a guarded full refactorization (also a factorization).
    pub(crate) fn record_guarded_refactor(&mut self) {
        self.snapshot.guarded_refactors += 1;
        self.snapshot.factorizations += 1;
    }

    /// Records the latest factorization's backend report.
    pub(crate) fn record_factor_report(&mut self, report: FactorReport) {
        self.snapshot.last_factor = Some(report);
    }

    /// Records a completed batch: per-query latencies and the batch wall
    /// time.
    pub(crate) fn record_batch(&mut self, latencies: &[f64], batch_seconds: f64) {
        self.snapshot.batches += 1;
        self.snapshot.queries += latencies.len();
        self.snapshot.latencies.extend_from_slice(latencies);
        self.snapshot.batch_seconds += batch_seconds;
    }

    /// Value snapshot of the current counters.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = ServeMetrics::default();
        m.record_factorization();
        m.record_rank1_update();
        m.record_rank1_update();
        m.record_guarded_refactor();
        m.record_batch(&[0.5, 1.5], 2.0);
        m.record_batch(&[1.0], 1.0);
        let s = m.snapshot();
        assert_eq!(s.factorizations, 2); // initial + guarded
        assert_eq!(s.rank1_updates, 2);
        assert_eq!(s.guarded_refactors, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.queries, 3);
        assert_eq!(s.latencies, vec![0.5, 1.5, 1.0]);
        assert!((s.throughput() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn latency_statistics() {
        let mut m = ServeMetrics::default();
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        m.record_batch(&samples, 100.0);
        let s = m.snapshot();
        let summary = s.latency_summary().unwrap();
        assert_eq!(summary.count, 100);
        assert!((summary.median - 50.5).abs() < 1e-12);
        assert!((s.latency_quantile(0.5).unwrap() - 50.5).abs() < 1e-12);
        // Type-7 p99 of 1..=100 interpolates between 99 and 100.
        assert!((s.latency_quantile(0.99).unwrap() - 99.01).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_graceful() {
        let s = MetricsSnapshot::default();
        assert!(s.latency_summary().is_err());
        assert!(s.latency_quantile(0.5).is_err());
        assert_eq!(s.throughput(), 0.0);
    }
}
