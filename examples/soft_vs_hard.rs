//! Propositions II.1 and II.2 on one dataset: sweep λ from tiny to huge
//! and watch the soft criterion slide from the (consistent) hard solution
//! to the (inconsistent) constant labeled mean.
//!
//! ```text
//! cargo run --release --example soft_vs_hard
//! ```

use gssl::{HardCriterion, MeanPredictor, Problem, SoftCriterion};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use gssl_stats::metrics::rmse;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m) = (150, 30);
    let mut rng = StdRng::seed_from_u64(99);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng)?;
    let ssl = ds.arrange_prefix(n)?;
    let truth = ssl.hidden_truth.as_ref().expect("synthetic truth");

    let h = paper_rate(n, PAPER_DIM)?;
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h)?;
    let problem = Problem::new(w, ssl.labels.clone())?;

    let hard = HardCriterion::new().fit(&problem)?;
    let mean = MeanPredictor::new().fit(&problem)?;
    let hard_rmse = rmse(truth, hard.unlabeled())?;
    let mean_rmse = rmse(truth, mean.unlabeled())?;

    println!("n = {n}, m = {m}, Model 1, sigma = h_n = {h:.3}\n");
    println!(
        "{:>10}  {:>10}  {:>14}  {:>14}",
        "lambda", "RMSE", "max gap->hard", "max gap->mean"
    );
    println!(
        "{:>10}  {:>10.4}  {:>14}  {:>14}",
        "0 (hard)", hard_rmse, "0", "-"
    );
    for &lambda in &[1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 50.0, 500.0] {
        let soft = SoftCriterion::new(lambda)?.fit(&problem)?;
        let gap_hard = soft
            .unlabeled()
            .iter()
            .zip(hard.unlabeled())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let gap_mean = soft
            .unlabeled()
            .iter()
            .zip(mean.unlabeled())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{lambda:>10}  {:>10.4}  {gap_hard:>14.6}  {gap_mean:>14.6}",
            rmse(truth, soft.unlabeled())?
        );
    }
    println!(
        "{:>10}  {:>10.4}  {:>14}  {:>14}",
        "infinity", mean_rmse, "-", "0"
    );

    println!("\nReading: RMSE is smallest at the hard end (Prop II.1 / Thm II.1)");
    println!("and approaches the mean predictor's as λ grows (Prop II.2).");
    Ok(())
}
