//! Symmetric eigendecomposition by the cyclic Jacobi rotation method.
//!
//! Graph Laplacians are symmetric, and their spectra carry the structure
//! graph-based SSL exploits: the multiplicity of eigenvalue 0 counts
//! connected components, the Fiedler (second-smallest) eigenvector cuts
//! the graph along its sparsest bottleneck, and the spectral gap controls
//! how fast label propagation mixes. Jacobi rotations are exactly the
//! right tool at the problem sizes of this workspace: unconditionally
//! stable, simple, and accurate to machine precision.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Options for the Jacobi eigensolver.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenOptions {
    /// Maximum number of full sweeps over all off-diagonal pairs
    /// (0 means 100; convergence is typically < 15 sweeps).
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm, relative
    /// to the matrix norm.
    pub tolerance: f64,
}

impl Default for EigenOptions {
    fn default() -> Self {
        EigenOptions {
            max_sweeps: 0,
            tolerance: 1e-12,
        }
    }
}

/// A symmetric eigendecomposition `A = V Λ Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    eigenvalues: Vector,
    /// Orthonormal eigenvectors as columns, aligned with
    /// [`SymmetricEigen::eigenvalues`].
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Eigenvalues in ascending order.
    /// shape: (n,)
    pub fn eigenvalues(&self) -> &Vector {
        &self.eigenvalues
    }

    /// Orthonormal eigenvectors as matrix columns (column `k` pairs with
    /// eigenvalue `k`).
    /// shape: (n, n)
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// The `k`-th eigenvector as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range.
    /// shape: (n,)
    pub fn eigenvector(&self, k: usize) -> Vector {
        self.eigenvectors.col(k)
    }
}

/// Computes the full eigendecomposition of a symmetric matrix by cyclic
/// Jacobi rotations.
///
/// Only the lower triangle is read; symmetry is the caller's
/// responsibility ([`Matrix::is_symmetric`]).
///
/// # Errors
///
/// * [`Error::NotSquare`] when `a` is not square.
/// * [`Error::NotConverged`] when the sweep budget runs out (rare; the
///   method converges quadratically).
///
/// ```
/// use gssl_linalg::{symmetric_eigen, EigenOptions, Matrix};
/// # fn main() -> Result<(), gssl_linalg::Error> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = symmetric_eigen(&a, &EigenOptions::default())?;
/// let values = eig.eigenvalues();
/// assert!((values[0] - 1.0).abs() < 1e-12);
/// assert!((values[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn symmetric_eigen(a: &Matrix, options: &EigenOptions) -> Result<SymmetricEigen> {
    if !a.is_square() {
        return Err(Error::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: Vector::new(),
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let max_sweeps = if options.max_sweeps == 0 {
        100
    } else {
        options.max_sweeps
    };
    // Work on a symmetrized copy so tiny asymmetries don't bias rotations.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = Matrix::identity(n);
    let scale = m.norm_frobenius().max(f64::MIN_POSITIVE);
    let threshold = options.tolerance * scale;

    for _sweep in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off <= threshold {
            return Ok(sorted_decomposition(&m, &v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= threshold / (n * n) as f64 {
                    continue;
                }
                // Classic Jacobi rotation annihilating (p, q).
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the rotation into V.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let off = off_diagonal_norm(&m);
    if off <= threshold {
        Ok(sorted_decomposition(&m, &v))
    } else {
        Err(Error::NotConverged {
            iterations: max_sweeps,
            residual: off,
        })
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let x = m.get(i, j);
            sum += 2.0 * x * x;
        }
    }
    sum.sqrt()
}

fn sorted_decomposition(m: &Matrix, v: &Matrix) -> SymmetricEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m.get(a, a).total_cmp(&m.get(b, b)));
    let eigenvalues: Vector = order.iter().map(|&k| m.get(k, k)).collect();
    let eigenvectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(eig: &SymmetricEigen) -> Matrix {
        let v = eig.eigenvectors();
        let lambda = Matrix::from_diag(eig.eigenvalues().as_slice());
        v.matmul(&lambda).unwrap().matmul(&v.transpose()).unwrap()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        assert_eq!(eig.eigenvalues().as_slice(), &[-1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
        // Eigenvector of 3 is (1, 1)/√2 up to sign.
        let v = eig.eigenvector(1);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        // A random-ish symmetric matrix.
        let base = Matrix::from_fn(8, 8, |i, j| ((i * 13 + j * 7) as f64 * 0.37).sin());
        let a = &base + &base.transpose();
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        assert!(reconstruct(&eig).approx_eq(&a, 1e-9));
        let vtv = eig
            .eigenvectors()
            .transpose()
            .matmul(eig.eigenvectors())
            .unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(8), 1e-10));
        // Ascending order.
        for pair in eig.eigenvalues().as_slice().windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn laplacian_spectrum_counts_components() {
        // Two disjoint edges: Laplacian eigenvalues {0, 0, 2, 2}.
        let w = Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0],
            &[0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap();
        let mut l = w.map(|x| -x);
        for i in 0..4 {
            l.set(i, i, 1.0);
        }
        let eig = symmetric_eigen(&l, &EigenOptions::default()).unwrap();
        let values = eig.eigenvalues();
        assert!(values[0].abs() < 1e-12);
        assert!(values[1].abs() < 1e-12); // two zero eigenvalues = two components
        assert!((values[2] - 2.0).abs() < 1e-12);
        assert!((values[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trace_and_determinant_identities() {
        let base = Matrix::from_fn(6, 6, |i, j| ((i + 2 * j) as f64 * 0.53).cos());
        let a = &base + &base.transpose();
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        let trace: f64 = eig.eigenvalues().sum();
        assert!((trace - a.trace().unwrap()).abs() < 1e-9);
        let det_eig: f64 = eig.eigenvalues().iter().product();
        let det_lu = crate::lu::Lu::factor(&a).map(|lu| lu.det()).unwrap_or(0.0);
        assert!((det_eig - det_lu).abs() < 1e-6 * det_lu.abs().max(1.0));
    }

    #[test]
    fn rejects_non_square_and_handles_empty() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3), &EigenOptions::default()).is_err());
        let empty = symmetric_eigen(&Matrix::zeros(0, 0), &EigenOptions::default()).unwrap();
        assert!(empty.eigenvalues().is_empty());
    }

    #[test]
    fn budget_exhaustion_reported() {
        let base = Matrix::from_fn(10, 10, |i, j| ((i * 3 + j) as f64).sin());
        let a = &base + &base.transpose();
        let opts = EigenOptions {
            max_sweeps: 1,
            tolerance: 1e-15,
        };
        // One sweep is usually not enough at this tolerance.
        let result = symmetric_eigen(&a, &opts);
        if let Err(e) = result {
            assert!(matches!(e, Error::NotConverged { .. }));
        }
    }

    #[test]
    fn matches_power_iteration_dominant_value() {
        let base = Matrix::from_fn(7, 7, |i, j| ((i * 5 + j * 3) as f64 * 0.29).sin());
        let a = &base + &base.transpose();
        let eig = symmetric_eigen(&a, &EigenOptions::default()).unwrap();
        let dominant =
            eig.eigenvalues()
                .iter()
                .fold(0.0f64, |acc, v| if v.abs() > acc.abs() { v } else { acc });
        // Cross-check with a crude power iteration on A.
        let mut x = vec![1.0; 7];
        let mut lambda = 0.0;
        for _ in 0..500 {
            let y = a.matvec(&Vector::from(x.as_slice())).unwrap();
            let norm = y.norm_l2();
            lambda = x.iter().zip(y.as_slice()).map(|(a, b)| a * b).sum::<f64>();
            x = y.as_slice().iter().map(|v| v / norm).collect();
        }
        assert!((lambda.abs() - dominant.abs()).abs() < 1e-6);
    }
}
