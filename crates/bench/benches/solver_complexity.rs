//! The paper's complexity remark, measured: solving the hard criterion
//! costs `O(m³)` while the soft criterion costs `O((m+n)³)` (full system)
//! or `O(n³ + m³)` (block form of Eq. 4). With `n ≫ m` the hard solve is
//! dramatically cheaper — "another advantage of the hard criterion".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gssl::{HardCriterion, HardSolver, Problem, SoftCriterion, SweepKind};
use gssl_datasets::synthetic::{paper_dataset, PaperModel, PAPER_DIM};
use gssl_graph::{affinity::affinity_matrix, bandwidth::paper_rate, Kernel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_problem(n: usize, m: usize) -> Problem {
    let mut rng = StdRng::seed_from_u64(1);
    let ds = paper_dataset(PaperModel::Linear, n + m, &mut rng).expect("generation");
    let ssl = ds.arrange_prefix(n).expect("arrangement");
    let h = paper_rate(n, PAPER_DIM).expect("rate");
    let w = affinity_matrix(&ssl.inputs, Kernel::Gaussian, h).expect("affinity");
    Problem::new(w, ssl.labels.clone()).expect("valid problem")
}

/// Hard vs soft at fixed labeled size: the hard criterion only factors
/// the m×m block.
fn bench_hard_vs_soft(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard_vs_soft_n200");
    group.sample_size(10);
    for &m in &[20usize, 50, 100, 200] {
        let problem = build_problem(200, m);
        group.bench_with_input(BenchmarkId::new("hard", m), &problem, |b, p| {
            b.iter(|| HardCriterion::new().fit(p).expect("hard fit"));
        });
        group.bench_with_input(BenchmarkId::new("soft_block", m), &problem, |b, p| {
            let soft = SoftCriterion::new(0.1).expect("lambda");
            b.iter(|| soft.fit(p).expect("soft fit"));
        });
        group.bench_with_input(BenchmarkId::new("soft_full", m), &problem, |b, p| {
            let soft = SoftCriterion::new(0.1).expect("lambda");
            b.iter(|| soft.fit_full_system(p).expect("soft full fit"));
        });
    }
    group.finish();
}

/// The m³ scaling of the hard solve in isolation (n fixed and large).
fn bench_hard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard_scaling_in_m");
    group.sample_size(10);
    for &m in &[25usize, 50, 100, 200] {
        let problem = build_problem(300, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &problem, |b, p| {
            b.iter(|| HardCriterion::new().fit(p).expect("hard fit"));
        });
    }
    group.finish();
}

/// Backend ablation: direct, CG and propagation backends on one problem.
fn bench_hard_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard_backends_n200_m100");
    group.sample_size(10);
    let problem = build_problem(200, 100);
    let backends: Vec<(&str, HardCriterion)> = vec![
        ("cholesky", HardCriterion::new()),
        ("lu", HardCriterion::new().solver(HardSolver::Lu)),
        (
            "conjugate_gradient",
            HardCriterion::new().solver(HardSolver::ConjugateGradient(Default::default())),
        ),
        (
            "propagation_jacobi",
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::Simultaneous)),
        ),
        (
            "propagation_gauss_seidel",
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::InPlace)),
        ),
    ];
    for (name, solver) in backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), &solver, |b, s| {
            b.iter(|| s.fit(&problem).expect("fit succeeds"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hard_vs_soft,
    bench_hard_scaling,
    bench_hard_backends
);
criterion_main!(benches);
