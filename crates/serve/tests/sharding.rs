//! Integration contracts for the shard-decomposed serving stack:
//!
//! * sharded predictions are **bitwise** identical to the monolithic
//!   engine on multi-component graphs (hard, soft and multiclass, under
//!   the direct solver route);
//! * epoch label folds agree with fully refitted twins to `1e-10`;
//! * snapshot → restore → predict round-trips are bitwise;
//! * the admission-controlled batch queue conserves queries end to end.

use gssl_graph::Kernel;
use gssl_linalg::Matrix;
use gssl_serve::{
    Admission, BatchPolicy, BatchQueue, EngineConfig, Prediction, QueryPoint, ServeCriterion,
    ServingEngine, ShardedEngine,
};

/// Three interleaved 1-D clusters (node `i` sits in cluster `i % 3`), so
/// shard membership is scattered through the global index space — the
/// hardest layout for the reassembly bookkeeping. Labeled-first: nodes
/// 0, 1, 2 land one per cluster.
fn clustered_points(total: usize) -> Matrix {
    Matrix::from_fn(total, 1, |i, _| {
        let cluster = (i % 3) as f64;
        let jitter = (((i * 37 + 11) as f64) * 0.618_033_988_749_894_9).fract();
        cluster * 10.0 + jitter
    })
}

fn compact_config() -> EngineConfig {
    EngineConfig::new(Kernel::Epanechnikov, 1.6).workers(1)
}

fn in_cluster_queries(count: usize) -> Vec<QueryPoint> {
    (0..count)
        .map(|q| {
            let cluster = (q % 3) as f64;
            let jitter = (((q * 53 + 5) as f64) * 0.618_033_988_749_894_9).fract();
            QueryPoint::new(vec![cluster * 10.0 + jitter])
        })
        .collect()
}

fn assert_bitwise(a: &[Prediction], b: &[Prediction], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: prediction counts differ");
    for (qi, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.class, y.class, "{what}: class diverged at query {qi}");
        assert_eq!(
            x.per_class.len(),
            y.per_class.len(),
            "{what}: class-width diverged at query {qi}"
        );
        for (c, (u, v)) in x.per_class.iter().zip(&y.per_class).enumerate() {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{what}: query {qi} class {c}: {u} vs {v} differ in bits"
            );
        }
    }
}

fn assert_scores_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a.get(i, j).to_bits(),
                b.get(i, j).to_bits(),
                "{what}: score ({i}, {j}) differs in bits"
            );
        }
    }
}

#[test]
fn sharded_matches_monolithic_bitwise_hard() {
    let points = clustered_points(24);
    let labels = [0.0, 1.0, 0.0];
    let mono = ServingEngine::fit(&points, &labels, compact_config()).unwrap();
    let sharded = ShardedEngine::fit(&points, &labels, compact_config()).unwrap();
    assert_eq!(sharded.n_shards(), 3, "expected a genuine decomposition");
    assert_scores_bitwise(mono.scores(), &sharded.scores(), "hard fit");
    let queries = in_cluster_queries(18);
    assert_bitwise(
        &mono.predict_batch(&queries).unwrap(),
        &sharded.predict_batch(&queries).unwrap(),
        "hard predictions",
    );
}

#[test]
fn sharded_matches_monolithic_bitwise_soft() {
    let points = clustered_points(21);
    let labels = [0.0, 1.0, 1.0];
    let config = compact_config().criterion(ServeCriterion::Soft { lambda: 0.4 });
    let mono = ServingEngine::fit(&points, &labels, config.clone()).unwrap();
    let sharded = ShardedEngine::fit(&points, &labels, config).unwrap();
    assert_eq!(sharded.n_shards(), 3);
    assert_scores_bitwise(mono.scores(), &sharded.scores(), "soft fit");
    let queries = in_cluster_queries(15);
    assert_bitwise(
        &mono.predict_batch(&queries).unwrap(),
        &sharded.predict_batch(&queries).unwrap(),
        "soft predictions",
    );
}

#[test]
fn sharded_matches_monolithic_bitwise_multiclass() {
    let points = clustered_points(27);
    let class_labels = [0, 1, 2];
    let mono = ServingEngine::fit_multiclass(&points, &class_labels, 3, compact_config()).unwrap();
    let sharded =
        ShardedEngine::fit_multiclass(&points, &class_labels, 3, compact_config()).unwrap();
    assert_eq!(sharded.n_shards(), 3);
    assert_scores_bitwise(mono.scores(), &sharded.scores(), "multiclass fit");
    let queries = in_cluster_queries(12);
    let out = sharded.predict_batch(&queries).unwrap();
    assert_bitwise(&mono.predict_batch(&queries).unwrap(), &out, "multiclass");
    // Queries land in their own cluster's class.
    for (q, p) in out.iter().enumerate() {
        assert_eq!(p.class, q % 3, "query {q} crossed clusters");
    }
}

#[test]
fn sharded_folds_track_monolithic_folds_bitwise() {
    // The fold path too: the same label stream through both engines.
    // Each shard-local rank-1 chain sees exactly the same numbers the
    // monolithic chain produces for that block, so even folds agree in
    // bits under the direct route.
    let points = clustered_points(18);
    let labels = [0.0, 1.0, 0.0];
    let mut mono = ServingEngine::fit(&points, &labels, compact_config()).unwrap();
    let sharded = ShardedEngine::fit(&points, &labels, compact_config()).unwrap();
    for (node, y) in [(7, 1.0), (11, 0.0), (9, 1.0)] {
        mono.observe_label(node, y).unwrap();
        sharded.observe_label(node, y).unwrap();
    }
    assert_eq!(sharded.epoch(), 4);
    assert_scores_bitwise(mono.scores(), &sharded.scores(), "after folds");
    let queries = in_cluster_queries(9);
    assert_bitwise(
        &mono.predict_batch(&queries).unwrap(),
        &sharded.predict_batch(&queries).unwrap(),
        "post-fold predictions",
    );
}

#[test]
fn epoch_folds_agree_with_refit_twins() {
    // After every fold, a twin sharded engine fitted from scratch on the
    // enlarged labeled set must agree to 1e-10 — the rank-1 chains drift
    // only at rounding level.
    let points = clustered_points(18);
    let labels = [0.0, 1.0, 0.0];
    let folding = ShardedEngine::fit(&points, &labels, compact_config()).unwrap();

    let stream = [(7usize, 1.0), (5, 0.0), (10, 1.0)];
    let mut labeled: Vec<(usize, f64)> = vec![(0, 0.0), (1, 1.0), (2, 0.0)];
    for &(node, y) in &stream {
        folding.observe_label(node, y).unwrap();
        labeled.push((node, y));

        // Refit twin: same labeled set, labeled-first layout. Build a
        // permuted copy with the labeled nodes first.
        let mut order: Vec<usize> = labeled.iter().map(|&(n, _)| n).collect();
        let mut rest: Vec<usize> = (0..points.rows()).filter(|n| !order.contains(n)).collect();
        order.append(&mut rest);
        let perm_points = Matrix::from_fn(points.rows(), 1, |i, _| points.get(order[i], 0));
        let twin_labels: Vec<f64> = labeled.iter().map(|&(_, y)| y).collect();
        let twin = ShardedEngine::fit(&perm_points, &twin_labels, compact_config()).unwrap();

        let twin_scores = twin.scores();
        let fold_scores = folding.scores();
        for (twin_row, &global) in order.iter().enumerate() {
            let a = twin_scores.get(twin_row, 0);
            let b = fold_scores.get(global, 0);
            assert!(
                (a - b).abs() <= 1e-10,
                "node {global}: refit twin {a} vs folded {b} after labeling {node}"
            );
        }
    }
    assert_eq!(folding.epoch(), 1 + stream.len() as u64);
}

#[test]
fn snapshot_roundtrip_after_folds_is_bitwise() {
    let points = clustered_points(21);
    let labels = [0.0, 1.0, 1.0];
    let engine = ShardedEngine::fit(&points, &labels, compact_config()).unwrap();
    engine.observe_label(8, 0.0).unwrap();
    engine.observe_label(13, 1.0).unwrap();

    let bytes = engine.snapshot().unwrap();
    let restored = ShardedEngine::restore(&bytes).unwrap();
    assert_eq!(restored.epoch(), engine.epoch());
    assert_eq!(restored.n_shards(), engine.n_shards());
    assert_scores_bitwise(&engine.scores(), &restored.scores(), "restored scores");
    let queries = in_cluster_queries(12);
    assert_bitwise(
        &engine.predict_batch(&queries).unwrap(),
        &restored.predict_batch(&queries).unwrap(),
        "restored predictions",
    );

    // The restored engine is live: folds and further snapshots work.
    restored.observe_label(16, 0.0).unwrap();
    assert_eq!(restored.epoch(), engine.epoch() + 1);
    let again = ShardedEngine::restore(&restored.snapshot().unwrap()).unwrap();
    assert_scores_bitwise(&restored.scores(), &again.scores(), "second generation");
}

#[test]
fn sharded_serving_is_bitwise_across_worker_counts() {
    let points = clustered_points(24);
    let labels = [0.0, 1.0, 0.0];
    let queries = in_cluster_queries(30);
    let reference = ShardedEngine::fit(&points, &labels, compact_config())
        .unwrap()
        .predict_batch(&queries)
        .unwrap();
    for workers in [2, 4, 8] {
        let engine =
            ShardedEngine::fit(&points, &labels, compact_config().workers(workers)).unwrap();
        assert_bitwise(
            &reference,
            &engine.predict_batch(&queries).unwrap(),
            &format!("workers = {workers}"),
        );
    }
}

#[test]
fn batch_queue_conserves_queries_end_to_end() {
    let points = clustered_points(18);
    let labels = [0.0, 1.0, 0.0];
    let engine = ShardedEngine::fit(&points, &labels, compact_config()).unwrap();

    let queries = in_cluster_queries(23);
    let direct = engine.predict_batch(&queries).unwrap();

    // Push the whole stream through a size-4/deadline-bounded queue with
    // admission control wide enough to accept everything, serving each
    // released batch against the engine.
    let mut queue = BatchQueue::new(BatchPolicy::new(4, 0.25, 64)).unwrap();
    let mut served: Vec<(u64, Prediction)> = Vec::new();
    for (i, query) in queries.iter().cloned().enumerate() {
        let now = i as f64 * 0.1;
        match queue.offer(query, now) {
            Admission::Admitted { ticket } => assert_eq!(ticket, i as u64),
            Admission::Rejected { .. } => panic!("capacity 64 must admit all 23"),
        }
        while let Some(batch) = queue.pop_ready(now) {
            let out = engine.predict_batch(&batch.queries).unwrap();
            served.extend(batch.tickets.iter().copied().zip(out));
        }
    }
    let end = queries.len() as f64 * 0.1;
    while let Some(batch) = queue.flush(end) {
        let out = engine.predict_batch(&batch.queries).unwrap();
        served.extend(batch.tickets.iter().copied().zip(out));
    }

    // Conservation: every admitted query served exactly once, and the
    // coalesced answers equal the direct batch bit for bit.
    assert_eq!(served.len(), queries.len());
    served.sort_by_key(|&(ticket, _)| ticket);
    for (i, (ticket, prediction)) in served.iter().enumerate() {
        assert_eq!(*ticket, i as u64);
        assert_eq!(
            prediction, &direct[i],
            "query {i} diverged through the queue"
        );
    }
    assert_eq!(queue.admitted(), queries.len() as u64);
    assert_eq!(queue.rejected(), 0);
}

#[test]
fn single_component_graph_degenerates_to_one_shard() {
    // A Gaussian kernel never truncates: one component, one shard, and
    // the sharded engine still matches the monolithic one bitwise.
    let points = Matrix::from_fn(12, 1, |i, _| i as f64 * 0.4);
    let labels = [0.0, 1.0];
    let config = EngineConfig::new(Kernel::Gaussian, 0.9).workers(1);
    let mono = ServingEngine::fit(&points, &labels, config.clone()).unwrap();
    let sharded = ShardedEngine::fit(&points, &labels, config).unwrap();
    assert_eq!(sharded.n_shards(), 1);
    assert_scores_bitwise(mono.scores(), &sharded.scores(), "single component");
    let queries: Vec<QueryPoint> = (0..8)
        .map(|q| QueryPoint::new(vec![q as f64 * 0.55]))
        .collect();
    assert_bitwise(
        &mono.predict_batch(&queries).unwrap(),
        &sharded.predict_batch(&queries).unwrap(),
        "single-component predictions",
    );
}
