//! Runtime numeric sanitizer.
//!
//! With the `strict-checks` cargo feature enabled, the checks in this
//! module verify finiteness (and, where relevant, symmetry) of solver
//! inputs and outputs at every solver boundary — LU, Cholesky, conjugate
//! gradients, and (via `gssl`) the paper's criteria. A NaN or infinity is
//! reported as [`Error::NonFiniteValue`] at the boundary where it first
//! appears instead of silently propagating through the arithmetic.
//!
//! Without the feature every function here compiles to a no-op returning
//! `Ok(())`, so release builds pay nothing.

#[cfg(feature = "strict-checks")]
use crate::error::Error;
use crate::error::Result;
use crate::matrix::Matrix;

/// Checks that every element of `values` is finite.
///
/// `context` names the boundary being guarded (e.g. `"lu.factor input"`)
/// and is embedded in the error report.
///
/// # Errors
///
/// With `strict-checks` enabled, returns [`Error::NonFiniteValue`] naming
/// the first offending flat index. Always `Ok(())` otherwise.
pub fn check_finite(context: &'static str, values: &[f64]) -> Result<()> {
    #[cfg(feature = "strict-checks")]
    {
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue { context, index });
        }
    }
    #[cfg(not(feature = "strict-checks"))]
    let _ = (context, values);
    Ok(())
}

/// Checks that every entry of `matrix` is finite.
///
/// # Errors
///
/// With `strict-checks` enabled, returns [`Error::NonFiniteValue`] with
/// the flat (row-major) index of the first offending entry. Always
/// `Ok(())` otherwise.
pub fn check_finite_matrix(context: &'static str, matrix: &Matrix) -> Result<()> {
    check_finite(context, matrix.as_slice())
}

/// Checks that `matrix` is symmetric to within `tol` (absolute).
///
/// Used by the sanitizer on Laplacian blocks: the systems produced by both
/// of the paper's criteria are symmetric by construction, so asymmetry at
/// a solver boundary means an upstream indexing or assembly bug.
///
/// # Errors
///
/// With `strict-checks` enabled, returns [`Error::InvalidArgument`] when a
/// pair of mirrored entries differs by more than `tol`. Always `Ok(())`
/// otherwise.
pub fn check_symmetric(context: &'static str, matrix: &Matrix, tol: f64) -> Result<()> {
    #[cfg(feature = "strict-checks")]
    {
        if !matrix.is_symmetric(tol) {
            return Err(Error::InvalidArgument {
                message: format!("{context}: matrix is not symmetric (tolerance {tol:e})"),
            });
        }
    }
    #[cfg(not(feature = "strict-checks"))]
    let _ = (context, matrix, tol);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "strict-checks")]
    #[test]
    fn reports_first_non_finite_index() {
        let err = check_finite("test boundary", &[0.0, f64::NAN, f64::INFINITY]).unwrap_err();
        assert!(matches!(
            err,
            Error::NonFiniteValue {
                context: "test boundary",
                index: 1
            }
        ));
    }

    #[cfg(feature = "strict-checks")]
    #[test]
    fn rejects_asymmetric_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(check_symmetric("test boundary", &m, 1e-12).is_err());
        assert!(check_symmetric("test boundary", &m, 2.0).is_ok());
    }

    #[cfg(not(feature = "strict-checks"))]
    #[test]
    fn disabled_checks_accept_anything() {
        assert!(check_finite("off", &[f64::NAN]).is_ok());
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(check_symmetric("off", &m, 0.0).is_ok());
    }

    #[test]
    fn finite_data_always_passes() {
        assert!(check_finite("ok", &[1.0, -2.0, 0.0]).is_ok());
        assert!(check_finite_matrix("ok", &Matrix::identity(3)).is_ok());
        assert!(check_symmetric("ok", &Matrix::identity(3), 0.0).is_ok());
    }
}
