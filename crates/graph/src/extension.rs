//! Out-of-sample kernel extension: evaluating the fitted similarity
//! kernel between a *new* point and every vertex of an existing graph.
//!
//! The paper's Theorem II.1 couples the hard criterion to the
//! Nadaraya–Watson estimator (Eq. 6), whose form
//! `f(x) = Σᵢ w(x, xᵢ) fᵢ / Σᵢ w(x, xᵢ)` extends graph predictions to
//! points that were not part of the original graph. The one graph-side
//! primitive that extension needs is the *kernel row* `[w(x, x₁), …,
//! w(x, x_N)]` evaluated with the same kernel and bandwidth the graph was
//! fitted with — that is what [`KernelGraph::kernel_row`] provides.

use crate::affinity::{affinity_matrix, affinity_matrix_with};
use crate::error::{Error, Result};
use crate::kernel::Kernel;
use gssl_linalg::{Matrix, Vector};

/// A kernel graph frozen at fit time: the point cloud together with the
/// kernel and bandwidth that generated its affinity matrix.
///
/// Unlike the free functions in [`crate::affinity`], this type remembers
/// the fitted bandwidth, so out-of-sample rows are guaranteed to be
/// computed with exactly the weights the in-sample matrix used.
///
/// ```
/// use gssl_graph::{Kernel, KernelGraph};
/// use gssl_linalg::Matrix;
/// # fn main() -> Result<(), gssl_graph::Error> {
/// let pts = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]])?;
/// let graph = KernelGraph::fit(pts, Kernel::Gaussian, 0.5)?;
/// let row = graph.kernel_row(&[0.0, 0.0])?;
/// // The row at an existing vertex reproduces that vertex's affinity row.
/// assert_eq!(row.as_slice(), graph.weights()?.row(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelGraph {
    points: Matrix,
    kernel: Kernel,
    bandwidth: f64,
}

impl KernelGraph {
    /// Freezes a point cloud (rows are points) with a kernel and a
    /// concrete bandwidth.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] when `points` has no rows or no columns.
    /// * [`Error::InvalidBandwidth`] when `bandwidth <= 0` or non-finite.
    /// * [`Error::InvalidArgument`] when any coordinate is non-finite.
    /// deterministic
    pub fn fit(points: Matrix, kernel: Kernel, bandwidth: f64) -> Result<Self> {
        if points.rows() == 0 {
            return Err(Error::EmptyInput {
                required: "at least one point",
            });
        }
        if points.cols() == 0 {
            return Err(Error::EmptyInput {
                required: "at least one coordinate per point",
            });
        }
        if !bandwidth.is_finite() || !(bandwidth > 0.0) {
            return Err(Error::InvalidBandwidth { value: bandwidth });
        }
        if let Some(index) = points.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(Error::InvalidArgument {
                message: format!("graph point coordinate {index} is not finite"),
            });
        }
        Ok(KernelGraph {
            points,
            kernel,
            bandwidth,
        })
    }

    /// Number of graph vertices.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// Returns `true` when the graph has no vertices (impossible after
    /// construction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Input dimension `d`.
    pub fn dim(&self) -> usize {
        self.points.cols()
    }

    /// Borrows the fitted point cloud (rows are points).
    /// shape: (n, d)
    pub fn points(&self) -> &Matrix {
        &self.points
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The fitted bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The in-sample affinity matrix `W = [K(‖x_i − x_j‖/h)]`.
    ///
    /// # Errors
    ///
    /// Propagates affinity-construction errors (none for a constructed
    /// graph).
    /// shape: (n, n)
    /// deterministic
    pub fn weights(&self) -> Result<Matrix> {
        affinity_matrix(&self.points, self.kernel, self.bandwidth)
    }

    /// [`KernelGraph::weights`] assembled on `executor`: row blocks of the
    /// affinity matrix are computed in parallel, with output bit-identical
    /// to the sequential path at any worker count.
    ///
    /// # Errors
    ///
    /// Same as [`KernelGraph::weights`].
    /// shape: (n, n)
    /// deterministic
    pub fn weights_with(&self, executor: &gssl_runtime::Executor) -> Result<Matrix> {
        affinity_matrix_with(&self.points, self.kernel, self.bandwidth, executor)
    }

    /// The kernel row of a new point `x`: `[w(x, x₁), …, w(x, x_N)]`,
    /// evaluated with the fitted kernel and bandwidth — the `O(N·d)`
    /// primitive behind out-of-sample extension.
    ///
    /// When `x` coincides with graph vertex `i`, the returned row equals
    /// row `i` of [`KernelGraph::weights`] exactly.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `x.len() != self.dim()`.
    /// * [`Error::InvalidArgument`] when a coordinate of `x` is
    ///   non-finite.
    /// shape: (n,)
    /// hot
    /// complexity: O(n * d)
    /// deterministic
    pub fn kernel_row(&self, x: &[f64]) -> Result<Vector> {
        let mut row = vec![0.0; self.len()];
        self.kernel_row_into(x, &mut row)?;
        Ok(Vector::from(row))
    }

    /// [`KernelGraph::kernel_row`] into a caller-provided buffer, so batch
    /// callers can reuse one scratch row instead of allocating per query.
    ///
    /// The fitted bandwidth was validated at [`KernelGraph::fit`] time and
    /// squared distances are nonnegative by construction, so the loop runs
    /// validation-free per entry.
    ///
    /// # Errors
    ///
    /// Same as [`KernelGraph::kernel_row`], plus
    /// [`Error::DimensionMismatch`] when `out.len() != self.len()`.
    /// hot
    /// complexity: O(n * d)
    /// deterministic
    pub fn kernel_row_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
                index: 0,
            });
        }
        if out.len() != self.len() {
            return Err(Error::DimensionMismatch {
                expected: self.len(),
                actual: out.len(),
                index: 0,
            });
        }
        if let Some(index) = x.iter().position(|v| !v.is_finite()) {
            return Err(Error::InvalidArgument {
                message: format!("query coordinate {index} is not finite"),
            });
        }
        for (i, w) in out.iter_mut().enumerate() {
            let d2 = crate::bandwidth::squared_distance(x, self.points.row(i));
            *w = self.kernel.weight_unchecked(d2, self.bandwidth);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Matrix {
        Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.3, 0.7], &[2.0, 2.0]]).unwrap()
    }

    #[test]
    fn kernel_row_at_vertices_matches_pairwise_affinity() {
        for kernel in Kernel::all() {
            let graph = KernelGraph::fit(sample_points(), kernel, 0.8).unwrap();
            let w = graph.weights().unwrap();
            for i in 0..graph.len() {
                let row = graph.kernel_row(graph.points().row(i)).unwrap();
                for j in 0..graph.len() {
                    assert!(
                        (row.as_slice()[j] - w.get(i, j)).abs() < 1e-15,
                        "{kernel}: row {i} entry {j} disagrees with affinity matrix"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_row_honors_fitted_bandwidth() {
        let narrow = KernelGraph::fit(sample_points(), Kernel::Gaussian, 0.2).unwrap();
        let wide = KernelGraph::fit(sample_points(), Kernel::Gaussian, 2.0).unwrap();
        let q = [0.5, 0.5];
        let rn = narrow.kernel_row(&q).unwrap();
        let rw = wide.kernel_row(&q).unwrap();
        // Wider bandwidth means uniformly larger off-point weights.
        for (a, b) in rn.iter().zip(rw.iter()) {
            assert!(a < b);
        }
        // And the narrow row really used h = 0.2: check one entry by hand.
        let d2 = 0.5f64 * 0.5 + 0.5 * 0.5;
        assert!((rn.as_slice()[0] - (-d2 / (0.2 * 0.2)).exp()).abs() < 1e-15);
    }

    #[test]
    fn compact_kernel_far_query_row_is_zero() {
        let graph = KernelGraph::fit(sample_points(), Kernel::Boxcar, 0.5).unwrap();
        let row = graph.kernel_row(&[50.0, 50.0]).unwrap();
        assert!(row.iter().all(|w| w == 0.0));
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            KernelGraph::fit(Matrix::zeros(0, 2), Kernel::Gaussian, 1.0),
            Err(Error::EmptyInput { .. })
        ));
        assert!(matches!(
            KernelGraph::fit(Matrix::zeros(2, 0), Kernel::Gaussian, 1.0),
            Err(Error::EmptyInput { .. })
        ));
        assert!(matches!(
            KernelGraph::fit(sample_points(), Kernel::Gaussian, 0.0),
            Err(Error::InvalidBandwidth { .. })
        ));
        assert!(matches!(
            KernelGraph::fit(sample_points(), Kernel::Gaussian, f64::NAN),
            Err(Error::InvalidBandwidth { .. })
        ));
        let mut bad = sample_points();
        bad.set(1, 1, f64::NAN);
        assert!(matches!(
            KernelGraph::fit(bad, Kernel::Gaussian, 1.0),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn kernel_row_validates_queries() {
        let graph = KernelGraph::fit(sample_points(), Kernel::Gaussian, 1.0).unwrap();
        assert!(matches!(
            graph.kernel_row(&[1.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            graph.kernel_row(&[1.0, f64::INFINITY]),
            Err(Error::InvalidArgument { .. })
        ));
    }

    #[test]
    fn weights_with_matches_sequential_weights() {
        let pts = Matrix::from_fn(40, 2, |i, j| ((i * 9 + j * 4) as f64 * 0.23).sin());
        let graph = KernelGraph::fit(pts, Kernel::Gaussian, 0.6).unwrap();
        let w = graph.weights().unwrap();
        for workers in [1, 2, 4] {
            let executor = gssl_runtime::Executor::with_workers(workers);
            let w_par = graph.weights_with(&executor).unwrap();
            assert_eq!(w_par.as_slice(), w.as_slice(), "{workers} workers");
        }
    }

    #[test]
    fn accessors_report_fit_state() {
        let graph = KernelGraph::fit(sample_points(), Kernel::Tricube, 0.9).unwrap();
        assert_eq!(graph.len(), 4);
        assert!(!graph.is_empty());
        assert_eq!(graph.dim(), 2);
        assert_eq!(graph.kernel(), Kernel::Tricube);
        assert_eq!(graph.bandwidth(), 0.9);
        assert_eq!(graph.points().rows(), 4);
    }
}
