//! Exhaustive bounded-schedule verification of the thread pool's
//! chunk-claim protocol (strict-checks only).
//!
//! The `gssl_serve::sim` harness executes the production claim code
//! (`pool::claim` at the production `pool::chunk_size` width) under every
//! possible interleaving of claim and publish steps for a bounded batch,
//! checking that chunk claims stay disjoint, cover the batch exactly, and
//! that every worker terminates. Passing this grid is the proof cited by
//! the `relaxed_ordering` entry in `crates/xtask/analyze.baseline`: the
//! cursor's `fetch_add` total order alone is enough, no stronger memory
//! ordering required.

#![cfg(feature = "strict-checks")]

use gssl_serve::sim::enumerate_schedules;

#[test]
fn every_interleaving_is_disjoint_exhaustive_and_terminating() {
    // (batch length, pool workers) — chosen so the enumeration is
    // exhaustive yet finishes quickly; chunk widths of 1, 2 and 3 all
    // appear (chunk_size = max(1, len / (workers * 4))).
    let grid = [
        (1, 2),
        (2, 2),
        (3, 2),
        (4, 2),
        (5, 2),
        (6, 2),
        (2, 3),
        (3, 3),
        (4, 3),
        (16, 2), // chunk width 2
        (24, 2), // chunk width 3
    ];
    for (len, workers) in grid {
        let report = enumerate_schedules(len, workers)
            .unwrap_or_else(|e| panic!("len {len}, workers {workers}: {e}"));
        assert!(
            report.schedules >= 1,
            "len {len}, workers {workers}: no schedule enumerated"
        );
        let chunk = (len / (workers * 4)).max(1);
        assert_eq!(
            report.chunks,
            len.div_ceil(chunk),
            "len {len}, workers {workers}: wrong chunk count"
        );
    }
}

#[test]
fn schedule_space_grows_with_contention() {
    let solo = enumerate_schedules(4, 1).expect("workers=1");
    let pair = enumerate_schedules(4, 2).expect("workers=2");
    let trio = enumerate_schedules(4, 3).expect("workers=3");
    assert_eq!(solo.schedules, 1, "a single worker has a unique schedule");
    assert!(pair.schedules > solo.schedules);
    assert!(trio.schedules > pair.schedules);
}

#[test]
fn longest_schedule_counts_every_atomic_step() {
    // Each of the `ceil(len/chunk)` chunks takes a claim plus a publish,
    // and each worker ends on one failed claim.
    let report = enumerate_schedules(5, 2).expect("enumerate");
    assert_eq!(report.longest, 2 * report.chunks + 2);
}
