//! Matrix-free hard criterion on sparse (CSR) graphs.
//!
//! Dense `Problem`s store `(n+m)²` weights and factor an `m × m` system;
//! for kNN or ε-graphs with `O(k(n+m))` edges this module solves the same
//! harmonic system without densifying anything: the operator
//! `x ↦ (D₂₂ − W₂₂) x` is applied row-by-row from the CSR structure and
//! handed to conjugate gradient. This is the path a production deployment
//! takes once `n + m` reaches tens of thousands.

use crate::error::{Error, Result};
use crate::problem::Scores;
use gssl_linalg::{conjugate_gradient, CgOptions, CsrMatrix, LinearOperator, Vector};

/// A transductive problem over a sparse symmetric affinity graph.
///
/// ```
/// use gssl::SparseProblem;
/// use gssl_linalg::CsrMatrix;
/// # fn main() -> Result<(), gssl::Error> {
/// // Chain 0 - 1 - 2 with unit weights; vertex 0 labeled 1.
/// let w = CsrMatrix::from_triplets(3, 3, &[
///     (0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0),
/// ]).expect("valid triplets");
/// let problem = SparseProblem::new(w, vec![1.0])?;
/// let scores = problem.solve_hard(&Default::default())?;
/// // Everything connects to the single label: all scores are 1.
/// assert!((scores.unlabeled()[0] - 1.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseProblem {
    weights: CsrMatrix,
    labels: Vec<f64>,
    degrees: Vec<f64>,
}

impl SparseProblem {
    /// Creates a sparse problem.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProblem`] when the matrix is not square or
    /// not symmetric, weights are negative/non-finite, or the label count
    /// is empty or exceeds the vertex count.
    pub fn new(weights: CsrMatrix, labels: Vec<f64>) -> Result<Self> {
        if weights.rows() != weights.cols() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "affinity matrix must be square, got {}x{}",
                    weights.rows(),
                    weights.cols()
                ),
            });
        }
        if labels.is_empty() || labels.len() > weights.rows() {
            return Err(Error::InvalidProblem {
                message: format!(
                    "label count {} invalid for {} vertices",
                    labels.len(),
                    weights.rows()
                ),
            });
        }
        if labels.iter().any(|y| !y.is_finite()) {
            return Err(Error::InvalidProblem {
                message: "labels must be finite".to_owned(),
            });
        }
        for i in 0..weights.rows() {
            for (_, v) in weights.row_iter(i) {
                if !v.is_finite() || v < 0.0 {
                    return Err(Error::InvalidProblem {
                        message: "weights must be finite and nonnegative".to_owned(),
                    });
                }
            }
        }
        if !weights.is_symmetric(1e-9) {
            return Err(Error::InvalidProblem {
                message: "affinity matrix must be symmetric".to_owned(),
            });
        }
        let degrees = weights.row_sums();
        Ok(SparseProblem {
            weights,
            labels,
            degrees,
        })
    }

    /// Number of labeled vertices `n`.
    pub fn n_labeled(&self) -> usize {
        self.labels.len()
    }

    /// Number of unlabeled vertices `m`.
    pub fn n_unlabeled(&self) -> usize {
        self.weights.rows() - self.labels.len()
    }

    /// Borrows the sparse affinity matrix.
    /// shape: (total, total)
    pub fn weights(&self) -> &CsrMatrix {
        &self.weights
    }

    /// Borrows the observed labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Checks that every unlabeled vertex reaches a labeled vertex through
    /// positive-weight edges (BFS over the sparse structure).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnanchoredUnlabeled`] naming the first stranded
    /// vertex.
    pub fn require_anchored(&self) -> Result<()> {
        let total = self.weights.rows();
        let n = self.n_labeled();
        let mut reached = vec![false; total];
        let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
        for v in 0..n {
            reached[v] = true;
        }
        while let Some(v) = queue.pop_front() {
            for (j, w) in self.weights.row_iter(v) {
                if w > 0.0 && !reached[j] {
                    reached[j] = true;
                    queue.push_back(j);
                }
            }
        }
        match reached[n..].iter().position(|&r| !r) {
            None => Ok(()),
            Some(a) => Err(Error::UnanchoredUnlabeled { unlabeled_index: a }),
        }
    }

    /// Right-hand side `W₂₁ Y` of the hard system.
    fn unlabeled_rhs(&self) -> Vector {
        let n = self.n_labeled();
        let m = self.n_unlabeled();
        let mut rhs = Vector::zeros(m);
        for a in 0..m {
            let mut sum = 0.0;
            for (j, w) in self.weights.row_iter(n + a) {
                if j < n {
                    sum += w * self.labels[j];
                }
            }
            rhs[a] = sum;
        }
        rhs
    }

    /// Solves the hard criterion matrix-free with conjugate gradient.
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the system is singular.
    /// * [`Error::Linalg`] when CG exhausts its budget.
    pub fn solve_hard(&self, options: &CgOptions) -> Result<Scores> {
        self.require_anchored()?;
        if self.n_unlabeled() == 0 {
            return Ok(Scores::from_parts(&self.labels, &[]));
        }
        let operator = UnlabeledSystem { problem: self };
        let rhs = self.unlabeled_rhs();
        let outcome = conjugate_gradient(&operator, &rhs, options)?;
        Ok(Scores::from_parts(
            &self.labels,
            outcome.solution.as_slice(),
        ))
    }

    /// Solves the **soft criterion** `(V + λL) f = (Y; 0)` matrix-free
    /// with conjugate gradient (`λ > 0`; use [`SparseProblem::solve_hard`]
    /// for the λ = 0 limit).
    ///
    /// `V + λL` is symmetric positive definite exactly when every
    /// component of the graph contains a labeled vertex — the same
    /// anchoring condition as the hard criterion.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `lambda <= 0` or not finite.
    /// * [`Error::UnanchoredUnlabeled`] when a component has no label.
    /// * [`Error::Linalg`] when CG exhausts its budget.
    pub fn solve_soft(&self, lambda: f64, options: &CgOptions) -> Result<Scores> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error::InvalidParameter {
                message: format!(
                    "sparse soft criterion requires finite lambda > 0, got {lambda}; \
                     use solve_hard for lambda = 0"
                ),
            });
        }
        self.require_anchored()?;
        let n = self.n_labeled();
        let total = self.weights.rows();
        let operator = SoftSystem {
            problem: self,
            lambda,
        };
        let mut rhs = Vector::zeros(total);
        for (i, &y) in self.labels.iter().enumerate() {
            rhs[i] = y;
        }
        let outcome = conjugate_gradient(&operator, &rhs, options)?;
        let f = outcome.solution;
        Ok(Scores::from_parts(&f.as_slice()[..n], &f.as_slice()[n..]))
    }

    /// Solves the hard criterion by Jacobi label propagation over the
    /// sparse structure, returning scores and sweep count.
    ///
    /// # Errors
    ///
    /// * [`Error::UnanchoredUnlabeled`] when the system is singular.
    /// * [`Error::Linalg`] wrapping `NotConverged` on budget exhaustion.
    pub fn propagate(&self, max_sweeps: usize, tolerance: f64) -> Result<(Scores, usize)> {
        self.require_anchored()?;
        let n = self.n_labeled();
        let m = self.n_unlabeled();
        if m == 0 {
            return Ok((Scores::from_parts(&self.labels, &[]), 0));
        }
        let rhs = self.unlabeled_rhs();
        let mut f = vec![0.0; m];
        let mut next = vec![0.0; m];
        let budget = if max_sweeps == 0 { 100_000 } else { max_sweeps };
        for sweep in 1..=budget {
            let mut change = 0.0f64;
            for a in 0..m {
                let mut numerator = rhs[a];
                let mut diagonal = self.degrees[n + a];
                for (j, w) in self.weights.row_iter(n + a) {
                    if j == n + a {
                        diagonal -= w;
                    } else if j >= n {
                        numerator += w * f[j - n];
                    }
                }
                if diagonal <= 0.0 {
                    return Err(Error::UnanchoredUnlabeled { unlabeled_index: a });
                }
                let value = numerator / diagonal;
                change = change.max((value - f[a]).abs());
                next[a] = value;
            }
            std::mem::swap(&mut f, &mut next);
            if change <= tolerance {
                return Ok((Scores::from_parts(&self.labels, &f), sweep));
            }
        }
        Err(Error::Linalg(gssl_linalg::Error::NotConverged {
            iterations: budget,
            residual: f64::NAN,
        }))
    }
}

/// Matrix-free `x ↦ (V + λL) x = V x + λ(D − W) x` over the full graph.
struct SoftSystem<'a> {
    problem: &'a SparseProblem,
    lambda: f64,
}

impl LinearOperator for SoftSystem<'_> {
    fn dim(&self) -> usize {
        self.problem.weights.rows()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let n = self.problem.n_labeled();
        for (i, o) in out.iter_mut().enumerate() {
            let v_term = if i < n { x[i] } else { 0.0 };
            let mut wx = 0.0;
            for (j, w) in self.problem.weights.row_iter(i) {
                wx += w * x[j];
            }
            *o = v_term + self.lambda * (self.problem.degrees[i] * x[i] - wx);
        }
    }
}

/// Matrix-free `x ↦ (D₂₂ − W₂₂) x` over the sparse graph.
struct UnlabeledSystem<'a> {
    problem: &'a SparseProblem,
}

impl LinearOperator for UnlabeledSystem<'_> {
    fn dim(&self) -> usize {
        self.problem.n_unlabeled()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let n = self.problem.n_labeled();
        for (a, o) in out.iter_mut().enumerate() {
            let global = n + a;
            let mut sum = self.problem.degrees[global] * x[a];
            for (j, w) in self.problem.weights.row_iter(global) {
                if j >= n {
                    sum -= w * x[j - n];
                }
            }
            *o = sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::HardCriterion;
    use crate::problem::Problem;

    fn random_sparse_graph(total: usize, seed: u64) -> CsrMatrix {
        // Deterministic pseudo-random sparse symmetric graph with a
        // guaranteed spanning path (so everything is anchored).
        let mut state = seed.max(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut triplets = Vec::new();
        for i in 0..total - 1 {
            let w = 0.2 + 0.8 * next();
            triplets.push((i, i + 1, w));
            triplets.push((i + 1, i, w));
        }
        for i in 0..total {
            for j in (i + 2)..total {
                if next() < 0.2 {
                    let w = next();
                    triplets.push((i, j, w));
                    triplets.push((j, i, w));
                }
            }
        }
        CsrMatrix::from_triplets(total, total, &triplets).expect("valid triplets")
    }

    #[test]
    fn matches_dense_solution() {
        let sparse = random_sparse_graph(25, 3);
        let labels = vec![1.0, 0.0, 1.0, 0.0, 0.5];
        let sparse_problem = SparseProblem::new(sparse.clone(), labels.clone()).unwrap();
        let dense_problem = Problem::new(sparse.to_dense(), labels).unwrap();

        let dense = HardCriterion::new().fit(&dense_problem).unwrap();
        let cg = sparse_problem
            .solve_hard(&CgOptions {
                tolerance: 1e-12,
                ..CgOptions::default()
            })
            .unwrap();
        let (prop, sweeps) = sparse_problem.propagate(0, 1e-12).unwrap();
        assert!(sweeps > 0);
        for ((d, c), p) in dense
            .unlabeled()
            .iter()
            .zip(cg.unlabeled())
            .zip(prop.unlabeled())
        {
            assert!((d - c).abs() < 1e-7, "CG diverges: {d} vs {c}");
            assert!((d - p).abs() < 1e-7, "propagation diverges: {d} vs {p}");
        }
    }

    #[test]
    fn sparse_soft_matches_dense_soft() {
        let sparse = random_sparse_graph(20, 7);
        let labels = vec![1.0, 0.0, 0.7];
        let sparse_problem = SparseProblem::new(sparse.clone(), labels.clone()).unwrap();
        let dense_problem = Problem::new(sparse.to_dense(), labels).unwrap();
        for &lambda in &[0.05, 0.5, 2.0] {
            let dense = crate::soft::SoftCriterion::new(lambda)
                .unwrap()
                .fit(&dense_problem)
                .unwrap();
            let via_cg = sparse_problem
                .solve_soft(
                    lambda,
                    &CgOptions {
                        tolerance: 1e-12,
                        max_iterations: 10_000,
                    },
                )
                .unwrap();
            for (a, b) in dense.all().iter().zip(via_cg.all()) {
                assert!((a - b).abs() < 1e-7, "lambda {lambda}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_soft_validates_lambda_and_anchoring() {
        let p = SparseProblem::new(random_sparse_graph(8, 2), vec![1.0]).unwrap();
        assert!(p.solve_soft(0.0, &CgOptions::default()).is_err());
        assert!(p.solve_soft(-1.0, &CgOptions::default()).is_err());
        assert!(p.solve_soft(f64::NAN, &CgOptions::default()).is_err());
        let disconnected = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let stranded = SparseProblem::new(disconnected, vec![1.0]).unwrap();
        assert!(matches!(
            stranded.solve_soft(0.5, &CgOptions::default()),
            Err(Error::UnanchoredUnlabeled { .. })
        ));
    }

    #[test]
    fn validation_rules() {
        let w = random_sparse_graph(5, 1);
        assert!(SparseProblem::new(w.clone(), vec![]).is_err());
        assert!(SparseProblem::new(w.clone(), vec![1.0; 6]).is_err());
        assert!(SparseProblem::new(w.clone(), vec![f64::NAN]).is_err());
        let rect = CsrMatrix::zeros(2, 3);
        assert!(SparseProblem::new(rect, vec![1.0]).is_err());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(SparseProblem::new(asym, vec![1.0]).is_err());
        let negative = CsrMatrix::from_triplets(2, 2, &[(0, 1, -1.0), (1, 0, -1.0)]).unwrap();
        assert!(SparseProblem::new(negative, vec![1.0]).is_err());
    }

    #[test]
    fn detects_stranded_components() {
        // Two disconnected edges; only the first component is labeled.
        let w =
            CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)])
                .unwrap();
        let p = SparseProblem::new(w, vec![1.0]).unwrap();
        assert_eq!(
            p.require_anchored(),
            Err(Error::UnanchoredUnlabeled { unlabeled_index: 1 })
        );
        assert!(p.solve_hard(&CgOptions::default()).is_err());
        assert!(p.propagate(100, 1e-8).is_err());
    }

    #[test]
    fn maximum_principle_on_sparse_graphs() {
        let p = SparseProblem::new(random_sparse_graph(40, 9), vec![0.0, 1.0, 0.3]).unwrap();
        let scores = p.solve_hard(&CgOptions::default()).unwrap();
        for &s in scores.unlabeled() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&s));
        }
    }

    #[test]
    fn fully_labeled_short_circuits() {
        let w = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let p = SparseProblem::new(w, vec![0.2, 0.9]).unwrap();
        let scores = p.solve_hard(&CgOptions::default()).unwrap();
        assert_eq!(scores.all(), &[0.2, 0.9]);
        let (prop, sweeps) = p.propagate(10, 1e-8).unwrap();
        assert_eq!(sweeps, 0);
        assert!(prop.unlabeled().is_empty());
    }

    #[test]
    fn propagation_budget_is_enforced() {
        let p = SparseProblem::new(random_sparse_graph(30, 5), vec![1.0, 0.0]).unwrap();
        assert!(matches!(
            p.propagate(1, 1e-15),
            Err(Error::Linalg(gssl_linalg::Error::NotConverged { .. }))
        ));
    }

    #[test]
    fn accessors() {
        let w = random_sparse_graph(10, 2);
        let p = SparseProblem::new(w.clone(), vec![1.0, 0.0, 1.0]).unwrap();
        assert_eq!(p.n_labeled(), 3);
        assert_eq!(p.n_unlabeled(), 7);
        assert_eq!(p.labels(), &[1.0, 0.0, 1.0]);
        assert_eq!(p.weights().nnz(), w.nnz());
    }

    #[test]
    fn dense_matrix_equivalence_on_grid_graph() {
        // 1-D grid graph, labeled at both ends: harmonic solution is the
        // linear interpolation — check it exactly.
        let total = 12;
        let mut triplets = Vec::new();
        // Arrange labels first: vertices 0 and 1 are the two ends.
        // Path: 0 - 2 - 3 - ... - 11 - 1.
        let path: Vec<usize> = std::iter::once(0)
            .chain(2..total)
            .chain(std::iter::once(1))
            .collect();
        for pair in path.windows(2) {
            triplets.push((pair[0], pair[1], 1.0));
            triplets.push((pair[1], pair[0], 1.0));
        }
        let w = CsrMatrix::from_triplets(total, total, &triplets).unwrap();
        let p = SparseProblem::new(w, vec![0.0, 1.0]).unwrap();
        let scores = p
            .solve_hard(&CgOptions {
                tolerance: 1e-13,
                ..CgOptions::default()
            })
            .unwrap();
        // Vertex path[k] should score k / (total - 1).
        let f = scores.all();
        for (k, &v) in path.iter().enumerate() {
            let expected = k as f64 / (total - 1) as f64;
            assert!(
                (f[v] - expected).abs() < 1e-8,
                "grid vertex {v}: {} vs {expected}",
                f[v]
            );
        }
    }
}
