//! Solver-crossover benchmark for the sparse-first factorization stack:
//! sweeps 2-D grid-Laplacian systems of increasing size through every
//! backend the [`gssl_linalg::SolverPolicy`] can dispatch to — dense
//! Cholesky, Jacobi-CG, block-Jacobi PCG, IC(0) PCG, and graph-coarsened
//! AMG — and records the dense → IC-PCG → AMG crossover curve (time,
//! iterations, residual, nnz, bandwidth per point) into
//! `BENCH_solver.json`.
//!
//! ```text
//! cargo run --release -p gssl-bench --bin solver_crossover [-- --ci] [-- --quiet]
//! ```
//!
//! `--ci` shrinks the grid sides so the run finishes in CI seconds and
//! writes `BENCH_solver_ci.json` instead, leaving the committed
//! crossover record untouched.
//!
//! Timing is reported as measured and never gates the exit code. What
//! gates is what survives any host: every solver's relative residual
//! must meet [`RESIDUAL_GATE`], and IC(0) PCG must need no more
//! iterations than plain Jacobi-CG at every sparse size (a deterministic
//! property of the preconditioner, not a timing claim). Whether AMG wins
//! the largest solve on wall clock is recorded in the JSON, not gated.

use gssl_linalg::{
    AmgCg, AmgOptions, CgOptions, Cholesky, CsrMatrix, Factorization, PrecondCg, PrecondKind,
    SolverPolicy, Vector, DEFAULT_BLOCK_DIM,
};
use std::process::ExitCode;
use std::time::Instant;

/// Grid sides for the full sweep: n = side² runs 256 → 65 536, crossing
/// both the dense cutoff (128) and the AMG dimension cutoff (4096).
const FULL_SIDES: [usize; 5] = [16, 32, 64, 128, 256];
/// CI grid sides: same code path, milliseconds not minutes.
const CI_SIDES: [usize; 3] = [8, 16, 24];
/// Dense Cholesky is O(n³); skip it above this dimension so the sweep
/// stays honest about where the dense backend stops being viable.
const DENSE_CAP: usize = 2_048;
/// Iterative tolerance used by every CG-family backend in the sweep.
const TOLERANCE: f64 = 1e-8;
/// Relative-residual exit gate, slack over [`TOLERANCE`] for the final
/// true residual (CG monitors the preconditioned recurrence residual).
const RESIDUAL_GATE: f64 = 1e-6;

/// Hard-criterion-shaped SPD test system: the Eq. 5 matrix
/// `D₂₂ − W₂₂` for a (side+2)×(side+2) unit-weight lattice whose
/// boundary ring is labeled — i.e. the Dirichlet 5-point Laplacian on
/// the side×side interior, diagonal 4 everywhere, `-1` to in-grid
/// neighbors. Its condition number grows like side², so iteration
/// counts genuinely separate the preconditioners as n grows. Bandwidth
/// is `side`, so the policy's IC-vs-AMG bandwidth test sees a genuinely
/// 2-D structure.
fn grid_laplacian(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(5 * n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            // Every vertex keeps lattice degree 4: missing in-grid
            // neighbors are the labeled boundary ring, which Eq. 5
            // folds into the diagonal.
            triplets.push((i, i, 4.0));
            if r > 0 {
                triplets.push((i, i - side, -1.0));
            }
            if r + 1 < side {
                triplets.push((i, i + side, -1.0));
            }
            if c > 0 {
                triplets.push((i, i - 1, -1.0));
            }
            if c + 1 < side {
                triplets.push((i, i + 1, -1.0));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("grid Laplacian triplets")
}

/// Deterministic smooth-plus-oscillatory right-hand side so the
/// iterative solvers see both ends of the spectrum.
fn rhs(n: usize) -> Vector {
    Vector::from_fn(n, |i| {
        let t = i as f64 / n as f64;
        (6.3 * t).sin() + 0.25 * (0.7 * i as f64).sin()
    })
}

/// Relative true residual ‖Ax − b‖₂ / ‖b‖₂.
fn relative_residual(a: &CsrMatrix, x: &Vector, b: &Vector) -> f64 {
    let ax = a.matvec(x.as_slice());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (r, bi) in ax.iter().zip(b.as_slice()) {
        num += (r - bi) * (r - bi);
        den += bi * bi;
    }
    (num / den.max(f64::MIN_POSITIVE)).sqrt()
}

struct SolverPoint {
    solver: &'static str,
    seconds: f64,
    iterations: Option<usize>,
    residual: f64,
}

impl SolverPoint {
    fn to_json(&self) -> String {
        let iterations = self
            .iterations
            .map_or_else(|| "null".to_owned(), |i| i.to_string());
        format!(
            "{{\"solver\": \"{}\", \"seconds\": {:.6}, \"iterations\": {iterations}, \
             \"residual\": {:.3e}}}",
            self.solver, self.seconds, self.residual
        )
    }
}

struct SizeReport {
    n: usize,
    side: usize,
    nnz: usize,
    bandwidth: usize,
    /// What the default policy would pick for this system.
    policy_choice: &'static str,
    solvers: Vec<SolverPoint>,
}

impl SizeReport {
    fn to_json(&self) -> String {
        let solvers = self
            .solvers
            .iter()
            .map(SolverPoint::to_json)
            .collect::<Vec<_>>()
            .join(",\n  ");
        format!(
            "{{\"n\": {}, \"side\": {}, \"nnz\": {}, \"bandwidth\": {}, \
             \"policy\": \"{}\", \"solvers\": [\n  {solvers}\n]}}",
            self.n, self.side, self.nnz, self.bandwidth, self.policy_choice
        )
    }

    fn point(&self, solver: &str) -> Option<&SolverPoint> {
        self.solvers.iter().find(|p| p.solver == solver)
    }
}

fn cg_options() -> CgOptions {
    CgOptions {
        max_iterations: 10_000,
        tolerance: TOLERANCE,
    }
}

/// Times one factor + solve through a [`Factorization`] backend.
fn run_backend<F: Factorization>(
    name: &'static str,
    factor: impl FnOnce() -> F,
    a: &CsrMatrix,
    b: &Vector,
    iterations: impl FnOnce(&F) -> Option<usize>,
) -> SolverPoint {
    let start = Instant::now();
    let backend = factor();
    let x = backend.solve(b).expect("solve");
    let seconds = start.elapsed().as_secs_f64();
    SolverPoint {
        solver: name,
        seconds,
        iterations: iterations(&backend),
        residual: relative_residual(a, &x, b),
    }
}

fn run_size(side: usize, quiet: bool) -> SizeReport {
    let a = grid_laplacian(side);
    let n = a.rows();
    let b = rhs(n);
    let policy_choice = SolverPolicy::default().select_sparse(&a).as_str();
    let mut solvers = Vec::new();

    if n <= DENSE_CAP {
        let dense = a.to_dense();
        solvers.push(run_backend(
            "dense-cholesky",
            || Cholesky::factor(&dense).expect("dense Cholesky"),
            &a,
            &b,
            |_| None,
        ));
    }
    for (name, kind) in [
        ("jacobi-cg", PrecondKind::Jacobi),
        (
            "block-jacobi-pcg",
            PrecondKind::BlockJacobi {
                block_dim: DEFAULT_BLOCK_DIM,
            },
        ),
        ("ic0-pcg", PrecondKind::Ic0),
    ] {
        solvers.push(run_backend(
            name,
            || PrecondCg::factor_sparse_with(&a, kind, cg_options()).expect("pcg factor"),
            &a,
            &b,
            |f| f.last_iterations(),
        ));
    }
    solvers.push(run_backend(
        "amg-pcg",
        || {
            AmgCg::factor_sparse(
                &a,
                AmgOptions {
                    cg: cg_options(),
                    ..AmgOptions::default()
                },
            )
            .expect("amg factor")
        },
        &a,
        &b,
        |f| f.last_iterations(),
    ));

    let report = SizeReport {
        n,
        side,
        nnz: a.nnz(),
        bandwidth: a.bandwidth(),
        policy_choice,
        solvers,
    };
    if !quiet {
        println!(
            "n={:>6} (side {:>3}, nnz {:>7}, bandwidth {:>3}, policy {}):",
            report.n, report.side, report.nnz, report.bandwidth, report.policy_choice
        );
        for p in &report.solvers {
            let iters = p
                .iterations
                .map_or_else(|| "   direct".to_owned(), |i| format!("{i:>5} its"));
            println!(
                "  {:<18} {:>9.4}s  {}  residual {:.2e}",
                p.solver, p.seconds, iters, p.residual
            );
        }
    }
    report
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let ci = args.iter().any(|a| a == "--ci");
    let (sides, out_path): (&[usize], &str) = if ci {
        (&CI_SIDES, "BENCH_solver_ci.json")
    } else {
        (&FULL_SIDES, "BENCH_solver.json")
    };

    if !quiet {
        println!(
            "== solver crossover: Dirichlet grid Laplacian (Eq. 5), tolerance {TOLERANCE:.0e} ({} mode) ==",
            if ci { "ci" } else { "full" }
        );
    }
    let reports: Vec<SizeReport> = sides.iter().map(|&side| run_size(side, quiet)).collect();

    // Wall-clock winner of the largest solve — recorded, never gated.
    let largest = reports.last().expect("at least one size");
    let fastest_large = largest
        .solvers
        .iter()
        .min_by(|x, y| x.seconds.total_cmp(&y.seconds))
        .expect("at least one solver");

    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let body = reports
        .iter()
        .map(SizeReport::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n\"mode\": \"{}\",\n\"host_parallelism\": {host_parallelism},\n\
         \"tolerance\": {TOLERANCE:e},\n\"dense_cap\": {DENSE_CAP},\n\
         \"largest_solve_winner\": \"{}\",\n\"sizes\": [\n{body}\n]\n}}\n",
        if ci { "ci" } else { "full" },
        fastest_large.solver,
    );
    std::fs::write(out_path, &json).expect("write solver report");

    // Exit gates: correctness only. Every backend must actually solve
    // the system, and IC(0) must not need more CG iterations than plain
    // Jacobi — both deterministic on any host.
    let residuals_ok = reports
        .iter()
        .all(|r| r.solvers.iter().all(|p| p.residual <= RESIDUAL_GATE));
    let ic_ok = reports
        .iter()
        .all(|r| match (r.point("ic0-pcg"), r.point("jacobi-cg")) {
            (Some(ic), Some(jacobi)) => ic.iterations <= jacobi.iterations,
            _ => false,
        });

    if !quiet {
        println!(
            "\nlargest solve (n={}) won by {} at {:.4}s; wrote {out_path}",
            largest.n, fastest_large.solver, fastest_large.seconds
        );
        println!(
            "correctness gates: residuals {} | ic ≤ jacobi iterations {}",
            if residuals_ok { "passed" } else { "FAILED" },
            if ic_ok { "passed" } else { "FAILED" },
        );
    }
    if residuals_ok && ic_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
