//! The common interface every transductive learner in this crate exposes.

use crate::error::Result;
use crate::problem::{Problem, Scores};

/// A transductive model: given the similarity graph and observed labels,
/// produce scores for every vertex.
///
/// The trait is object-safe so heterogeneous collections of criteria can
/// be swept in experiments:
///
/// ```
/// use gssl::{HardCriterion, MeanPredictor, SoftCriterion, TransductiveModel};
/// let models: Vec<Box<dyn TransductiveModel>> = vec![
///     Box::new(HardCriterion::new()),
///     Box::new(SoftCriterion::new(0.1).unwrap()),
///     Box::new(MeanPredictor::new()),
/// ];
/// assert_eq!(models.len(), 3);
/// ```
pub trait TransductiveModel {
    /// Fits the model on a problem, returning scores for all vertices
    /// (labeled first).
    ///
    /// # Errors
    ///
    /// Implementations report ill-posed problems (singular systems,
    /// stranded unlabeled components, invalid parameters) through
    /// [`crate::Error`].
    fn fit(&self, problem: &Problem) -> Result<Scores>;

    /// A short human-readable name for experiment reports.
    fn name(&self) -> String;
}
