//! Degenerate limits of the hard criterion, observed directly.
//!
//! Two failure modes bracket the useful bandwidth window:
//!
//! * **Over-smoothing** (h too large): the similarity matrix approaches
//!   all-ones and the solution collapses to the constant labeled mean —
//!   the finite-bandwidth version of the paper's Section III toy example.
//!   This experiment sweeps h downward with n = 4 labels fixed and
//!   watches the unlabeled score spread recover from ~0.
//! * **Spikes / noninformativeness** (Nadler, Srebro & Zhou — the
//!   paper's reference \[17\]): with unlabeled data growing much faster
//!   than labels in the continuum limit, mass decouples from the labels.
//!   That asymptotic regime is why Theorem II.1 needs `m = o(n h_n^d)`;
//!   at the finite sizes here its onset appears as the shrinking
//!   labels-to-volume ratio in the second column.
//!
//! A second table compares penalty exponents p = 2 vs p = 3 (El Alaoui et
//! al., reference \[19\]): larger p preserves more score spread.

use gssl::{HardCriterion, HardSolver, PLaplacian, Problem, TransductiveModel};
use gssl_bench::runner::CliArgs;
use gssl_linalg::{CgOptions, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fixed anchors: two positive corners, two negative corners.
const ANCHORS: [([f64; 2], f64); 4] = [
    ([0.05, 0.05], 1.0),
    ([0.95, 0.95], 1.0),
    ([0.05, 0.95], 0.0),
    ([0.95, 0.05], 0.0),
];

fn build_points(m: usize, rng: &mut impl Rng) -> (Matrix, Vec<f64>) {
    let mut points = Matrix::zeros(4 + m, 2);
    let mut labels = Vec::with_capacity(4);
    for (i, (xy, y)) in ANCHORS.iter().enumerate() {
        points.row_mut(i).copy_from_slice(xy);
        labels.push(*y);
    }
    for i in 0..m {
        points.set(4 + i, 0, rng.gen());
        points.set(4 + i, 1, rng.gen());
    }
    (points, labels)
}

/// Spread of the unlabeled scores: their standard deviation. A solution
/// collapsing to a constant (spikes only at labels) drives this to 0.
fn score_spread(scores: &[f64]) -> f64 {
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    (scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / scores.len() as f64).sqrt()
}

fn main() {
    let args = match CliArgs::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let seed = args.seed.unwrap_or(2718);
    let m = if args.full { 1500 } else { 400 };
    let h_grid = [0.4, 0.2, 0.1, 0.05, 0.03];

    println!("== Degenerate limits: n = 4 fixed labels, m = {m}, bandwidth sweep ==\n");
    println!(
        "{:>8} {:>12} {:>14} {:>18}",
        "h", "n h^d / m", "score spread", "near-constant (%)"
    );
    for &h in &h_grid {
        let mut rng = StdRng::seed_from_u64(seed);
        let (points, labels) = build_points(m, &mut rng);
        // Dense Gaussian graph; as h shrinks with n fixed, the labels'
        // share of every unlabeled vertex's degree vanishes — the regime
        // of reference [17] where the solution goes noninformative.
        let dense = gssl_graph::affinity::affinity_matrix(&points, gssl_graph::Kernel::Gaussian, h)
            .expect("affinity");
        let graph = gssl_linalg::CsrMatrix::from_dense(&dense, 1e-12);
        let problem = Problem::new(graph, labels).expect("valid problem");
        let regime = 4.0 * h * h / m as f64; // n h^d / m with n = 4, d = 2
        let cg = HardCriterion::new().solver(HardSolver::ConjugateGradient(CgOptions::default()));
        match cg.fit(&problem) {
            Ok(scores) => {
                let spread = score_spread(scores.unlabeled());
                let mean = scores.unlabeled().iter().sum::<f64>() / m as f64;
                let near = scores
                    .unlabeled()
                    .iter()
                    .filter(|s| (*s - mean).abs() < 0.05)
                    .count() as f64
                    / m as f64;
                println!(
                    "{h:>8} {regime:>12.2e} {spread:>14.4} {:>18.1}",
                    near * 100.0
                );
            }
            Err(error) => println!("{h:>8} {regime:>12.2e} {:>14} ({error})", "n/a"),
        }
    }
    println!("\nReading upward: as h grows past the data scale the solution");
    println!("collapses onto the constant labeled mean (spread -> 0, everything");
    println!("within 0.05 of it) — the finite-h version of the Section III toy");
    println!("example. Informative solutions need h inside a window: small enough");
    println!("to see structure, large enough to keep the graph connected.\n");

    println!("== Penalty exponent: p = 2 vs p = 3 (dense graph, m = 150) ==");
    let mut rng = StdRng::seed_from_u64(seed);
    let (points, labels) = build_points(150, &mut rng);
    let w = gssl_graph::affinity::affinity_matrix(&points, gssl_graph::Kernel::Gaussian, 0.12)
        .expect("affinity");
    let problem = Problem::new(w, labels).expect("valid problem");
    println!("{:>6} {:>14}", "p", "score spread");
    for &p in &[2.0, 3.0] {
        match PLaplacian::new(p)
            .expect("valid p")
            .max_rounds(500)
            .tolerance(1e-5)
            .fit(&problem)
        {
            Ok(scores) => {
                println!("{p:>6} {:>14.4}", score_spread(scores.unlabeled()));
            }
            Err(error) => println!("{p:>6} {:>14} ({error})", "n/a"),
        }
    }
    println!("\nReference [19] predicts larger p keeps the solution informative");
    println!("(spread bounded away from zero) beyond the p = d threshold.");
}
