//! Property-based tests for the criteria: the paper's structural claims
//! checked on random graphs.

use gssl::{
    HardCriterion, HardSolver, LabelPropagation, MeanPredictor, NadarayaWatson, Problem,
    SoftCriterion, SweepKind, TransductiveModel,
};
use gssl_linalg::Matrix;
use proptest::prelude::*;

const N_LABELED: usize = 3;
const N_UNLABELED: usize = 4;
const TOTAL: usize = N_LABELED + N_UNLABELED;

/// Random symmetric affinity with strictly positive weights (connected)
/// and unit diagonal, like a Gaussian-kernel graph.
fn affinity() -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.05f64..1.0, TOTAL * (TOTAL - 1) / 2).prop_map(|upper| {
        let mut w = Matrix::identity(TOTAL);
        let mut it = upper.into_iter();
        for i in 0..TOTAL {
            for j in (i + 1)..TOTAL {
                let v = it.next().expect("length fixed");
                w.set(i, j, v);
                w.set(j, i, v);
            }
        }
        w
    })
}

fn labels() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, N_LABELED)
}

proptest! {
    #[test]
    fn maximum_principle(w in affinity(), y in labels()) {
        let p = Problem::new(w, y.clone()).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &s in scores.unlabeled() {
            prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9,
                         "score {s} escapes [{lo}, {hi}]");
        }
    }

    #[test]
    fn harmonicity(w in affinity(), y in labels()) {
        // Each unlabeled score equals the weighted average of its
        // neighbours' scores (self-loops cancel in D − W).
        let p = Problem::new(w.clone(), y).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let f = scores.all();
        for a in N_LABELED..TOTAL {
            let mut mass = 0.0;
            let mut avg = 0.0;
            for j in 0..TOTAL {
                if j != a {
                    mass += w.get(a, j);
                    avg += w.get(a, j) * f[j];
                }
            }
            prop_assert!((f[a] - avg / mass).abs() < 1e-8, "vertex {a} not harmonic");
        }
    }

    #[test]
    fn proposition_ii1_on_random_graphs(w in affinity(), y in labels()) {
        let p = Problem::new(w, y).unwrap();
        let hard = HardCriterion::new().fit(&p).unwrap();
        let soft0 = SoftCriterion::new(0.0).unwrap().fit(&p).unwrap();
        for (h, s) in hard.all().iter().zip(soft0.all()) {
            prop_assert!((h - s).abs() < 1e-8);
        }
    }

    #[test]
    fn soft_block_form_equals_full_system(w in affinity(), y in labels(),
                                          lambda in 0.001f64..10.0) {
        let p = Problem::new(w, y).unwrap();
        let soft = SoftCriterion::new(lambda).unwrap();
        let block = soft.fit(&p).unwrap();
        let full = soft.fit_full_system(&p).unwrap();
        for (a, b) in block.all().iter().zip(full.all()) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b} at lambda {lambda}");
        }
    }

    #[test]
    fn soft_solution_is_objective_optimal(w in affinity(), y in labels(),
                                          lambda in 0.01f64..5.0) {
        // The soft solution must beat both natural competitors on its own
        // objective: the hard solution and the constant-mean solution.
        let p = Problem::new(w, y).unwrap();
        let soft = SoftCriterion::new(lambda).unwrap();
        let solution = soft.fit(&p).unwrap();
        let optimum = soft.objective(&p, solution.all()).unwrap();
        let hard = HardCriterion::new().fit(&p).unwrap();
        prop_assert!(soft.objective(&p, hard.all()).unwrap() >= optimum - 1e-9);
        let mean = MeanPredictor::new().fit(&p).unwrap();
        prop_assert!(soft.objective(&p, mean.all()).unwrap() >= optimum - 1e-9);
    }

    #[test]
    fn hard_solution_minimizes_dirichlet_energy_among_clamped(w in affinity(), y in labels()) {
        // Among score vectors agreeing with Y on labeled points, the hard
        // solution minimizes the smoothness penalty (it IS the minimizer).
        let p = Problem::new(w.clone(), y).unwrap();
        let scores = HardCriterion::new().fit(&p).unwrap();
        let base = gssl_graph::dirichlet_energy(
            &w, &gssl_linalg::Vector::from(scores.all())).unwrap();
        // Perturb each unlabeled coordinate.
        for a in N_LABELED..TOTAL {
            for &delta in &[0.05, -0.05] {
                let mut perturbed = scores.all().to_vec();
                perturbed[a] += delta;
                let energy = gssl_graph::dirichlet_energy(
                    &w, &gssl_linalg::Vector::from(perturbed.as_slice())).unwrap();
                prop_assert!(energy >= base - 1e-9);
            }
        }
    }

    #[test]
    fn all_hard_backends_agree(w in affinity(), y in labels()) {
        let p = Problem::new(w, y).unwrap();
        let reference = HardCriterion::new().fit(&p).unwrap();
        let backends = [
            HardCriterion::new().solver(HardSolver::Lu),
            HardCriterion::new().solver(HardSolver::ConjugateGradient(Default::default())),
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::Simultaneous)),
            HardCriterion::new().solver(HardSolver::Propagation(SweepKind::InPlace)),
        ];
        for backend in backends {
            let scores = backend.fit(&p).unwrap();
            for (a, b) in reference.unlabeled().iter().zip(scores.unlabeled()) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn propagation_matches_direct_solution(w in affinity(), y in labels()) {
        let p = Problem::new(w, y).unwrap();
        let direct = HardCriterion::new().fit(&p).unwrap();
        let (iterative, sweeps) = LabelPropagation::new()
            .tolerance(1e-12)
            .fit_with_iterations(&p)
            .unwrap();
        prop_assert!(sweeps > 0);
        for (a, b) in direct.unlabeled().iter().zip(iterative.unlabeled()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn nadaraya_watson_respects_label_range(w in affinity(), y in labels()) {
        let p = Problem::new(w, y.clone()).unwrap();
        let scores = NadarayaWatson::new().fit(&p).unwrap();
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &s in scores.unlabeled() {
            prop_assert!(s >= lo - 1e-12 && s <= hi + 1e-12);
        }
    }

    #[test]
    fn soft_scores_interpolate_between_hard_and_mean(w in affinity(), y in labels()) {
        // As λ grows the soft solution moves monotonically (in max-gap)
        // from the hard solution toward the constant mean.
        let p = Problem::new(w, y).unwrap();
        let mean = MeanPredictor::new().fit(&p).unwrap();
        let mut prev_gap = f64::INFINITY;
        for &lambda in &[0.1, 1.0, 10.0, 100.0] {
            let soft = SoftCriterion::new(lambda).unwrap().fit(&p).unwrap();
            let gap: f64 = soft
                .all()
                .iter()
                .zip(mean.all())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            prop_assert!(gap <= prev_gap + 1e-9, "gap grew at lambda {lambda}");
            prev_gap = gap;
        }
    }

    #[test]
    fn constant_labels_give_constant_scores(w in affinity(), c in 0.0f64..=1.0) {
        // With all labels equal to c, every criterion returns c everywhere
        // (on unlabeled points).
        let p = Problem::new(w, vec![c; N_LABELED]).unwrap();
        let models: Vec<Box<dyn TransductiveModel>> = vec![
            Box::new(HardCriterion::new()),
            Box::new(SoftCriterion::new(0.5).unwrap()),
            Box::new(NadarayaWatson::new()),
            Box::new(MeanPredictor::new()),
        ];
        for model in models {
            let scores = model.fit(&p).unwrap();
            for &s in scores.unlabeled() {
                prop_assert!((s - c).abs() < 1e-8, "{} broke constancy", model.name());
            }
        }
    }
}
