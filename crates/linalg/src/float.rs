//! Named floating-point comparison idioms.
//!
//! Bare `==` / `!=` on `f64` is banned across the workspace (enforced by
//! `gssl-xtask check`): almost every such comparison is a bug waiting for
//! rounding error. The few legitimate uses are *exact sentinel tests* —
//! "was this entry never written?", "is this weight structurally absent?" —
//! and those must go through the named helpers below so the intent is
//! explicit at the call site.

/// Exact test against positive or negative zero.
///
/// Use only for structural sentinels (an entry that was never assigned, a
/// weight that is absent by construction), never for "is this small".
///
/// ```
/// use gssl_linalg::float::is_exactly_zero;
/// assert!(is_exactly_zero(0.0));
/// assert!(is_exactly_zero(-0.0));
/// assert!(!is_exactly_zero(1e-300));
/// ```
#[inline]
#[must_use]
pub fn is_exactly_zero(x: f64) -> bool {
    // The one sanctioned bare float comparison in the workspace.
    x == 0.0 // lint: allow(float_eq)
}

/// Exact test against `1.0`.
///
/// Use only where `1.0` is a structural sentinel (e.g. an untouched
/// normalization factor), never for approximate comparison.
///
/// ```
/// use gssl_linalg::float::is_exactly_one;
/// assert!(is_exactly_one(1.0));
/// assert!(!is_exactly_one(1.0 + f64::EPSILON));
/// ```
#[inline]
#[must_use]
pub fn is_exactly_one(x: f64) -> bool {
    is_exactly_zero(x - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_detects_both_signs() {
        assert!(is_exactly_zero(0.0));
        assert!(is_exactly_zero(-0.0));
        assert!(!is_exactly_zero(f64::MIN_POSITIVE));
        assert!(!is_exactly_zero(f64::NAN));
    }

    #[test]
    fn one_is_exact() {
        assert!(is_exactly_one(1.0));
        assert!(!is_exactly_one(0.9999999999999999));
        assert!(!is_exactly_one(f64::NAN));
    }
}
