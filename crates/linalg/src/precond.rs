//! Preconditioners for the conjugate-gradient backend.
//!
//! A preconditioner approximates `A⁻¹` cheaply enough to apply once per CG
//! iteration: the closer `M⁻¹ A` is to the identity, the fewer iterations
//! PCG needs. Three classical choices are implemented over the same
//! [`Preconditioner`] trait, in increasing strength (and setup cost):
//!
//! * [`JacobiPrecond`] — `M = diag(A)`. Free to build, one multiply per
//!   entry to apply; only corrects scaling.
//! * [`BlockJacobiPrecond`] — `M = blockdiag(A)` with dense Cholesky
//!   factors of fixed-width diagonal blocks; captures short-range coupling.
//! * [`Ic0`] — incomplete Cholesky with zero fill-in: a lower-triangular
//!   `L` on the sparsity pattern of `tril(A)` with `L Lᵀ ≈ A`. On banded
//!   matrices (no fill-in discarded) it is *exact* and PCG converges in a
//!   handful of iterations.
//!
//! All three are deterministic: building and applying them performs the
//! same floating-point operations in the same order on every run and at
//! every worker count.

use crate::cholesky::Cholesky;
use crate::error::{Error, Result};
use crate::sparse::CsrMatrix;
use crate::strict;

/// Application side of a preconditioner: `z = M⁻¹ r`.
///
/// Implementations must be symmetric positive definite for PCG to remain
/// valid; the concrete types in this module guarantee that by
/// construction (positive diagonals, SPD blocks, `L Lᵀ` products).
pub trait Preconditioner {
    /// Dimension of the preconditioned system.
    fn dim(&self) -> usize;

    /// Applies `z = M⁻¹ r`. Both slices have length [`Preconditioner::dim`];
    /// callers guarantee this (the PCG driver checks once per solve).
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// A bare inverse diagonal is the original Jacobi preconditioner — this
/// keeps [`crate::preconditioned_conjugate_gradient`]'s historical
/// `&[f64]` signature working through the trait.
impl Preconditioner for [f64] {
    fn dim(&self) -> usize {
        self.len()
    }

    /// hot
    /// complexity: O(n)
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(self) {
            *zi = ri * di;
        }
    }
}

/// Which preconditioner [`crate::PrecondCg`] should build at factor time.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub enum PrecondKind {
    /// Diagonal (Jacobi) scaling — the historical default.
    #[default]
    Jacobi,
    /// Dense Cholesky factors of fixed-width diagonal blocks.
    BlockJacobi {
        /// Rows per diagonal block (the last block may be smaller).
        block_dim: usize,
    },
    /// Incomplete Cholesky with zero fill-in on the pattern of `tril(A)`.
    Ic0,
}

/// Default rows per block for [`PrecondKind::BlockJacobi`].
pub const DEFAULT_BLOCK_DIM: usize = 32;

/// A built preconditioner: the concrete, cloneable sum type
/// [`crate::PrecondCg`] stores (one variant per [`PrecondKind`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Precond {
    /// Diagonal (Jacobi) scaling.
    Jacobi(JacobiPrecond),
    /// Block-diagonal Cholesky.
    BlockJacobi(BlockJacobiPrecond),
    /// Incomplete Cholesky IC(0).
    Ic0(Ic0),
}

impl Precond {
    /// Builds the preconditioner `kind` from a CSR system matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when the diagonal has a
    ///   non-positive entry, a diagonal block is not SPD, or the IC(0)
    ///   recurrence breaks down (a pivot `a_ii − Σ l_ik²` drops to zero or
    ///   below) — IC(0) can break down on SPD matrices that are far from
    ///   diagonally dominant even though the exact factorization exists.
    /// * [`Error::InvalidArgument`] when a block width of 0 is requested.
    pub fn build(a: &CsrMatrix, kind: &PrecondKind) -> Result<Precond> {
        match kind {
            PrecondKind::Jacobi => Ok(Precond::Jacobi(JacobiPrecond::from_csr(a)?)),
            PrecondKind::BlockJacobi { block_dim } => Ok(Precond::BlockJacobi(
                BlockJacobiPrecond::factor(a, *block_dim)?,
            )),
            PrecondKind::Ic0 => Ok(Precond::Ic0(Ic0::factor(a)?)),
        }
    }

    /// The [`PrecondKind`] this preconditioner was built as.
    pub fn kind(&self) -> PrecondKind {
        match self {
            Precond::Jacobi(_) => PrecondKind::Jacobi,
            Precond::BlockJacobi(p) => PrecondKind::BlockJacobi {
                block_dim: p.block_dim(),
            },
            Precond::Ic0(_) => PrecondKind::Ic0,
        }
    }
}

impl Preconditioner for Precond {
    fn dim(&self) -> usize {
        match self {
            Precond::Jacobi(p) => p.dim(),
            Precond::BlockJacobi(p) => p.dim(),
            Precond::Ic0(p) => p.dim(),
        }
    }

    /// hot
    /// complexity: O(nnz)
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Precond::Jacobi(p) => p.apply(r, z),
            Precond::BlockJacobi(p) => p.apply(r, z),
            Precond::Ic0(p) => p.apply(r, z),
        }
    }
}

/// Diagonal (Jacobi) preconditioner `M⁻¹ = diag(A)⁻¹`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds from an explicit diagonal, rejecting non-positive pivots (an
    /// SPD matrix has a strictly positive diagonal).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotPositiveDefinite`] naming the first offending
    /// pivot.
    pub fn from_diagonal(diag: impl Iterator<Item = f64>) -> Result<Self> {
        let mut inv_diag = Vec::with_capacity(diag.size_hint().0);
        for (i, d) in diag.enumerate() {
            if !(d > 0.0) || !d.is_finite() {
                return Err(Error::NotPositiveDefinite { pivot: i });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPrecond { inv_diag })
    }

    /// Builds from the diagonal of a CSR matrix.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] on a non-positive diagonal entry.
    pub fn from_csr(a: &CsrMatrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        JacobiPrecond::from_diagonal((0..a.rows()).map(|i| a.get(i, i)))
    }

    /// Borrows the stored inverse diagonal.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// Consumes the preconditioner, yielding the inverse diagonal.
    pub fn into_inv_diag(self) -> Vec<f64> {
        self.inv_diag
    }
}

impl Preconditioner for JacobiPrecond {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    /// hot
    /// complexity: O(n)
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Block-Jacobi preconditioner: dense Cholesky factors of the fixed-width
/// diagonal blocks of `A`, applied by per-block triangular solves.
#[derive(Debug, Clone)]
pub struct BlockJacobiPrecond {
    block_dim: usize,
    dim: usize,
    factors: Vec<Cholesky>,
}

impl BlockJacobiPrecond {
    /// Factors the diagonal blocks of `a` (rows `[s, s + block_dim)` per
    /// block; the last block is whatever remains).
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::InvalidArgument`] when `block_dim == 0`.
    /// * [`Error::NotPositiveDefinite`] when a diagonal block fails its
    ///   Cholesky factorization (pivot reported in global row indices).
    /// complexity: O(n * b^2)
    pub fn factor(a: &CsrMatrix, block_dim: usize) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        if block_dim == 0 {
            return Err(Error::InvalidArgument {
                message: "block-Jacobi requires block_dim >= 1".to_owned(),
            });
        }
        let n = a.rows();
        let mut factors = Vec::with_capacity(n.div_ceil(block_dim));
        let mut start = 0;
        while start < n {
            let width = block_dim.min(n - start);
            let mut block = crate::matrix::Matrix::zeros(width, width);
            for local in 0..width {
                for (j, v) in a.row_iter(start + local) {
                    if j >= start && j < start + width {
                        block.set(local, j - start, v);
                    }
                }
            }
            let factor = Cholesky::factor(&block).map_err(|e| match e {
                Error::NotPositiveDefinite { pivot } => Error::NotPositiveDefinite {
                    pivot: start + pivot,
                },
                other => other,
            })?;
            factors.push(factor);
            start += width;
        }
        Ok(BlockJacobiPrecond {
            block_dim,
            dim: n,
            factors,
        })
    }

    /// Rows per diagonal block.
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }
}

impl Preconditioner for BlockJacobiPrecond {
    fn dim(&self) -> usize {
        self.dim
    }

    /// Per-block forward/backward substitution against the stored Cholesky
    /// factors, written straight into `z` (no temporaries).
    /// hot
    /// complexity: O(n * b)
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let mut start = 0;
        for factor in &self.factors {
            let width = factor.dim();
            let l = factor.lower();
            let zb = &mut z[start..start + width];
            let rb = &r[start..start + width];
            // Forward solve L y = r_b (y overwrites z_b).
            for i in 0..width {
                let mut sum = rb[i];
                let row = &l.row(i)[..i];
                for (lij, zj) in row.iter().zip(zb.iter()) {
                    sum -= lij * zj;
                }
                zb[i] = sum / l.get(i, i);
            }
            // Backward solve Lᵀ x = y in place.
            for i in (0..width).rev() {
                let mut sum = zb[i];
                for (j, zj) in zb.iter().enumerate().skip(i + 1) {
                    sum -= l.get(j, i) * zj;
                }
                zb[i] = sum / l.get(i, i);
            }
            start += width;
        }
    }
}

/// Incomplete Cholesky with zero fill-in, IC(0).
///
/// Computes a lower-triangular `L` restricted to the sparsity pattern of
/// `tril(A)` by the standard recurrence
///
/// ```text
/// l_ij = (a_ij − Σ_{k<j} l_ik l_jk) / l_jj        (j < i, (i,j) stored)
/// l_ii = sqrt(a_ii − Σ_{k<i} l_ik²)
/// ```
///
/// dropping every product outside the pattern. `M = L Lᵀ` is SPD whenever
/// the recurrence completes with positive pivots; applying `M⁻¹` is one
/// sparse forward and one sparse backward substitution. On matrices whose
/// exact factor has no fill-in (e.g. banded systems ordered naturally)
/// IC(0) *is* the exact Cholesky factor.
#[derive(Debug, Clone)]
pub struct Ic0 {
    dim: usize,
    // Lower factor in CSR (rows sorted by column; diagonal entry last).
    l_indptr: Vec<usize>,
    l_indices: Vec<usize>,
    l_values: Vec<f64>,
    // Lᵀ in CSR (each row i holds the strictly-upper entries u_ij = l_ji,
    // j > i, plus the diagonal first) for the cache-friendly backward solve.
    u_indptr: Vec<usize>,
    u_indices: Vec<usize>,
    u_values: Vec<f64>,
}

impl Ic0 {
    /// Factors `a` on the pattern of its lower triangle.
    ///
    /// # Errors
    ///
    /// * [`Error::NotSquare`] when `a` is not square.
    /// * [`Error::NotPositiveDefinite`] when a diagonal entry is missing,
    ///   non-positive, or the recurrence breaks down at some pivot.
    /// complexity: O(nnz * rows)
    /// deterministic
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::NotSquare {
                shape: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        // The pattern of tril(A): CSR rows are sorted, so per-row entries
        // arrive in increasing column order with the diagonal last.
        let mut l_indptr = Vec::with_capacity(n + 1);
        // The lower triangle holds at most half the stored entries plus
        // the diagonal; nnz of A is a cheap, tight-enough upper bound.
        let mut l_indices = Vec::with_capacity(a.nnz());
        let mut l_values = Vec::with_capacity(a.nnz());
        l_indptr.push(0);
        for i in 0..n {
            let mut has_diagonal = false;
            for (j, v) in a.row_iter(i) {
                if j > i {
                    break;
                }
                has_diagonal |= j == i;
                l_indices.push(j);
                // Seed with a_ij; the elimination below subtracts the
                // already-computed products in place.
                l_values.push(v);
            }
            if !has_diagonal {
                // An SPD matrix stores a (positive) diagonal in every row.
                return Err(Error::NotPositiveDefinite { pivot: i });
            }
            l_indptr.push(l_indices.len());
        }

        for i in 0..n {
            let (row_start, row_end) = (l_indptr[i], l_indptr[i + 1]);
            for idx in row_start..row_end {
                let j = l_indices[idx];
                let sum = sparse_row_dot(
                    &l_indices,
                    &l_values,
                    row_start..idx,
                    l_indptr[j]..l_indptr[j + 1],
                    j,
                );
                let seeded = l_values[idx] - sum;
                if j == i {
                    if !(seeded > 0.0) || !seeded.is_finite() {
                        return Err(Error::NotPositiveDefinite { pivot: i });
                    }
                    l_values[idx] = seeded.sqrt();
                } else {
                    // The diagonal of row j is its last stored entry.
                    let ljj = l_values[l_indptr[j + 1] - 1];
                    l_values[idx] = seeded / ljj;
                }
            }
        }
        strict::check_finite("ic0 factor values", &l_values)?;

        // Transpose L into U = Lᵀ by a counting sort over columns, keeping
        // each U row sorted (diagonal first, then j > i in order).
        let nnz = l_indices.len();
        let mut u_indptr = vec![0usize; n + 1];
        for &j in &l_indices {
            u_indptr[j + 1] += 1;
        }
        for k in 0..n {
            u_indptr[k + 1] += u_indptr[k];
        }
        let mut u_indices = vec![0usize; nnz];
        let mut u_values = vec![0.0f64; nnz];
        let mut cursor = u_indptr.clone();
        for i in 0..n {
            for idx in l_indptr[i]..l_indptr[i + 1] {
                let j = l_indices[idx];
                let at = cursor[j];
                u_indices[at] = i;
                u_values[at] = l_values[idx];
                cursor[j] = at + 1;
            }
        }

        Ok(Ic0 {
            dim: n,
            l_indptr,
            l_indices,
            l_values,
            u_indptr,
            u_indices,
            u_values,
        })
    }

    /// Number of stored entries of the factor `L`.
    pub fn nnz(&self) -> usize {
        self.l_indices.len()
    }
}

impl Preconditioner for Ic0 {
    fn dim(&self) -> usize {
        self.dim
    }

    /// Solves `L Lᵀ z = r`: sparse forward substitution on the rows of
    /// `L`, then sparse backward substitution on the rows of `Lᵀ`, both in
    /// place in `z`.
    /// hot
    /// complexity: O(nnz)
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.dim;
        // Forward: L y = r (each row ends with its diagonal).
        for i in 0..n {
            let (start, end) = (self.l_indptr[i], self.l_indptr[i + 1]);
            let mut sum = r[i];
            for idx in start..end - 1 {
                sum -= self.l_values[idx] * z[self.l_indices[idx]];
            }
            z[i] = sum / self.l_values[end - 1];
        }
        // Backward: Lᵀ x = y (each U row starts with its diagonal).
        for i in (0..n).rev() {
            let (start, end) = (self.u_indptr[i], self.u_indptr[i + 1]);
            let mut sum = z[i];
            for idx in start + 1..end {
                sum -= self.u_values[idx] * z[self.u_indices[idx]];
            }
            z[i] = sum / self.u_values[start];
        }
    }
}

/// Sparse dot product of two CSR rows of `L` over the shared columns
/// `k < stop_col`: a two-pointer merge of two sorted index ranges into the
/// shared `indices`/`values` storage.
/// complexity: O(len)
fn sparse_row_dot(
    indices: &[usize],
    values: &[f64],
    a: std::ops::Range<usize>,
    b: std::ops::Range<usize>,
    stop_col: usize,
) -> f64 {
    let mut sum = 0.0;
    let mut p = a.start;
    let mut q = b.start;
    while p < a.end && q < b.end {
        let (cp, cq) = (indices[p], indices[q]);
        if cp == stop_col || cq == stop_col {
            break;
        }
        match cp.cmp(&cq) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                sum += values[p] * values[q];
                p += 1;
                q += 1;
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::vector::Vector;

    fn spd_tridiagonal(n: usize) -> CsrMatrix {
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, 3.0 + 0.1 * i as f64));
            if i + 1 < n {
                triplets.push((i, i + 1, -1.0));
                triplets.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets).unwrap()
    }

    fn apply_inverse(p: &(impl Preconditioner + ?Sized), r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; r.len()];
        p.apply(r, &mut z);
        z
    }

    #[test]
    fn jacobi_matches_slice_preconditioner() {
        let a = spd_tridiagonal(8);
        let p = JacobiPrecond::from_csr(&a).unwrap();
        let inv: Vec<f64> = (0..8).map(|i| 1.0 / a.get(i, i)).collect();
        let r: Vec<f64> = (0..8).map(|i| (i as f64).sin() + 2.0).collect();
        assert_eq!(apply_inverse(&p, &r), apply_inverse(inv.as_slice(), &r));
        assert_eq!(p.dim(), 8);
        assert_eq!(p.inv_diag().len(), 8);
    }

    #[test]
    fn jacobi_rejects_nonpositive_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -2.0)]).unwrap();
        assert!(matches!(
            JacobiPrecond::from_csr(&a),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
        assert!(matches!(
            JacobiPrecond::from_csr(&CsrMatrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
    }

    #[test]
    fn block_jacobi_with_full_width_inverts_exactly() {
        // One block covering the whole matrix is a full Cholesky solve.
        let n = 10;
        let a = spd_tridiagonal(n);
        let p = BlockJacobiPrecond::factor(&a, n).unwrap();
        let dense = a.to_dense();
        let r = Vector::from_fn(n, |i| ((i + 1) as f64).cos());
        let z = apply_inverse(&p, r.as_slice());
        let exact = crate::lu::solve(&dense, &r).unwrap();
        for (zi, ei) in z.iter().zip(exact.as_slice()) {
            assert!((zi - ei).abs() < 1e-12);
        }
        assert_eq!(p.block_dim(), n);
    }

    #[test]
    fn block_jacobi_matches_blockwise_dense_solves() {
        let n = 11;
        let b = 4; // blocks of 4, 4, 3
        let a = spd_tridiagonal(n);
        let p = BlockJacobiPrecond::factor(&a, b).unwrap();
        let r: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.3).collect();
        let z = apply_inverse(&p, &r);
        let dense = a.to_dense();
        let mut start = 0;
        while start < n {
            let width = b.min(n - start);
            let block = Matrix::from_fn(width, width, |i, j| dense.get(start + i, start + j));
            let rb = Vector::from(&r[start..start + width]);
            let exact = crate::lu::solve(&block, &rb).unwrap();
            for (zi, ei) in z[start..start + width].iter().zip(exact.as_slice()) {
                assert!((zi - ei).abs() < 1e-12);
            }
            start += width;
        }
    }

    #[test]
    fn block_jacobi_validates_inputs() {
        let a = spd_tridiagonal(4);
        assert!(matches!(
            BlockJacobiPrecond::factor(&a, 0),
            Err(Error::InvalidArgument { .. })
        ));
        assert!(matches!(
            BlockJacobiPrecond::factor(&CsrMatrix::zeros(2, 3), 2),
            Err(Error::NotSquare { .. })
        ));
        // An indefinite diagonal block reports its global pivot.
        let bad =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, -1.0)]).unwrap();
        assert!(matches!(
            BlockJacobiPrecond::factor(&bad, 2),
            Err(Error::NotPositiveDefinite { pivot: 2 })
        ));
    }

    #[test]
    fn ic0_is_exact_on_banded_systems() {
        // A tridiagonal matrix has a bidiagonal exact factor: IC(0) keeps
        // every entry, so M = A exactly and apply() is a direct solve.
        let n = 12;
        let a = spd_tridiagonal(n);
        let ic = Ic0::factor(&a).unwrap();
        let dense = a.to_dense();
        let r = Vector::from_fn(n, |i| ((i as f64) * 0.9).sin() + 1.5);
        let z = apply_inverse(&ic, r.as_slice());
        let exact = crate::lu::solve(&dense, &r).unwrap();
        for (zi, ei) in z.iter().zip(exact.as_slice()) {
            assert!((zi - ei).abs() < 1e-10);
        }
        assert!(ic.nnz() > 0);
    }

    #[test]
    fn ic0_pattern_restriction_drops_fill_in() {
        // An arrow matrix fills in completely under exact Cholesky; IC(0)
        // must keep only the arrow pattern yet still produce an SPD M.
        let n = 6;
        let mut triplets = vec![];
        for i in 0..n {
            triplets.push((i, i, 4.0));
        }
        for i in 1..n {
            triplets.push((0, i, 1.0));
            triplets.push((i, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let ic = Ic0::factor(&a).unwrap();
        // Pattern of L == pattern of tril(A): first column + diagonal.
        assert_eq!(ic.nnz(), n + (n - 1));
        // M⁻¹ applied to anything stays finite and symmetric:
        // (e_i, M⁻¹ e_j) == (e_j, M⁻¹ e_i).
        let mut basis = vec![vec![0.0; n]; n];
        for (i, b) in basis.iter_mut().enumerate() {
            b[i] = 1.0;
        }
        for i in 0..n {
            let zi = apply_inverse(&ic, &basis[i]);
            for (j, zj) in basis.iter().enumerate().skip(i + 1) {
                let zj = apply_inverse(&ic, zj);
                assert!((zi[j] - zj[i]).abs() < 1e-12, "M must stay symmetric");
            }
        }
    }

    #[test]
    fn ic0_validates_inputs() {
        assert!(matches!(
            Ic0::factor(&CsrMatrix::zeros(2, 3)),
            Err(Error::NotSquare { .. })
        ));
        // Missing diagonal entry.
        let no_diag =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 0.5), (1, 0, 0.5)]).unwrap();
        assert!(matches!(
            Ic0::factor(&no_diag),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
        // Indefinite input breaks the recurrence.
        let indef =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 1.0)])
                .unwrap();
        assert!(matches!(
            Ic0::factor(&indef),
            Err(Error::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn precond_enum_builds_and_reports_kind() {
        let a = spd_tridiagonal(9);
        let jacobi = Precond::build(&a, &PrecondKind::Jacobi).unwrap();
        assert_eq!(jacobi.kind(), PrecondKind::Jacobi);
        let block = Precond::build(&a, &PrecondKind::BlockJacobi { block_dim: 4 }).unwrap();
        assert_eq!(block.kind(), PrecondKind::BlockJacobi { block_dim: 4 });
        let ic = Precond::build(&a, &PrecondKind::Ic0).unwrap();
        assert_eq!(ic.kind(), PrecondKind::Ic0);
        for p in [&jacobi, &block, &ic] {
            assert_eq!(p.dim(), 9);
            let r = vec![1.0; 9];
            let z = apply_inverse(p, &r);
            assert!(z.iter().all(|v| v.is_finite()));
        }
    }
}
