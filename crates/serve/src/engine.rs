//! The fit-once, query-many serving engine.
//!
//! `fit` pays the factorization cost of the chosen criterion once —
//! through the [`gssl_linalg::Factorization`] backend layer, either the
//! legacy direct route ([`EngineSolver::Direct`]: Cholesky/LU plus an
//! explicit cached inverse) or a [`gssl_linalg::SolverPolicy`] route
//! ([`EngineSolver::Auto`]) that may pick the iterative CG backend and
//! skip the inverse entirely — and caches the assembled system. After
//! that:
//!
//! * `predict_batch` answers out-of-sample queries with the paper's
//!   Nadaraya–Watson extension (Theorem II.1 / Eq. 6) — `O(N·d)` per
//!   query on the dense path, or `O(k)` kernel weights after a sublinear
//!   spatial-index search under the index-backed
//!   [`QueryPath`](crate::QueryPath)s — never touching a factorization;
//! * `observe_label` folds a newly revealed label into the cached inverse
//!   with an exact rank-1 (Sherman–Morrison family) update in `O(m²)`
//!   instead of refactoring in `O(m³)`, guarded by a residual check and a
//!   periodic full-refactor fallback.
//!
//! # Rank-1 update identities
//!
//! **Hard criterion** (Eq. 5). The cached system is `A = D₂₂ − W₂₂` over
//! the current unlabeled set, with inverse `B = A⁻¹`. When node `j`
//! becomes labeled, the new system is exactly `A` with row and column `j`
//! deleted — the degrees `D₂₂` are full-graph row sums and do not change.
//! The inverse of the deleted system over the survivors `S` is the
//! block-deletion identity (the Sherman–Morrison limit of sending the
//! `j`-th diagonal penalty to infinity):
//!
//! ```text
//! B' = B_SS − B_Sj B_jS / B_jj .
//! ```
//!
//! The right-hand side gains the new label's pull, `b'_a = b_a +
//! w(x_a, x_j) y_j`, and the updated scores are `f_S = B' b'`.
//!
//! **Soft criterion** (Eq. 3). The cached system is the full
//! `(n+m) × (n+m)` matrix `A = V + λL`. Labeling node `i` changes `V` by
//! `e_i e_iᵀ` — a textbook rank-1 perturbation — so
//!
//! ```text
//! B' = B − (B e_i)(e_iᵀ B) / (1 + B_ii) ,
//! ```
//!
//! the right-hand side gains `y_i` at row `i`, and `f = B' b'`.
//!
//! Both identities are exact in real arithmetic; floating-point drift
//! across many updates is what the residual guard `‖A f − b‖∞ ≤ tol`
//! catches. Because the rank-1 bookkeeping maintains the cached system
//! and right-hand side *exactly*, the guard's fallback re-factors the
//! cached system in place instead of reassembling it from the graph.

use crate::config::{EngineConfig, EngineSolver, QueryPath, ServeCriterion};
use crate::error::{Error, Result};
use crate::extend::QueryPlane;
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::types::{Prediction, QueryPoint};
use gssl::Problem;
use gssl_graph::{laplacian, KernelGraph, LaplacianKind};
use gssl_index::{NeighborSearch, SpatialIndex};
use gssl_linalg::{strict, Cholesky, Factorization, Lu, Matrix, SolverBackend};
use gssl_runtime::Executor;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Fit-once, query-many serving engine for graph-based semi-supervised
/// prediction.
///
/// ```
/// use gssl_graph::Kernel;
/// use gssl_linalg::Matrix;
/// use gssl_serve::{EngineConfig, QueryPoint, ServingEngine};
/// # fn main() -> Result<(), gssl_serve::Error> {
/// // Four 1-D points; the first two labeled 0 and 1.
/// let points = Matrix::from_rows(&[&[0.0], &[1.0], &[0.2], &[0.8]])
///     .map_err(gssl_serve::Error::Linalg)?;
/// let mut engine = ServingEngine::fit(
///     &points,
///     &[0.0, 1.0],
///     EngineConfig::new(Kernel::Gaussian, 0.5),
/// )?;
/// let out = engine.predict_batch(&[QueryPoint::new(vec![0.1])])?;
/// assert_eq!(out[0].class, 0);
/// // A streamed label folds in without refactoring.
/// engine.observe_label(2, 0.0)?;
/// assert_eq!(engine.metrics().factorizations, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    config: EngineConfig,
    graph: KernelGraph,
    weights: Matrix,
    degrees: gssl_linalg::Vector,
    multiclass: bool,
    class_count: usize,
    /// Per-node observed-label mask.
    labeled: Vec<bool>,
    /// Observed targets, `N × k` (rows of unlabeled nodes are zero).
    targets: Matrix,
    /// Global indices of the still-unlabeled nodes, in cached-system order.
    unlabeled: Vec<usize>,
    /// The cached criterion system (hard: `m × m`; soft: `N × N`). The
    /// rank-1 update paths maintain it *exactly* (deletion / diagonal
    /// bump), so a guarded refactor can re-factor it without reassembly.
    system: Matrix,
    /// Explicit inverse of `system`, maintained by rank-1 updates.
    /// `None` when the configured solver route selected an iterative
    /// backend (no factor to invert) or the system is empty.
    inverse: Option<Matrix>,
    /// Right-hand side matching `system`, one column per class.
    rhs: Matrix,
    /// Current fitted scores for all `N` nodes, one column per class.
    scores: Matrix,
    /// Spatial index over the fitted points, built once at fit time for
    /// the index-backed query paths. `None` under [`QueryPath::Dense`].
    index: Option<SpatialIndex>,
    executor: Executor,
    updates_since_refactor: usize,
    metrics: Mutex<ServeMetrics>,
}

impl ServingEngine {
    /// Fits a binary engine: `points` are all `N` coordinates (labeled
    /// first), `labels` the first `n` observations under the `{0, 1}`
    /// convention (any finite reals are accepted; only the `class` field
    /// of predictions assumes the convention).
    ///
    /// Costs one factorization: `O(m³)` for the hard criterion's
    /// `m × m` unlabeled block, `O(N³)` for the soft criterion's full
    /// system.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] for out-of-domain configuration;
    /// * [`Error::InvalidLabel`] when no labels (or more labels than
    ///   points) are supplied;
    /// * [`Error::NonFiniteValue`] for NaN/infinite labels or coordinates;
    /// * [`Error::Core`] when a graph component has no labeled anchor
    ///   (the criterion system would be singular).
    /// deterministic
    pub fn fit(points: &Matrix, labels: &[f64], config: EngineConfig) -> Result<Self> {
        if let Some(i) = labels.iter().position(|y| !y.is_finite()) {
            return Err(Error::NonFiniteValue {
                context: "serve.fit labels",
                index: i,
            });
        }
        let targets = Matrix::from_fn(labels.len(), 1, |i, _| labels[i]);
        Self::fit_internal(points, targets, false, 2, config)
    }

    /// Fits a multiclass engine via one-vs-rest: class labels become
    /// one-hot target rows and every class column shares the single cached
    /// factorization (the system depends only on the graph, not on the
    /// targets).
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::fit`], plus [`Error::InvalidLabel`] when
    /// `class_count < 2` or a class label is out of range.
    /// deterministic
    pub fn fit_multiclass(
        points: &Matrix,
        class_labels: &[usize],
        class_count: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        if class_count < 2 {
            return Err(Error::InvalidLabel {
                message: format!("class_count must be at least 2, got {class_count}"),
            });
        }
        if let Some(&bad) = class_labels.iter().find(|&&c| c >= class_count) {
            return Err(Error::InvalidLabel {
                message: format!("class label {bad} out of range for {class_count} classes"),
            });
        }
        let targets = Matrix::from_fn(class_labels.len(), class_count, |i, j| {
            if class_labels[i] == j {
                1.0
            } else {
                0.0
            }
        });
        Self::fit_internal(points, targets, true, class_count, config)
    }

    pub(crate) fn fit_internal(
        points: &Matrix,
        initial_targets: Matrix,
        multiclass: bool,
        class_count: usize,
        config: EngineConfig,
    ) -> Result<Self> {
        config.validate()?;
        let n = initial_targets.rows();
        let total = points.rows();
        if n == 0 {
            return Err(Error::InvalidLabel {
                message: "at least one labeled point is required".to_owned(),
            });
        }
        if n > total {
            return Err(Error::InvalidLabel {
                message: format!("{n} labels supplied for {total} points"),
            });
        }

        // One executor drives the whole pipeline: kernel-matrix assembly
        // here, the Auto solver policy's factorization, and predict_batch
        // sharding. `workers == 0` means host parallelism, `1` sequential.
        let executor = Executor::with_workers(config.workers);
        let graph = KernelGraph::fit(points.clone(), config.kernel, config.bandwidth)?;
        // The index-backed query paths pay the O(n log n) tree build once
        // here; the dense path skips it entirely.
        let index = if config.query_path == QueryPath::Dense {
            None
        } else {
            Some(SpatialIndex::build(points)?)
        };
        let weights = graph.weights_with(&executor)?;
        // Reuse the core crate's problem validation (symmetry, finiteness)
        // and its anchoring check: every component must contain a labeled
        // vertex or the criterion system is singular. Labeling only ever
        // grows the labeled set, so the check holds for the engine's whole
        // lifetime.
        let anchor_labels: Vec<f64> = (0..n).map(|i| initial_targets.get(i, 0)).collect();
        let problem = Problem::new(weights.clone(), anchor_labels)?;
        problem.require_anchored(0.0)?;
        let degrees = problem.degrees();

        let k = initial_targets.cols();
        let mut targets = Matrix::zeros(total, k);
        for i in 0..n {
            for c in 0..k {
                targets.set(i, c, initial_targets.get(i, c));
            }
        }
        let mut engine = ServingEngine {
            config,
            graph,
            weights,
            degrees,
            multiclass,
            class_count,
            labeled: (0..total).map(|i| i < n).collect(),
            targets,
            unlabeled: (n..total).collect(),
            system: Matrix::zeros(0, 0),
            inverse: None,
            rhs: Matrix::zeros(0, k),
            scores: Matrix::zeros(total, k),
            index,
            executor,
            updates_since_refactor: 0,
            metrics: Mutex::new(ServeMetrics::default()),
        };
        engine.rebuild()?;
        engine.lock_metrics().record_factorization();
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // Query path
    // ------------------------------------------------------------------

    /// Scores a batch of out-of-sample queries, sharded across the
    /// engine's thread pool.
    ///
    /// Under [`QueryPath::Dense`] each query costs `O(N·d)` for its kernel
    /// row plus `O(N·k)` for the weighted average of Eq. 6; the
    /// index-backed paths replace both with a sublinear tree search and
    /// `O(k)` neighbor weights. No factorization, no solve either way.
    /// Latency and throughput are recorded in [`ServingEngine::metrics`].
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidQuery`] on a dimension mismatch;
    /// * [`Error::NonFiniteValue`] for NaN/infinite coordinates (always
    ///   checked, with `index` flattened as `query · dim + coordinate`);
    /// * [`Error::ZeroKernelMass`] when a query sees zero total kernel
    ///   weight (possible for compactly supported kernels such as boxcar,
    ///   and for [`QueryPath::KNearest`] when all `k` kept weights vanish).
    /// hot
    /// complexity: O(b * n * c)
    /// deterministic
    pub fn predict_batch(&self, queries: &[QueryPoint]) -> Result<Vec<Prediction>> {
        let outcome = self.query_plane().predict_batch(&self.executor, queries)?;
        self.lock_metrics()
            .record_batch(&outcome.latencies, outcome.batch_seconds);
        Ok(outcome.predictions)
    }

    /// The Eq. 6 query plane over this engine's fitted state. The sharded
    /// engine borrows the same type over its *globally* reassembled
    /// scores, so both engines answer queries through identical code.
    pub(crate) fn query_plane(&self) -> QueryPlane<'_> {
        QueryPlane {
            graph: &self.graph,
            index: self.index.as_ref(),
            scores: &self.scores,
            config: &self.config,
            multiclass: self.multiclass,
        }
    }

    // ------------------------------------------------------------------
    // Incremental labeling
    // ------------------------------------------------------------------

    /// Folds a newly observed binary label into the fitted state with an
    /// exact rank-1 update of the cached inverse — `O(m²)` (hard) or
    /// `O(N²·k)` (soft) instead of a cubic refit.
    ///
    /// After the update, the residual guard `‖A f − b‖∞` and the periodic
    /// `refactor_every` counter decide whether a full refactorization is
    /// performed; both events are visible in [`ServingEngine::metrics`].
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidLabel`] on a multiclass engine (use
    ///   [`ServingEngine::observe_class_label`]);
    /// * [`Error::UnknownNode`] / [`Error::AlreadyLabeled`] for bad node
    ///   indices;
    /// * [`Error::NonFiniteValue`] for a NaN/infinite label.
    pub fn observe_label(&mut self, node: usize, y: f64) -> Result<()> {
        if self.multiclass {
            return Err(Error::InvalidLabel {
                message: "engine was fitted for multiclass labels; use observe_class_label"
                    .to_owned(),
            });
        }
        self.observe_target(node, vec![y])
    }

    /// Multiclass counterpart of [`ServingEngine::observe_label`]: the
    /// class index becomes a one-hot target row and all one-vs-rest
    /// columns are updated through the same rank-1 identity.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::observe_label`], plus [`Error::InvalidLabel`]
    /// for an out-of-range class.
    pub fn observe_class_label(&mut self, node: usize, class: usize) -> Result<()> {
        if !self.multiclass {
            return Err(Error::InvalidLabel {
                message: "engine was fitted for binary labels; use observe_label".to_owned(),
            });
        }
        if class >= self.class_count {
            return Err(Error::InvalidLabel {
                message: format!(
                    "class {class} out of range for {} classes",
                    self.class_count
                ),
            });
        }
        let mut target = vec![0.0; self.targets.cols()];
        target[class] = 1.0;
        self.observe_target(node, target)
    }

    fn observe_target(&mut self, node: usize, target: Vec<f64>) -> Result<()> {
        if node >= self.n_nodes() {
            return Err(Error::UnknownNode { node });
        }
        if self.labeled[node] {
            return Err(Error::AlreadyLabeled { node });
        }
        if let Some(pos) = target.iter().position(|t| !t.is_finite()) {
            return Err(Error::NonFiniteValue {
                context: "serve.observe_label target",
                index: pos,
            });
        }

        match self.config.criterion {
            ServeCriterion::Hard => self.rank1_hard(node, &target)?,
            ServeCriterion::Soft { .. } => self.rank1_soft(node, &target)?,
        }
        self.updates_since_refactor += 1;
        self.lock_metrics().record_rank1_update();

        let periodic = self.config.refactor_every > 0
            && self.updates_since_refactor >= self.config.refactor_every;
        if periodic || self.current_residual()? > self.config.residual_tolerance {
            // Only the factorization has drifted: the rank-1 bookkeeping
            // above kept `system` and `rhs` exact, so skip reassembly and
            // go straight to factoring the cached system.
            self.refactor_cached()?;
            self.lock_metrics().record_guarded_refactor();
        }
        strict::check_finite_matrix("serve.observe_label scores", &self.scores)?;
        Ok(())
    }

    /// Hard-criterion update: delete the labeled node from the cached
    /// `m × m` system via the inverse block-deletion identity.
    fn rank1_hard(&mut self, node: usize, target: &[f64]) -> Result<()> {
        let j = self
            .unlabeled
            .iter()
            .position(|&u| u == node)
            .ok_or_else(|| Error::Internal {
                message: format!("node {node} missing from unlabeled bookkeeping"),
            })?;
        let m = self.unlabeled.len();
        let k = self.targets.cols();

        self.labeled[node] = true;
        for (c, &t) in target.iter().enumerate() {
            self.targets.set(node, c, t);
            // Hard criterion clamps labeled scores to the observations.
            self.scores.set(node, c, t);
        }

        if m == 1 {
            // Last unlabeled node: the cached system becomes empty.
            self.unlabeled.clear();
            self.system = Matrix::zeros(0, 0);
            self.inverse = None;
            self.rhs = Matrix::zeros(0, k);
            return Ok(());
        }

        let keep: Vec<usize> = (0..m).filter(|&a| a != j).collect();
        // The freshly labeled node now pulls every surviving unlabeled row
        // through its edge weight: b'_a = b_a + w(x_a, x_node) · y.
        let mut new_rhs = Matrix::zeros(m - 1, k);
        for (a2, &a) in keep.iter().enumerate() {
            let w = self.weights.get(self.unlabeled[a], node);
            for c in 0..k {
                new_rhs.set(a2, c, self.rhs.get(a, c) + w * target[c]);
            }
        }
        // The shrunk system is the old one minus row/column j — degrees
        // are full-graph sums and unaffected by labeling. Maintained
        // exactly so guarded refactors can skip reassembly.
        let mut new_system = Matrix::zeros(m - 1, m - 1);
        for (a2, &a) in keep.iter().enumerate() {
            for (b2, &b) in keep.iter().enumerate() {
                new_system.set(a2, b2, self.system.get(a, b));
            }
        }

        let Some(inverse) = &self.inverse else {
            // Iterative backend: there is no explicit inverse to update.
            // The shrunk system above is exact, so re-solve it directly.
            self.unlabeled.remove(j);
            self.system = new_system;
            self.rhs = new_rhs;
            self.refactor_cached()?;
            self.lock_metrics().record_factorization();
            return Ok(());
        };

        let bjj = inverse.get(j, j);
        if !(bjj.abs() > f64::MIN_POSITIVE) {
            // Defensive: an SPD system cannot produce a zero diagonal in
            // its inverse, but fall back to a guarded refit rather than
            // dividing by (near-)zero.
            self.unlabeled.remove(j);
            self.rebuild()?;
            self.lock_metrics().record_guarded_refactor();
            return Ok(());
        }

        // B' = B_SS − B_Sj B_jS / B_jj over the surviving rows/columns.
        let mut new_inverse = Matrix::zeros(m - 1, m - 1);
        for (a2, &a) in keep.iter().enumerate() {
            let baj = inverse.get(a, j);
            for (b2, &b) in keep.iter().enumerate() {
                new_inverse.set(a2, b2, inverse.get(a, b) - baj * inverse.get(j, b) / bjj);
            }
        }

        let solution = new_inverse.matmul(&new_rhs)?;
        self.unlabeled.remove(j);
        for (a2, &ia) in self.unlabeled.iter().enumerate() {
            for c in 0..k {
                self.scores.set(ia, c, solution.get(a2, c));
            }
        }
        self.system = new_system;
        self.inverse = Some(new_inverse);
        self.rhs = new_rhs;
        Ok(())
    }

    /// Soft-criterion update: `V` gains `e_node e_nodeᵀ`, a textbook
    /// Sherman–Morrison rank-1 perturbation of the full system.
    fn rank1_soft(&mut self, node: usize, target: &[f64]) -> Result<()> {
        let total = self.n_nodes();
        // Defense in depth: the public observe path validates `node`, but
        // this update writes raw rows, so re-check the bound locally.
        if node >= total || target.len() != self.targets.cols() {
            return Err(Error::Internal {
                message: format!(
                    "rank1_soft: node {node} / target width {} out of shape ({total} nodes, {} classes)",
                    target.len(),
                    self.targets.cols()
                ),
            });
        }

        self.labeled[node] = true;
        for (c, &t) in target.iter().enumerate() {
            self.targets.set(node, c, t);
        }
        if let Some(pos) = self.unlabeled.iter().position(|&u| u == node) {
            self.unlabeled.remove(pos);
        }

        // The system/rhs updates are exact regardless of backend: V gains
        // e_node e_nodeᵀ and the right-hand side gains the target row.
        self.system
            .set(node, node, self.system.get(node, node) + 1.0);
        for (c, &t) in target.iter().enumerate() {
            self.rhs.set(node, c, self.rhs.get(node, c) + t);
        }

        let Some(inverse) = &self.inverse else {
            // Iterative backend: no explicit inverse — re-solve the
            // exactly-updated cached system directly.
            self.refactor_cached()?;
            self.lock_metrics().record_factorization();
            return Ok(());
        };

        let denom = 1.0 + inverse.get(node, node);
        if !(denom.abs() > f64::MIN_POSITIVE) {
            // Defensive: for the SPD system V + λL the denominator is
            // strictly greater than 1; never divide by (near-)zero.
            self.rebuild()?;
            self.lock_metrics().record_guarded_refactor();
            return Ok(());
        }

        // B' = B − (B e)(eᵀ B) / (1 + B_nn).
        let b_col = inverse.col(node);
        let b_row: Vec<f64> = inverse.row(node).to_vec();
        let mut new_inverse = Matrix::zeros(total, total);
        for a in 0..total {
            let ba = b_col[a];
            for b in 0..total {
                new_inverse.set(a, b, inverse.get(a, b) - ba * b_row[b] / denom);
            }
        }
        self.scores = new_inverse.matmul(&self.rhs)?;
        self.inverse = Some(new_inverse);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Refactorization and diagnostics
    // ------------------------------------------------------------------

    /// Rebuilds and refactors the cached system from scratch for the
    /// current labeled set, discarding accumulated rank-1 drift. Counted
    /// as a factorization in [`ServingEngine::metrics`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Linalg`] when the rebuilt system cannot be
    /// factored.
    pub fn refit(&mut self) -> Result<()> {
        self.rebuild()?;
        self.lock_metrics().record_factorization();
        Ok(())
    }

    /// Factors a criterion system through the configured solver route, on
    /// the engine's executor (factors are bit-identical at any worker
    /// count, so this never perturbs served scores).
    fn factor_system(&self, system: &Matrix) -> Result<SolverBackend> {
        match (&self.config.solver, self.config.criterion) {
            // Legacy direct route: Cholesky for the SPD hard block, LU for
            // the soft full system, byte-for-byte the historical behavior.
            (EngineSolver::Direct, ServeCriterion::Hard) => Ok(SolverBackend::Cholesky(
                Cholesky::factor_with(system, &self.executor)?,
            )),
            (EngineSolver::Direct, ServeCriterion::Soft { .. }) => {
                Ok(SolverBackend::Lu(Lu::factor_with(system, &self.executor)?))
            }
            // Both criterion systems are SPD (the hard block by anchored
            // diagonal dominance, V + λL by construction), so the policy's
            // SPD route applies to either.
            (EngineSolver::Auto(policy), _) => Ok(policy
                .clone()
                .with_executor(self.executor.clone())
                .factor_spd(system)?),
        }
    }

    /// Full rebuild: reassemble the criterion system and right-hand side
    /// from the graph for the current labeled set, then factor and solve.
    fn rebuild(&mut self) -> Result<()> {
        match self.config.criterion {
            ServeCriterion::Hard => self.assemble_hard(),
            ServeCriterion::Soft { lambda } => self.assemble_soft(lambda)?,
        }
        self.refactor_cached()
    }

    /// Factors the *already assembled* cached system and re-solves the
    /// cached right-hand side, refreshing scores and (for direct backends)
    /// the explicit inverse. This is the guarded-fallback path: rank-1
    /// bookkeeping keeps `system`/`rhs` exact, so when only the
    /// factorization has drifted there is nothing to reassemble.
    fn refactor_cached(&mut self) -> Result<()> {
        let k = self.targets.cols();
        match self.config.criterion {
            ServeCriterion::Hard => {
                let m = self.unlabeled.len();
                if m == 0 {
                    self.inverse = None;
                } else {
                    let backend = self.factor_system(&self.system)?;
                    let solution = backend.solve_matrix(&self.rhs)?;
                    // After the solve so iterative backends report their
                    // iteration count and final residual.
                    self.lock_metrics().record_factor_report(backend.report());
                    self.inverse = if backend.kind().is_iterative() {
                        None
                    } else {
                        Some(backend.inverse()?)
                    };
                    for (a, &ia) in self.unlabeled.iter().enumerate() {
                        for c in 0..k {
                            self.scores.set(ia, c, solution.get(a, c));
                        }
                    }
                }
            }
            ServeCriterion::Soft { .. } => {
                let backend = self.factor_system(&self.system)?;
                self.scores = backend.solve_matrix(&self.rhs)?;
                self.lock_metrics().record_factor_report(backend.report());
                self.inverse = if backend.kind().is_iterative() {
                    None
                } else {
                    Some(backend.inverse()?)
                };
            }
        }
        self.updates_since_refactor = 0;
        strict::check_finite_matrix("serve cached scores", &self.scores)?;
        Ok(())
    }

    /// Assembles the hard system `A = D₂₂ − W₂₂` and its right-hand side
    /// over the current unlabeled set into the cache (no factorization).
    fn assemble_hard(&mut self) {
        let k = self.targets.cols();
        let m = self.unlabeled.len();
        let total = self.n_nodes();

        for i in 0..total {
            if self.labeled[i] {
                for c in 0..k {
                    self.scores.set(i, c, self.targets.get(i, c));
                }
            }
        }

        // Full-graph degrees on the diagonal.
        let mut system = Matrix::zeros(m, m);
        for (a, &ia) in self.unlabeled.iter().enumerate() {
            for (b, &ib) in self.unlabeled.iter().enumerate() {
                let w = self.weights.get(ia, ib);
                system.set(a, b, if a == b { self.degrees[ia] - w } else { -w });
            }
        }
        let mut rhs = Matrix::zeros(m, k);
        for (a, &ia) in self.unlabeled.iter().enumerate() {
            for j in 0..total {
                if self.labeled[j] {
                    let w = self.weights.get(ia, j);
                    for c in 0..k {
                        rhs.set(a, c, rhs.get(a, c) + w * self.targets.get(j, c));
                    }
                }
            }
        }
        self.system = system;
        self.rhs = rhs;
    }

    /// Assembles the soft full system `A = V + λL` (the literal Eq. 3
    /// matrix, matching `SoftCriterion::fit_full_system`) and its
    /// right-hand side into the cache (no factorization).
    fn assemble_soft(&mut self, lambda: f64) -> Result<()> {
        let k = self.targets.cols();
        let total = self.n_nodes();

        let l = laplacian(&self.weights, LaplacianKind::Unnormalized)?;
        let mut system = l.map(|x| lambda * x);
        let mut rhs = Matrix::zeros(total, k);
        for i in 0..total {
            if self.labeled[i] {
                system.set(i, i, system.get(i, i) + 1.0);
                for c in 0..k {
                    rhs.set(i, c, self.targets.get(i, c));
                }
            }
        }
        self.system = system;
        self.rhs = rhs;
        Ok(())
    }

    /// The current residual `‖A f − b‖∞` of the cached system — the
    /// quantity the post-update guard compares against
    /// `residual_tolerance`. Zero (up to factorization accuracy) right
    /// after a refit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Linalg`] on a dimension mismatch (an internal
    /// invariant violation).
    pub fn residual(&self) -> Result<f64> {
        self.current_residual()
    }

    fn current_residual(&self) -> Result<f64> {
        match self.config.criterion {
            ServeCriterion::Hard => {
                let m = self.unlabeled.len();
                if m == 0 {
                    return Ok(0.0);
                }
                let k = self.targets.cols();
                let f = Matrix::from_fn(m, k, |a, c| self.scores.get(self.unlabeled[a], c));
                Ok((&self.system.matmul(&f)? - &self.rhs).norm_max())
            }
            ServeCriterion::Soft { .. } => {
                Ok((&self.system.matmul(&self.scores)? - &self.rhs).norm_max())
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of nodes in the fitted graph.
    pub fn n_nodes(&self) -> usize {
        self.labeled.len()
    }

    /// Input dimension the engine was fitted on.
    pub fn dim(&self) -> usize {
        self.graph.dim()
    }

    /// Number of nodes whose label has been observed.
    pub fn n_labeled(&self) -> usize {
        self.labeled.iter().filter(|&&b| b).count()
    }

    /// Number of still-unlabeled nodes.
    pub fn n_unlabeled(&self) -> usize {
        self.unlabeled.len()
    }

    /// Number of classes (2 for a binary engine).
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Whether the engine was fitted with one-vs-rest multiclass targets.
    pub fn is_multiclass(&self) -> bool {
        self.multiclass
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Worker count of the engine's executor (1 when sequential).
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The shared executor driving assembly, factorization and batch
    /// prediction.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The fitted kernel graph (points, kernel, bandwidth).
    pub fn graph(&self) -> &KernelGraph {
        &self.graph
    }

    /// Current fitted scores for all nodes (`N × k`, one column per
    /// class; a binary engine has a single column).
    pub fn scores(&self) -> &Matrix {
        &self.scores
    }

    /// Convenience: the binary score of one fitted node.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidLabel`] on a multiclass engine,
    /// [`Error::UnknownNode`] for an out-of-range index.
    pub fn score(&self, node: usize) -> Result<f64> {
        if self.multiclass {
            return Err(Error::InvalidLabel {
                message: "score() is binary-only; use scores() for multiclass".to_owned(),
            });
        }
        if node >= self.n_nodes() {
            return Err(Error::UnknownNode { node });
        }
        Ok(self.scores.get(node, 0))
    }

    /// Snapshot of the engine's latency/throughput counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.lock_metrics().snapshot()
    }

    fn lock_metrics(&self) -> MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // ------------------------------------------------------------------
    // Snapshot plumbing (crate-internal)
    // ------------------------------------------------------------------

    /// Per-node observed-label mask (all `N` nodes).
    pub(crate) fn labeled_mask(&self) -> &[bool] {
        &self.labeled
    }

    /// Observed targets, `N × k` (unlabeled rows are zero).
    pub(crate) fn targets_matrix(&self) -> &Matrix {
        &self.targets
    }

    /// Global indices of the still-unlabeled nodes, in cached-system order.
    pub(crate) fn unlabeled_indices(&self) -> &[usize] {
        &self.unlabeled
    }

    /// The cached criterion system.
    pub(crate) fn system_matrix(&self) -> &Matrix {
        &self.system
    }

    /// The cached explicit inverse, when the backend keeps one.
    pub(crate) fn inverse_matrix(&self) -> Option<&Matrix> {
        self.inverse.as_ref()
    }

    /// The cached right-hand side.
    pub(crate) fn rhs_matrix(&self) -> &Matrix {
        &self.rhs
    }

    /// Rank-1 updates folded since the last full refactorization.
    pub(crate) fn updates_since_refactor(&self) -> usize {
        self.updates_since_refactor
    }

    /// Rehydrates an engine from snapshot state **without factoring**:
    /// the kernel graph, weight matrix and degree vector are recomputed
    /// from the points (cheap `O(n²·d)` assembly), while the expensive
    /// cached factorization artifacts (`system`, `inverse`, `rhs`,
    /// `scores`) are restored verbatim. This is the cold-start path that
    /// makes snapshot restore beat a refit.
    ///
    /// The caller (the snapshot codec) is trusted to pass shapes that are
    /// mutually consistent; the strict sanitizer still guards the scores.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot_parts(
        points: &Matrix,
        config: EngineConfig,
        multiclass: bool,
        class_count: usize,
        labeled: Vec<bool>,
        targets: Matrix,
        unlabeled: Vec<usize>,
        system: Matrix,
        inverse: Option<Matrix>,
        rhs: Matrix,
        scores: Matrix,
        updates_since_refactor: usize,
    ) -> Result<Self> {
        config.validate()?;
        let executor = Executor::with_workers(config.workers);
        let graph = KernelGraph::fit(points.clone(), config.kernel, config.bandwidth)?;
        let index = if config.query_path == QueryPath::Dense {
            None
        } else {
            Some(SpatialIndex::build(points)?)
        };
        let weights = graph.weights_with(&executor)?;
        // Same reduction as `Problem::degrees` on a dense weight matrix,
        // so restored degrees are bit-identical to the fitted ones.
        let degrees = weights.row_sums();
        strict::check_finite_matrix("serve snapshot scores", &scores)?;
        Ok(ServingEngine {
            config,
            graph,
            weights,
            degrees,
            multiclass,
            class_count,
            labeled,
            targets,
            unlabeled,
            system,
            inverse,
            rhs,
            scores,
            index,
            executor,
            updates_since_refactor,
            metrics: Mutex::new(ServeMetrics::default()),
        })
    }
}

impl Clone for ServingEngine {
    /// Deep-copies the fitted state (the epoch-swap path clones the
    /// affected shard before folding a label into it). The metrics
    /// counters are copied at their current values; the `Mutex` itself is
    /// fresh.
    fn clone(&self) -> Self {
        ServingEngine {
            config: self.config.clone(),
            graph: self.graph.clone(),
            weights: self.weights.clone(),
            degrees: self.degrees.clone(),
            multiclass: self.multiclass,
            class_count: self.class_count,
            labeled: self.labeled.clone(),
            targets: self.targets.clone(),
            unlabeled: self.unlabeled.clone(),
            system: self.system.clone(),
            inverse: self.inverse.clone(),
            rhs: self.rhs.clone(),
            scores: self.scores.clone(),
            index: self.index.clone(),
            executor: self.executor.clone(),
            updates_since_refactor: self.updates_since_refactor,
            metrics: Mutex::new(self.lock_metrics().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gssl_graph::Kernel;

    fn line_points(total: usize) -> Matrix {
        Matrix::from_fn(total, 1, |i, _| i as f64 * 0.3)
    }

    fn hard_config() -> EngineConfig {
        EngineConfig::new(Kernel::Gaussian, 0.8).workers(1)
    }

    #[test]
    fn fit_validates_inputs() {
        let points = line_points(4);
        assert!(matches!(
            ServingEngine::fit(&points, &[], hard_config()),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            ServingEngine::fit(&points, &[0.0; 5], hard_config()),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            ServingEngine::fit(&points, &[f64::NAN], hard_config()),
            Err(Error::NonFiniteValue { .. })
        ));
        assert!(matches!(
            ServingEngine::fit_multiclass(&points, &[0, 1], 1, hard_config()),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            ServingEngine::fit_multiclass(&points, &[0, 7], 3, hard_config()),
            Err(Error::InvalidLabel { .. })
        ));
    }

    #[test]
    fn predict_rejects_bad_queries() {
        let engine = ServingEngine::fit(&line_points(5), &[0.0, 1.0], hard_config()).unwrap();
        assert!(matches!(
            engine.predict_batch(&[QueryPoint::new(vec![0.0, 0.0])]),
            Err(Error::InvalidQuery { .. })
        ));
        let err = engine
            .predict_batch(&[QueryPoint::new(vec![0.1]), QueryPoint::new(vec![f64::NAN])])
            .unwrap_err();
        assert_eq!(
            err,
            Error::NonFiniteValue {
                context: "serve.predict query coordinates",
                index: 1
            }
        );
    }

    #[test]
    fn boxcar_far_query_has_zero_mass() {
        let config = EngineConfig::new(Kernel::Boxcar, 0.5).workers(1);
        let engine = ServingEngine::fit(&line_points(4), &[0.0, 1.0], config).unwrap();
        assert_eq!(
            engine.predict_batch(&[QueryPoint::new(vec![1e6])]),
            Err(Error::ZeroKernelMass { query_index: 0 })
        );
    }

    #[test]
    fn queries_never_refactor() {
        let engine = ServingEngine::fit(&line_points(8), &[0.0, 1.0], hard_config()).unwrap();
        let queries: Vec<QueryPoint> = (0..40)
            .map(|i| QueryPoint::new(vec![i as f64 * 0.05]))
            .collect();
        for _ in 0..5 {
            engine.predict_batch(&queries).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.factorizations, 1);
        assert_eq!(m.queries, 200);
        assert_eq!(m.batches, 5);
        assert_eq!(m.latencies.len(), 200);
    }

    #[test]
    fn predictions_match_manual_extension() {
        let engine = ServingEngine::fit(&line_points(6), &[0.0, 1.0, 1.0], hard_config()).unwrap();
        let query = vec![0.77];
        let row = engine.graph().kernel_row(&query).unwrap();
        let mass: f64 = row.as_slice().iter().sum();
        let manual: f64 = row
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, w)| w * engine.scores().get(i, 0))
            .sum::<f64>()
            / mass;
        let out = engine.predict_batch(&[QueryPoint::new(query)]).unwrap();
        assert!((out[0].score - manual).abs() < 1e-14);
        assert_eq!(out[0].class, usize::from(manual >= 0.5));
    }

    #[test]
    fn parallel_and_sequential_batches_agree() {
        let points = Matrix::from_fn(30, 2, |i, j| ((i * 7 + j * 3) % 13) as f64 * 0.21);
        let labels: Vec<f64> = (0..6).map(|i| (i % 2) as f64).collect();
        let seq = ServingEngine::fit(&points, &labels, hard_config()).unwrap();
        let par = ServingEngine::fit(&points, &labels, hard_config().workers(4)).unwrap();
        let queries: Vec<QueryPoint> = (0..123)
            .map(|i| QueryPoint::new(vec![(i % 11) as f64 * 0.2, (i % 7) as f64 * 0.3]))
            .collect();
        let a = seq.predict_batch(&queries).unwrap();
        let b = par.predict_batch(&queries).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn observe_label_bookkeeping_and_errors() {
        let mut engine = ServingEngine::fit(&line_points(5), &[0.0, 1.0], hard_config()).unwrap();
        assert_eq!(engine.n_labeled(), 2);
        assert_eq!(engine.n_unlabeled(), 3);
        assert!(matches!(
            engine.observe_label(99, 1.0),
            Err(Error::UnknownNode { node: 99 })
        ));
        assert!(matches!(
            engine.observe_label(0, 1.0),
            Err(Error::AlreadyLabeled { node: 0 })
        ));
        assert!(matches!(
            engine.observe_label(3, f64::INFINITY),
            Err(Error::NonFiniteValue { .. })
        ));
        assert!(matches!(
            engine.observe_class_label(3, 0),
            Err(Error::InvalidLabel { .. })
        ));
        engine.observe_label(3, 1.0).unwrap();
        assert_eq!(engine.n_labeled(), 3);
        assert_eq!(engine.n_unlabeled(), 2);
        assert_eq!(engine.score(3).unwrap(), 1.0);
        assert!(matches!(
            engine.observe_label(3, 0.0),
            Err(Error::AlreadyLabeled { node: 3 })
        ));
        assert_eq!(engine.metrics().rank1_updates, 1);
    }

    #[test]
    fn labeling_every_node_empties_the_system() {
        let mut engine = ServingEngine::fit(&line_points(4), &[0.0, 1.0], hard_config()).unwrap();
        engine.observe_label(2, 1.0).unwrap();
        engine.observe_label(3, 0.0).unwrap();
        assert_eq!(engine.n_unlabeled(), 0);
        assert_eq!(engine.residual().unwrap(), 0.0);
        // Scores are exactly the observations now, and queries still work.
        assert_eq!(engine.score(2).unwrap(), 1.0);
        let out = engine.predict_batch(&[QueryPoint::new(vec![0.6])]).unwrap();
        assert!(out[0].score.is_finite());
        // Further updates keep erroring cleanly.
        assert!(matches!(
            engine.observe_label(2, 1.0),
            Err(Error::AlreadyLabeled { .. })
        ));
    }

    #[test]
    fn periodic_refactor_fallback_triggers() {
        let config = hard_config().refactor_every(1);
        let mut engine = ServingEngine::fit(&line_points(6), &[0.0, 1.0], config).unwrap();
        engine.observe_label(2, 1.0).unwrap();
        engine.observe_label(4, 0.0).unwrap();
        let m = engine.metrics();
        assert_eq!(m.rank1_updates, 2);
        assert_eq!(m.guarded_refactors, 2);
        assert_eq!(m.factorizations, 3); // initial + 2 guarded
    }

    #[test]
    fn explicit_refit_is_counted_and_idempotent() {
        let mut engine = ServingEngine::fit(&line_points(5), &[0.0, 1.0], hard_config()).unwrap();
        let before = engine.scores().clone();
        engine.refit().unwrap();
        assert!(engine.scores().approx_eq(&before, 1e-12));
        assert_eq!(engine.metrics().factorizations, 2);
    }

    #[test]
    fn factor_report_is_surfaced_in_metrics() {
        // Direct route: the report names the backend but carries no
        // iteration diagnostics.
        let engine = ServingEngine::fit(&line_points(6), &[0.0, 1.0], hard_config()).unwrap();
        let report = engine.metrics().last_factor.expect("fit factors once");
        assert_eq!(report.backend, gssl_linalg::BackendKind::DenseCholesky);
        assert_eq!(report.iterations, None);

        // Forced-iterative route: the post-solve report exposes the PCG
        // iteration count and final residual, so a cap hit is observable.
        let policy = gssl_linalg::SolverPolicy {
            direct_dim_cutoff: 0,
            density_threshold: 1.0,
            ..gssl_linalg::SolverPolicy::default()
        };
        let config = hard_config().solver(EngineSolver::Auto(policy));
        let mut engine = ServingEngine::fit(&line_points(6), &[0.0, 1.0], config).unwrap();
        let report = engine.metrics().last_factor.expect("fit factors once");
        assert!(report.backend.is_iterative());
        assert!(report.iterations.unwrap() >= 1);
        assert!(report.final_residual.unwrap().is_finite());

        // A refit refreshes the report.
        engine.refit().unwrap();
        assert!(engine.metrics().last_factor.unwrap().backend.is_iterative());
    }

    #[test]
    fn multiclass_predictions_argmax_one_hot_targets() {
        // Three well-separated 1-D clusters, one labeled point each.
        let coords: Vec<f64> = vec![0.0, 10.0, 20.0, 0.3, 10.3, 19.7];
        let points = Matrix::from_fn(6, 1, |i, _| coords[i]);
        let config = EngineConfig::new(Kernel::Gaussian, 1.0).workers(1);
        let mut engine = ServingEngine::fit_multiclass(&points, &[0, 1, 2], 3, config).unwrap();
        assert!(engine.is_multiclass());
        assert_eq!(engine.class_count(), 3);
        assert!(engine.score(0).is_err());
        let out = engine
            .predict_batch(&[
                QueryPoint::new(vec![0.1]),
                QueryPoint::new(vec![10.1]),
                QueryPoint::new(vec![19.9]),
            ])
            .unwrap();
        assert_eq!(out[0].class, 0);
        assert_eq!(out[1].class, 1);
        assert_eq!(out[2].class, 2);
        for p in &out {
            assert_eq!(p.per_class.len(), 3);
            assert!((p.score - p.per_class[p.class]).abs() < 1e-15);
        }
        // Streaming a class label works and clamps the one-hot row.
        engine.observe_class_label(5, 2).unwrap();
        assert_eq!(engine.scores().get(5, 2), 1.0);
        assert_eq!(engine.scores().get(5, 0), 0.0);
        assert!(matches!(
            engine.observe_class_label(4, 9),
            Err(Error::InvalidLabel { .. })
        ));
        assert!(matches!(
            engine.observe_label(4, 1.0),
            Err(Error::InvalidLabel { .. })
        ));
    }

    #[test]
    fn auto_solver_matches_direct_route() {
        // Small dense Gaussian graph: the policy picks Cholesky for the
        // hard criterion, so Auto and Direct must agree to rounding.
        let points = line_points(8);
        let labels = [0.0, 1.0, 1.0];
        let direct = ServingEngine::fit(&points, &labels, hard_config()).unwrap();
        let auto_cfg =
            hard_config().solver(EngineSolver::Auto(gssl_linalg::SolverPolicy::default()));
        let mut auto = ServingEngine::fit(&points, &labels, auto_cfg).unwrap();
        assert!(auto.scores().approx_eq(direct.scores(), 1e-10));

        let mut direct = direct;
        direct.observe_label(4, 1.0).unwrap();
        auto.observe_label(4, 1.0).unwrap();
        assert!(auto.scores().approx_eq(direct.scores(), 1e-10));
    }

    #[test]
    fn auto_solver_matches_direct_route_soft() {
        let points = line_points(8);
        let labels = [0.0, 1.0, 1.0];
        let soft = |solver: EngineSolver| {
            EngineConfig::new(Kernel::Gaussian, 0.8)
                .workers(1)
                .criterion(ServeCriterion::Soft { lambda: 0.3 })
                .solver(solver)
        };
        let mut direct = ServingEngine::fit(&points, &labels, soft(EngineSolver::Direct)).unwrap();
        let mut auto = ServingEngine::fit(
            &points,
            &labels,
            soft(EngineSolver::Auto(gssl_linalg::SolverPolicy::default())),
        )
        .unwrap();
        // Direct uses LU, Auto routes the SPD system through Cholesky.
        assert!(auto.scores().approx_eq(direct.scores(), 1e-8));
        direct.observe_label(5, 0.0).unwrap();
        auto.observe_label(5, 0.0).unwrap();
        assert!(auto.scores().approx_eq(direct.scores(), 1e-8));
    }

    #[test]
    fn auto_solver_iterative_backend_serves_sparse_graphs() {
        // A boxcar kernel on a long line yields a banded (sparse) hard
        // system: 134 unlabeled nodes at density « 25% routes the policy
        // to the CG backend, which keeps no explicit inverse.
        let total = 140;
        let points = line_points(total);
        let labels: Vec<f64> = (0..6).map(|i| (i % 2) as f64).collect();
        let config = EngineConfig::new(Kernel::Boxcar, 0.35).workers(1);
        let direct = ServingEngine::fit(&points, &labels, config.clone()).unwrap();
        let auto_cfg = config.solver(EngineSolver::Auto(gssl_linalg::SolverPolicy::default()));
        let mut auto = ServingEngine::fit(&points, &labels, auto_cfg).unwrap();
        assert!(auto.scores().approx_eq(direct.scores(), 1e-6));

        // Label arrival without an inverse: the exactly-maintained system
        // is re-solved and stays consistent with the direct twin.
        let mut direct = direct;
        direct.observe_label(70, 1.0).unwrap();
        auto.observe_label(70, 1.0).unwrap();
        assert!(auto.scores().approx_eq(direct.scores(), 1e-6));
        assert!(auto.residual().unwrap() < 1e-6);
    }

    #[test]
    fn guarded_refactor_reuses_cached_system() {
        // refactor_every(1) forces the guarded fallback after every
        // update; the fallback factors the rank-1-maintained cached
        // system without reassembly, so it must agree with an explicitly
        // refitted twin to tight tolerance.
        let mut engine = ServingEngine::fit(
            &line_points(7),
            &[0.0, 1.0],
            hard_config().refactor_every(1),
        )
        .unwrap();
        let mut twin = ServingEngine::fit(&line_points(7), &[0.0, 1.0], hard_config()).unwrap();
        for (node, y) in [(3, 1.0), (5, 0.0)] {
            engine.observe_label(node, y).unwrap();
            twin.observe_label(node, y).unwrap();
            twin.refit().unwrap();
            assert!(engine.scores().approx_eq(twin.scores(), 1e-10));
        }
    }

    /// A deterministic 2-D cloud in the unit square (same low-discrepancy
    /// recurrence as the benchmarks).
    fn plane_points(total: usize) -> Matrix {
        Matrix::from_fn(total, 2, |i, j| {
            (((i * 131 + j * 37 + 11) as f64) * 0.618_033_988_749_894_9).fract()
        })
    }

    fn plane_queries(count: usize) -> Vec<QueryPoint> {
        (0..count)
            .map(|q| {
                QueryPoint::new(vec![
                    (((q * 53 + 5) as f64) * 0.618_033_988_749_894_9).fract(),
                    (((q * 97 + 29) as f64) * 0.618_033_988_749_894_9).fract(),
                ])
            })
            .collect()
    }

    fn assert_agree(a: &[Prediction], b: &[Prediction], tol: f64, what: &str) {
        assert_eq!(a.len(), b.len());
        for (qi, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.class, y.class, "{what}: class diverged at query {qi}");
            for (u, v) in x.per_class.iter().zip(&y.per_class) {
                assert!(
                    (u - v).abs() <= tol,
                    "{what}: query {qi} scores {u} vs {v} differ beyond {tol}"
                );
            }
        }
    }

    #[test]
    fn within_support_path_matches_dense_to_1e10() {
        // Compact kernel: every node outside the support ball has weight
        // exactly zero, so the indexed truncation and the dense row sum
        // the same non-zero terms (in different order).
        let points = plane_points(60);
        let labels = [0.0, 1.0, 0.0, 1.0];
        let dense_cfg = EngineConfig::new(Kernel::Epanechnikov, 0.9).workers(1);
        let dense = ServingEngine::fit(&points, &labels, dense_cfg.clone()).unwrap();
        let indexed = ServingEngine::fit(
            &points,
            &labels,
            dense_cfg.query_path(QueryPath::WithinSupport),
        )
        .unwrap();
        let queries = plane_queries(24);
        assert_agree(
            &dense.predict_batch(&queries).unwrap(),
            &indexed.predict_batch(&queries).unwrap(),
            1e-10,
            "within-support vs dense",
        );
    }

    #[test]
    fn k_nearest_with_full_k_matches_dense_to_1e10() {
        // With k = n the truncation keeps every node, so even the
        // Gaussian kernel (unbounded support) must agree with the dense
        // path up to floating-point summation order.
        let points = plane_points(40);
        let labels = [0.0, 1.0, 1.0];
        let dense_cfg = EngineConfig::new(Kernel::Gaussian, 0.5).workers(1);
        let dense = ServingEngine::fit(&points, &labels, dense_cfg.clone()).unwrap();
        let indexed = ServingEngine::fit(
            &points,
            &labels,
            dense_cfg.query_path(QueryPath::KNearest { k: points.rows() }),
        )
        .unwrap();
        let queries = plane_queries(16);
        assert_agree(
            &dense.predict_batch(&queries).unwrap(),
            &indexed.predict_batch(&queries).unwrap(),
            1e-10,
            "k = n vs dense",
        );
    }

    #[test]
    fn truncated_k_nearest_matches_dense_on_compact_support() {
        // Two clusters one bandwidth can't bridge: the dense row is zero
        // outside the query's cluster, and k = cluster size keeps exactly
        // the nodes that can carry weight — the truncation is lossless.
        let per_cluster = 8;
        let points = Matrix::from_fn(2 * per_cluster, 2, |i, j| {
            let offset = if i % 2 == 0 { 0.0 } else { 10.0 };
            offset + (((i * 31 + j * 17 + 3) as f64) * 0.618_033_988_749_894_9).fract()
        });
        // Labeled-first convention: node 0 sits in cluster A, node 1 in B.
        let labels = [0.0, 1.0];
        let dense_cfg = EngineConfig::new(Kernel::Triangular, 1.4).workers(1);
        let dense = ServingEngine::fit(&points, &labels, dense_cfg.clone()).unwrap();
        let indexed = ServingEngine::fit(
            &points,
            &labels,
            dense_cfg.query_path(QueryPath::KNearest { k: per_cluster }),
        )
        .unwrap();
        let queries: Vec<QueryPoint> = (0..8)
            .map(|q| {
                let offset = if q % 2 == 0 { 0.0 } else { 10.0 };
                QueryPoint::new(vec![offset + 0.4, offset + 0.6])
            })
            .collect();
        let dense_out = dense.predict_batch(&queries).unwrap();
        assert_agree(
            &dense_out,
            &indexed.predict_batch(&queries).unwrap(),
            1e-10,
            "truncated k vs dense",
        );
        // The clusters really are separated: class follows the cluster.
        for (q, p) in dense_out.iter().enumerate() {
            assert_eq!(p.class, q % 2, "query {q} crossed clusters");
        }
    }

    #[test]
    fn indexed_paths_are_deterministic_across_worker_counts() {
        let points = plane_points(50);
        let labels = [0.0, 1.0, 0.0];
        let queries = plane_queries(20);
        for path in [QueryPath::KNearest { k: 7 }, QueryPath::WithinSupport] {
            let fit = |workers: usize| {
                ServingEngine::fit(
                    &points,
                    &labels,
                    EngineConfig::new(Kernel::Quartic, 0.9)
                        .workers(workers)
                        .query_path(path),
                )
                .unwrap()
            };
            let reference = fit(1).predict_batch(&queries).unwrap();
            for workers in [2, 4, 8] {
                let got = fit(workers).predict_batch(&queries).unwrap();
                // Same queries against the same index in a different
                // sharding must be bitwise identical, not just close.
                for (a, b) in reference.iter().zip(&got) {
                    assert_eq!(a, b, "worker count {workers} changed a prediction");
                }
            }
        }
    }

    #[test]
    fn empty_support_ball_reports_zero_kernel_mass() {
        let points = plane_points(12);
        let config = EngineConfig::new(Kernel::Boxcar, 0.4)
            .workers(1)
            .query_path(QueryPath::WithinSupport);
        let engine = ServingEngine::fit(&points, &[0.0, 1.0], config).unwrap();
        let far = QueryPoint::new(vec![50.0, 50.0]);
        assert_eq!(
            engine.predict_batch(&[far]),
            Err(Error::ZeroKernelMass { query_index: 0 })
        );
    }

    #[test]
    fn fit_rejects_index_paths_that_fail_validation() {
        let points = plane_points(10);
        assert!(matches!(
            ServingEngine::fit(
                &points,
                &[0.0, 1.0],
                EngineConfig::new(Kernel::Gaussian, 0.5).query_path(QueryPath::WithinSupport),
            ),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            ServingEngine::fit(
                &points,
                &[0.0, 1.0],
                EngineConfig::new(Kernel::Boxcar, 0.5).query_path(QueryPath::KNearest { k: 0 }),
            ),
            Err(Error::InvalidConfig { .. })
        ));
    }

    #[test]
    fn multiclass_indexed_path_matches_dense() {
        let points = plane_points(45);
        let class_labels = [0, 1, 2, 0, 1, 2];
        let dense_cfg = EngineConfig::new(Kernel::Tricube, 0.8).workers(1);
        let dense =
            ServingEngine::fit_multiclass(&points, &class_labels, 3, dense_cfg.clone()).unwrap();
        let indexed = ServingEngine::fit_multiclass(
            &points,
            &class_labels,
            3,
            dense_cfg.query_path(QueryPath::WithinSupport),
        )
        .unwrap();
        let queries = plane_queries(18);
        assert_agree(
            &dense.predict_batch(&queries).unwrap(),
            &indexed.predict_batch(&queries).unwrap(),
            1e-10,
            "multiclass within-support vs dense",
        );
    }
}
