//! The shape-contract pass: machine-readable `/// shape: (…)` doc
//! annotations on `Matrix`/`Vector`-producing functions, validated for
//! grammar and checked for consistency at call sites of the block
//! operations the paper's criteria are built from (`W₂₁·Y_n` products,
//! block extraction, Sherman-Morrison updates).
//!
//! # Annotation grammar
//!
//! ```text
//! /// shape: (DIM)            — Vector-producing (also `(DIM,)`)
//! /// shape: (DIM, DIM)      — Matrix-producing
//! DIM := INT                  — concrete dimension
//!      | IDENT                — free symbol naming a dimension (`n`, `d`)
//!      | IDENT '.' FIELD      — dimension of a parameter; IDENT must be a
//!                               parameter name or `self`,
//!                               FIELD ∈ {rows, cols, len}
//! ```
//!
//! The pass reports (rule `shape_annotation`):
//! * missing annotations on `pub` Matrix/Vector-producing functions in the
//!   annotated crates (`linalg`, `graph`, `core`);
//! * malformed annotations (unparseable dims, wrong dimension count for
//!   the produced type, dotted dims referencing unknown parameters).
//!
//! And (rule `shape_mismatch`): call sites of the block operations below
//! where both dimensions resolve to *unequal integer literals* — only
//! definite mismatches fire, symbolic dims never do.
//!
//! | operation  | constraint                  |
//! |------------|-----------------------------|
//! | `matmul`   | `recv.cols == arg.rows`     |
//! | `matvec`   | `recv.cols == arg.len`      |
//! | `dot`      | `recv.len == arg.len`       |
//! | `hadamard` | `recv.shape == arg.shape`   |
//! | `vstack`   | `recv.cols == arg.cols`     |
//! | `hstack`   | `recv.rows == arg.rows`     |
//!
//! Shapes at call sites are inferred per function body from `let`
//! bindings whose initializer calls an annotated function, with parameter
//! dims substituted by the literal arguments.

use crate::items::FnInfo;
use crate::lexer::{Tok, TokKind};
use crate::scanner::SourceFile;
use std::collections::HashMap;

/// One symbolic dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dim {
    /// A concrete integer dimension.
    Lit(u64),
    /// A named symbolic dimension (`n`, `points.rows`, …).
    Sym(String),
}

/// A parsed shape annotation: one dim for vectors, two for matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape(pub Vec<Dim>);

/// A problem found by the pass.
#[derive(Debug, Clone)]
pub struct ShapeFinding {
    /// `true` for `shape_mismatch`, `false` for `shape_annotation`.
    pub mismatch: bool,
    /// Function the finding is in (qualified name).
    pub func: String,
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

/// What a function's return type produces, shape-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Produces {
    MatrixLike,
    VectorLike,
    Other,
}

/// Classifies the return type; `Self` resolves through the impl type in
/// the qualified name.
fn produces(f: &FnInfo) -> Produces {
    let impl_ty = f.qual.split("::").next().unwrap_or("");
    let mentions = |name: &str| {
        f.ret.iter().any(|t| t == name) || (f.ret.iter().any(|t| t == "Self") && impl_ty == name)
    };
    if mentions("Matrix") || mentions("CsrMatrix") || mentions("Blocks") {
        Produces::MatrixLike
    } else if mentions("Vector") {
        Produces::VectorLike
    } else {
        Produces::Other
    }
}

/// Extracts and parses the `shape:` doc line of a function, if present.
/// Returns `Err(message)` on grammar problems.
fn parse_annotation(f: &FnInfo) -> Option<Result<Shape, String>> {
    let line = f.doc.iter().find_map(|d| d.trim().strip_prefix("shape:"))?;
    Some(parse_shape_expr(line.trim(), f))
}

/// Parses `(d1)` / `(d1,)` / `(d1, d2)` and validates dotted dims against
/// the function's parameters.
fn parse_shape_expr(text: &str, f: &FnInfo) -> Result<Shape, String> {
    let inner = text
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| format!("annotation `{text}` is not parenthesized"))?;
    let mut dims = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma in `(n,)`
        }
        dims.push(parse_dim(part, f)?);
    }
    if dims.is_empty() || dims.len() > 2 {
        return Err(format!(
            "annotation `{text}` has {} dims; expected 1 (Vector) or 2 (Matrix)",
            dims.len()
        ));
    }
    Ok(Shape(dims))
}

/// Parses a single DIM term.
fn parse_dim(part: &str, f: &FnInfo) -> Result<Dim, String> {
    if let Ok(n) = part.parse::<u64>() {
        return Ok(Dim::Lit(n));
    }
    if let Some((base, field)) = part.split_once('.') {
        if !matches!(field, "rows" | "cols" | "len") {
            return Err(format!(
                "dim `{part}`: field `{field}` is not one of rows/cols/len"
            ));
        }
        if base != "self" && !f.params.iter().any(|p| p == base) {
            return Err(format!(
                "dim `{part}`: `{base}` is not a parameter of `{}`",
                f.name
            ));
        }
        return Ok(Dim::Sym(part.to_owned()));
    }
    if part.chars().all(|c| c.is_alphanumeric() || c == '_') && !part.is_empty() {
        return Ok(Dim::Sym(part.to_owned()));
    }
    Err(format!("dim `{part}` is not INT, IDENT or IDENT.FIELD"))
}

/// Runs the annotation presence/grammar checks over one file's functions.
///
/// `require` turns on the *presence* requirement (annotated crates only);
/// grammar problems are reported wherever an annotation exists.
#[must_use]
pub fn check_annotations(fns: &[FnInfo], require: bool) -> Vec<ShapeFinding> {
    let mut out = Vec::new();
    for f in fns {
        if f.in_test {
            continue;
        }
        let produced = produces(f);
        match parse_annotation(f) {
            None => {
                if require && f.is_pub && produced != Produces::Other {
                    out.push(ShapeFinding {
                        mismatch: false,
                        func: f.qual.clone(),
                        line: f.line,
                        message: format!(
                            "`{}` produces a {} but has no `/// shape:` annotation",
                            f.qual,
                            if produced == Produces::MatrixLike {
                                "Matrix"
                            } else {
                                "Vector"
                            }
                        ),
                    });
                }
            }
            Some(Err(msg)) => out.push(ShapeFinding {
                mismatch: false,
                func: f.qual.clone(),
                line: f.line,
                message: msg,
            }),
            Some(Ok(shape)) => {
                let expected = match produced {
                    Produces::MatrixLike => Some(2),
                    Produces::VectorLike => Some(1),
                    Produces::Other => None,
                };
                if let Some(want) = expected {
                    if shape.0.len() != want {
                        out.push(ShapeFinding {
                            mismatch: false,
                            func: f.qual.clone(),
                            line: f.line,
                            message: format!(
                                "`{}` annotation has {} dims but the return type needs {want}",
                                f.qual,
                                shape.0.len()
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The block-operation constraint table: `(method, recv dim index,
/// arg dim index)`; `usize::MAX` in both positions means full-shape
/// equality.
const CONSTRAINTS: [(&str, usize, usize); 6] = [
    ("matmul", 1, 0), // recv.cols == arg.rows
    ("matvec", 1, 0), // recv.cols == arg.len
    ("dot", 0, 0),    // recv.len == arg.len
    ("hadamard", usize::MAX, usize::MAX),
    ("vstack", 1, 1), // recv.cols == arg.cols
    ("hstack", 0, 0), // recv.rows == arg.rows
];

/// A registry of annotated functions, for shape inference at call sites.
#[derive(Debug, Default)]
pub struct Registry {
    /// Simple name → (params, shape). Names with conflicting annotations
    /// are dropped (ambiguous resolution must not cause false positives).
    by_name: HashMap<String, Option<(Vec<String>, Shape)>>,
    /// Qualified `Type::name` → (params, shape).
    by_qual: HashMap<String, (Vec<String>, Shape)>,
}

impl Registry {
    /// Registers every well-annotated function.
    pub fn add_all(&mut self, fns: &[FnInfo]) {
        for f in fns {
            let Some(Ok(shape)) = parse_annotation(f) else {
                continue;
            };
            let entry = (f.params.clone(), shape);
            self.by_qual.insert(f.qual.clone(), entry.clone());
            match self.by_name.entry(f.name.clone()) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Some(entry));
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if o.get().as_ref() != Some(&entry) {
                        o.insert(None); // ambiguous
                    }
                }
            }
        }
    }

    fn resolve(&self, qual: Option<&str>, name: &str) -> Option<&(Vec<String>, Shape)> {
        if let Some(q) = qual {
            return self.by_qual.get(&format!("{q}::{name}"));
        }
        self.by_name.get(name).and_then(Option::as_ref)
    }
}

/// Checks block-operation call sites inside every function body of a file.
#[must_use]
pub fn check_call_sites(
    source: &SourceFile,
    fns: &[FnInfo],
    registry: &Registry,
) -> Vec<ShapeFinding> {
    let toks: Vec<&Tok> = source
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();
    let mut out = Vec::new();
    for f in fns {
        if f.in_test {
            continue;
        }
        check_body(&toks, f, registry, &mut out);
    }
    out
}

/// Walks one body: builds the local shape environment from `let` bindings
/// and checks the constraint table at method call sites.
fn check_body(toks: &[&Tok], f: &FnInfo, registry: &Registry, out: &mut Vec<ShapeFinding>) {
    let mut env: HashMap<String, Shape> = HashMap::new();
    let body = f.body.clone();
    let mut k = body.start.min(toks.len());
    let end = body.end.min(toks.len());
    while k < end {
        let t = toks[k];
        // `let [mut] name = <expr>` — try to infer the binding's shape.
        if t.is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            if let (Some(name_tok), Some(eq)) = (toks.get(n), toks.get(n + 1)) {
                if name_tok.kind == TokKind::Ident && eq.is_punct('=') {
                    if let Some(shape) = infer_expr_shape(toks, n + 2, end, registry, &env) {
                        env.insert(name_tok.text.clone(), shape);
                    }
                }
            }
        }
        // `recv.method(arg)` — constraint check.
        if t.is_punct('.')
            && k > body.start
            && toks[k - 1].kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|m| m.kind == TokKind::Ident)
            && toks.get(k + 2).is_some_and(|p| p.is_punct('('))
        {
            let recv = &toks[k - 1].text;
            let method = &toks[k + 1].text;
            if let Some(&(_, ri, ai)) = CONSTRAINTS.iter().find(|(m, _, _)| m == method) {
                let args = top_level_args(toks, k + 2, end);
                let arg = args.first().and_then(|a| single_ident(a));
                if let (Some(rs), Some(a)) = (env.get(recv), arg) {
                    if let Some(as_) = env.get(&a) {
                        check_constraint(rs, as_, ri, ai, method, toks[k].line, f, out);
                    }
                }
            }
        }
        k += 1;
    }
}

/// Definite-mismatch comparison between two inferred shapes.
#[allow(clippy::too_many_arguments)]
fn check_constraint(
    recv: &Shape,
    arg: &Shape,
    ri: usize,
    ai: usize,
    method: &str,
    line: usize,
    f: &FnInfo,
    out: &mut Vec<ShapeFinding>,
) {
    let mut push = |message: String| {
        out.push(ShapeFinding {
            mismatch: true,
            func: f.qual.clone(),
            line,
            message,
        });
    };
    if ri == usize::MAX {
        // Full-shape equality.
        for (a, b) in recv.0.iter().zip(arg.0.iter()) {
            if let (Dim::Lit(x), Dim::Lit(y)) = (a, b) {
                if x != y {
                    push(format!(
                        "`{method}` operands have definite shape mismatch: {x} vs {y}"
                    ));
                    return;
                }
            }
        }
        return;
    }
    let (Some(rd), Some(ad)) = (recv.0.get(ri), arg.0.get(ai)) else {
        return;
    };
    if let (Dim::Lit(x), Dim::Lit(y)) = (rd, ad) {
        if x != y {
            push(format!(
                "`{method}` inner dimensions definitely disagree: {x} vs {y}"
            ));
        }
    }
}

/// Infers the shape of the expression starting at `toks[at]` when it is a
/// call to an annotated function with simple-token arguments.
fn infer_expr_shape(
    toks: &[&Tok],
    at: usize,
    end: usize,
    registry: &Registry,
    env: &HashMap<String, Shape>,
) -> Option<Shape> {
    // Find the first `name(` in the statement; capture the `Type::` or
    // receiver qualifier just before it.
    let mut k = at;
    while k + 1 < end && !toks[k].is_punct(';') {
        if toks[k].kind == TokKind::Ident && toks[k + 1].is_punct('(') {
            let name = &toks[k].text;
            let qual = (k >= at + 2 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':'))
                .then(|| toks.get(k.wrapping_sub(3)).map(|t| t.text.clone()))
                .flatten();
            let recv = (k >= at + 1 && toks[k - 1].is_punct('.') && k >= at + 2)
                .then(|| toks[k - 2].text.clone());
            let entry = registry.resolve(qual.as_deref(), name)?;
            let args = top_level_args(toks, k + 1, end);
            return Some(substitute(entry, &args, recv.as_deref(), env));
        }
        k += 1;
    }
    None
}

/// Splits the argument list opening at `toks[open]` (`(`) into top-level
/// argument token groups.
fn top_level_args<'a>(toks: &[&'a Tok], open: usize, end: usize) -> Vec<Vec<&'a Tok>> {
    let mut args: Vec<Vec<&Tok>> = vec![Vec::new()];
    let mut depth = 0i32;
    let mut k = open;
    while k < end {
        let t = toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            if depth > 1 {
                args.last_mut().map(|a| a.push(t));
            }
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
            args.last_mut().map(|a| a.push(t));
        } else if t.is_punct(',') && depth == 1 {
            args.push(Vec::new());
        } else if depth >= 1 {
            args.last_mut().map(|a| a.push(t));
        }
        k += 1;
    }
    if args.len() == 1 && args[0].is_empty() {
        args.clear();
    }
    args
}

/// The single identifier an argument consists of (`&x` and `&mut x`
/// unwrap), or `None` for anything more complex.
fn single_ident(arg: &[&Tok]) -> Option<String> {
    let filtered: Vec<&&Tok> = arg
        .iter()
        .filter(|t| !t.is_punct('&') && !t.is_ident("mut"))
        .collect();
    match filtered.as_slice() {
        [t] if t.kind == TokKind::Ident => Some(t.text.clone()),
        _ => None,
    }
}

/// Substitutes parameter references in an annotation with the call's
/// actual arguments.
fn substitute(
    entry: &(Vec<String>, Shape),
    args: &[Vec<&Tok>],
    recv: Option<&str>,
    env: &HashMap<String, Shape>,
) -> Shape {
    let (params, shape) = entry;
    let arg_of = |p: &str| -> Option<&Vec<&Tok>> {
        params.iter().position(|q| q == p).and_then(|i| args.get(i))
    };
    let dims = shape
        .0
        .iter()
        .map(|d| match d {
            Dim::Lit(n) => Dim::Lit(*n),
            Dim::Sym(s) => subst_sym(s, &arg_of, recv, env),
        })
        .collect();
    Shape(dims)
}

/// Substitutes one symbolic dim term.
fn subst_sym<'a>(
    s: &str,
    arg_of: &impl Fn(&str) -> Option<&'a Vec<&'a Tok>>,
    recv: Option<&str>,
    env: &HashMap<String, Shape>,
) -> Dim {
    if let Some((base, field)) = s.split_once('.') {
        let target = if base == "self" {
            recv.map(str::to_owned)
        } else {
            arg_of(base).and_then(|a| single_ident(a))
        };
        if let Some(name) = target {
            if let Some(shape) = env.get(&name) {
                let idx = match (field, shape.0.len()) {
                    ("rows" | "len", _) => 0,
                    ("cols", 2) => 1,
                    _ => return Dim::Sym(format!("{name}.{field}")),
                };
                if let Some(d) = shape.0.get(idx) {
                    return d.clone();
                }
            }
            return Dim::Sym(format!("{name}.{field}"));
        }
        return Dim::Sym(s.to_owned());
    }
    // Free symbol: if it names a parameter, substitute the argument.
    match arg_of(s) {
        Some(a) => match a.as_slice() {
            [t] if t.kind == TokKind::Int => t
                .text
                .replace('_', "")
                .parse::<u64>()
                .map_or_else(|_| Dim::Sym(s.to_owned()), Dim::Lit),
            [t] if t.kind == TokKind::Ident => Dim::Sym(t.text.clone()),
            _ => Dim::Sym(s.to_owned()),
        },
        None => Dim::Sym(s.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scanner::analyze;

    fn annotations(src: &str, require: bool) -> Vec<ShapeFinding> {
        check_annotations(&extract("t.rs", &analyze(src)), require)
    }

    const LIB: &str = "impl Matrix {\n\
        /// shape: (rows, cols)\n\
        pub fn zeros(rows: usize, cols: usize) -> Self { Matrix }\n\
        /// shape: (self.rows, other.cols)\n\
        pub fn matmul(&self, other: &Matrix) -> Matrix { Matrix }\n\
        }\n";

    #[test]
    fn well_formed_annotations_are_clean() {
        assert!(annotations(LIB, true).is_empty());
    }

    #[test]
    fn missing_annotation_fires_only_when_required() {
        let src = "pub fn make() -> Matrix { Matrix }";
        assert_eq!(annotations(src, true).len(), 1);
        assert!(annotations(src, false).is_empty());
    }

    #[test]
    fn unknown_param_in_dotted_dim_is_flagged() {
        let src =
            "/// shape: (nope.rows, b.cols)\npub fn f(a: &Matrix, b: &Matrix) -> Matrix { Matrix }";
        let f = annotations(src, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("nope"));
    }

    #[test]
    fn wrong_dim_count_is_flagged() {
        let src = "/// shape: (n)\npub fn f(n: usize) -> Matrix { Matrix }";
        let f = annotations(src, true);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("needs 2"));
    }

    #[test]
    fn vector_annotation_takes_one_dim() {
        let src = "/// shape: (n,)\npub fn f(n: usize) -> Vector { Vector }";
        assert!(annotations(src, true).is_empty());
    }

    #[test]
    fn bad_field_is_flagged() {
        let src = "/// shape: (a.width, a.cols)\npub fn f(a: &Matrix) -> Matrix { Matrix }";
        let f = annotations(src, false);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("width"));
    }

    fn mismatches(body: &str) -> Vec<ShapeFinding> {
        let src = format!("{LIB}fn user() {{\n{body}\n}}\n");
        let source = analyze(&src);
        let fns = extract("t.rs", &source);
        let mut reg = Registry::default();
        reg.add_all(&fns);
        check_call_sites(&source, &fns, &reg)
            .into_iter()
            .filter(|f| f.mismatch)
            .collect()
    }

    #[test]
    fn definite_matmul_mismatch_fires() {
        let out = mismatches(
            "let a = Matrix::zeros(3, 4);\nlet b = Matrix::zeros(5, 2);\nlet c = a.matmul(&b);",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("4 vs 5"), "{}", out[0].message);
    }

    #[test]
    fn compatible_matmul_is_clean() {
        let out = mismatches(
            "let a = Matrix::zeros(3, 4);\nlet b = Matrix::zeros(4, 2);\nlet c = a.matmul(&b);",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn symbolic_dims_never_fire() {
        let out = mismatches(
            "let a = Matrix::zeros(n, 4);\nlet b = Matrix::zeros(m, 2);\nlet c = a.matmul(&b);",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn chained_result_shapes_propagate() {
        // c = a(3×4) · b(4×2) → (3, 2); c.matmul(d(9×9)) is definite 2 vs 9.
        let out = mismatches(
            "let a = Matrix::zeros(3, 4);\nlet b = Matrix::zeros(4, 2);\n\
             let c = a.matmul(&b);\nlet d = Matrix::zeros(9, 9);\nlet e = c.matmul(&d);",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("2 vs 9"), "{}", out[0].message);
    }
}
