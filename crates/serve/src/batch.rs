//! Admission-controlled batching of predict traffic.
//!
//! A [`BatchQueue`] sits in front of an engine and coalesces individual
//! `predict` requests into batches, bounded two ways:
//!
//! * **size** — a batch is released as soon as `max_batch` queries are
//!   waiting (amortizing per-batch overhead), and
//! * **deadline** — a non-full batch is released once its *oldest*
//!   waiting query has aged `max_delay` (bounding tail latency), and
//!
//! with **admission control** on top: once `capacity` queries are
//! queued, new arrivals are rejected immediately instead of growing the
//! queue without bound — under sustained overload, shedding load early
//! keeps the latency of admitted queries bounded.
//!
//! The queue is deliberately clock-free: every operation takes the
//! current time as an explicit `now` parameter (any monotone `f64`
//! timebase — the traffic bench drives it with virtual Poisson arrival
//! times, a server would pass monotonic seconds). That keeps the policy
//! logic deterministic and testable to exact equality, and keeps this
//! module off the workspace's nondeterminism lint.

use crate::error::{Error, Result};
use crate::types::QueryPoint;
use std::collections::VecDeque;

/// Size, deadline and admission bounds for a [`BatchQueue`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPolicy {
    /// Release a batch as soon as this many queries are waiting
    /// (`>= 1`).
    pub max_batch: usize,
    /// Release a non-full batch once its oldest query has waited this
    /// long, in the caller's timebase units (finite, `>= 0`; `0` makes
    /// every query its own immediate batch).
    pub max_delay: f64,
    /// Admission bound: reject arrivals while this many queries are
    /// already queued (`>= max_batch`).
    pub capacity: usize,
}

impl BatchPolicy {
    /// A policy releasing at `max_batch` or after `max_delay`, with the
    /// given queue capacity.
    pub fn new(max_batch: usize, max_delay: f64, capacity: usize) -> Self {
        BatchPolicy {
            max_batch,
            max_delay,
            capacity,
        }
    }

    /// Checks the policy's domains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for `max_batch == 0`, a
    /// non-finite or negative `max_delay`, or `capacity < max_batch`.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(Error::InvalidConfig {
                message: "max_batch must be at least 1".to_owned(),
            });
        }
        if !self.max_delay.is_finite() || self.max_delay < 0.0 {
            return Err(Error::InvalidConfig {
                message: format!(
                    "max_delay must be finite and non-negative, got {}",
                    self.max_delay
                ),
            });
        }
        if self.capacity < self.max_batch {
            return Err(Error::InvalidConfig {
                message: format!(
                    "capacity {} must be at least max_batch {}",
                    self.capacity, self.max_batch
                ),
            });
        }
        Ok(())
    }
}

/// The admission decision for one offered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The query was queued; the ticket identifies it in the released
    /// [`CoalescedBatch`] (tickets are assigned in arrival order).
    Admitted {
        /// Monotone per-queue sequence number of this query.
        ticket: u64,
    },
    /// The queue was at capacity; the query was shed.
    Rejected {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
    },
}

/// A batch released by the queue: the coalesced queries, their tickets,
/// and the arrival time of the oldest member (for latency accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct CoalescedBatch {
    /// Tickets of the member queries, in arrival order.
    pub tickets: Vec<u64>,
    /// The member queries, in arrival order.
    pub queries: Vec<QueryPoint>,
    /// Arrival times of the member queries, in arrival order.
    pub arrivals: Vec<f64>,
    /// Time at which the queue released this batch.
    pub released_at: f64,
}

/// One waiting query.
#[derive(Debug, Clone)]
struct Pending {
    ticket: u64,
    query: QueryPoint,
    arrived_at: f64,
}

/// Deterministic, clock-free admission-controlled batch coalescer.
///
/// ```
/// use gssl_serve::{Admission, BatchPolicy, BatchQueue, QueryPoint};
/// # fn main() -> Result<(), gssl_serve::Error> {
/// let mut queue = BatchQueue::new(BatchPolicy::new(2, 0.5, 4))?;
/// assert!(matches!(
///     queue.offer(QueryPoint::new(vec![0.1]), 0.0),
///     Admission::Admitted { ticket: 0 }
/// ));
/// // Not full and not stale: nothing to release yet.
/// assert!(queue.pop_ready(0.1).is_none());
/// queue.offer(QueryPoint::new(vec![0.2]), 0.2);
/// // Size bound reached: the batch releases immediately.
/// let batch = queue.pop_ready(0.2).expect("full batch");
/// assert_eq!(batch.tickets, vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchQueue {
    policy: BatchPolicy,
    pending: VecDeque<Pending>,
    next_ticket: u64,
    admitted: u64,
    rejected: u64,
}

impl BatchQueue {
    /// Creates an empty queue under the given policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the policy fails
    /// [`BatchPolicy::validate`].
    pub fn new(policy: BatchPolicy) -> Result<Self> {
        policy.validate()?;
        Ok(BatchQueue {
            policy,
            pending: VecDeque::new(),
            next_ticket: 0,
            admitted: 0,
            rejected: 0,
        })
    }

    /// The queue's policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Offers a query arriving at time `now`. Admission is immediate:
    /// either the query joins the queue (ticket returned) or it is shed
    /// because `capacity` queries are already waiting.
    pub fn offer(&mut self, query: QueryPoint, now: f64) -> Admission {
        if self.pending.len() >= self.policy.capacity {
            self.rejected += 1;
            return Admission::Rejected {
                queue_depth: self.pending.len(),
            };
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.admitted += 1;
        self.pending.push_back(Pending {
            ticket,
            query,
            arrived_at: now,
        });
        Admission::Admitted { ticket }
    }

    /// Whether a batch would be released at time `now`: the size bound is
    /// met, or the oldest waiting query has aged past `max_delay`.
    pub fn ready(&self, now: f64) -> bool {
        if self.pending.len() >= self.policy.max_batch {
            return true;
        }
        match self.pending.front() {
            Some(oldest) => now - oldest.arrived_at >= self.policy.max_delay,
            None => false,
        }
    }

    /// The earliest future time at which the deadline bound alone would
    /// release the currently queued work (`None` when the queue is
    /// empty). Lets an event loop sleep exactly until the next flush.
    pub fn next_deadline(&self) -> Option<f64> {
        self.pending
            .front()
            .map(|oldest| oldest.arrived_at + self.policy.max_delay)
    }

    /// Releases the next batch if one is [`BatchQueue::ready`] at `now`:
    /// up to `max_batch` queries in arrival order.
    pub fn pop_ready(&mut self, now: f64) -> Option<CoalescedBatch> {
        if !self.ready(now) {
            return None;
        }
        self.release(now)
    }

    /// Unconditionally releases up to `max_batch` queued queries (used to
    /// drain the queue at end of stream). `None` when empty.
    pub fn flush(&mut self, now: f64) -> Option<CoalescedBatch> {
        self.release(now)
    }

    fn release(&mut self, now: f64) -> Option<CoalescedBatch> {
        if self.pending.is_empty() {
            return None;
        }
        let take = self.pending.len().min(self.policy.max_batch);
        let mut tickets = Vec::with_capacity(take);
        let mut queries = Vec::with_capacity(take);
        let mut arrivals = Vec::with_capacity(take);
        for _ in 0..take {
            // `take <= len`, so the queue cannot run dry mid-loop.
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            tickets.push(p.ticket);
            queries.push(p.query);
            arrivals.push(p.arrived_at);
        }
        Some(CoalescedBatch {
            tickets,
            queries,
            arrivals,
            released_at: now,
        })
    }

    /// Number of queries currently waiting.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no queries are waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total queries admitted since construction.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total queries shed by admission control since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(x: f64) -> QueryPoint {
        QueryPoint::new(vec![x])
    }

    #[test]
    fn policy_validation() {
        assert!(BatchPolicy::new(0, 1.0, 4).validate().is_err());
        assert!(BatchPolicy::new(2, f64::NAN, 4).validate().is_err());
        assert!(BatchPolicy::new(2, -1.0, 4).validate().is_err());
        assert!(BatchPolicy::new(4, 1.0, 2).validate().is_err());
        assert!(BatchPolicy::new(4, 0.0, 4).validate().is_ok());
        assert!(BatchQueue::new(BatchPolicy::new(0, 1.0, 4)).is_err());
    }

    #[test]
    fn size_bound_releases_full_batches() {
        let mut queue = BatchQueue::new(BatchPolicy::new(3, 10.0, 9)).unwrap();
        for i in 0..5 {
            assert!(matches!(
                queue.offer(q(i as f64), 0.1 * i as f64),
                Admission::Admitted { .. }
            ));
        }
        let batch = queue.pop_ready(0.4).expect("size bound met");
        assert_eq!(batch.tickets, vec![0, 1, 2]);
        assert_eq!(batch.arrivals, vec![0.0, 0.1, 0.2]);
        assert_eq!(batch.released_at, 0.4);
        // Two remain: below the size bound and not yet stale.
        assert_eq!(queue.len(), 2);
        assert!(queue.pop_ready(0.4).is_none());
    }

    #[test]
    fn deadline_bound_releases_stale_batches() {
        let mut queue = BatchQueue::new(BatchPolicy::new(8, 0.5, 16)).unwrap();
        queue.offer(q(1.0), 1.0);
        queue.offer(q(2.0), 1.2);
        assert!(!queue.ready(1.4));
        assert_eq!(queue.next_deadline(), Some(1.5));
        assert!(queue.ready(1.5));
        let batch = queue.pop_ready(1.5).expect("oldest aged out");
        assert_eq!(batch.tickets, vec![0, 1]);
        assert!(queue.is_empty());
        assert_eq!(queue.next_deadline(), None);
    }

    #[test]
    fn admission_control_sheds_overload() {
        let mut queue = BatchQueue::new(BatchPolicy::new(2, 10.0, 3)).unwrap();
        for i in 0..3 {
            assert!(matches!(
                queue.offer(q(i as f64), 0.0),
                Admission::Admitted { .. }
            ));
        }
        assert_eq!(
            queue.offer(q(9.0), 0.0),
            Admission::Rejected { queue_depth: 3 }
        );
        assert_eq!(queue.admitted(), 3);
        assert_eq!(queue.rejected(), 1);
        // Draining a batch frees capacity again.
        let batch = queue.pop_ready(0.0).unwrap();
        assert_eq!(batch.tickets.len(), 2);
        assert!(matches!(
            queue.offer(q(4.0), 0.1),
            Admission::Admitted { .. }
        ));
    }

    #[test]
    fn flush_drains_remainders_in_order() {
        let mut queue = BatchQueue::new(BatchPolicy::new(4, 100.0, 8)).unwrap();
        for i in 0..6 {
            queue.offer(q(i as f64), i as f64);
        }
        let full = queue.pop_ready(6.0).unwrap();
        assert_eq!(full.tickets, vec![0, 1, 2, 3]);
        // The remainder is neither full nor stale, but flush takes it.
        assert!(queue.pop_ready(6.0).is_none());
        let rest = queue.flush(6.0).unwrap();
        assert_eq!(rest.tickets, vec![4, 5]);
        assert!(queue.flush(6.0).is_none());
    }

    #[test]
    fn zero_delay_makes_every_query_immediate() {
        let mut queue = BatchQueue::new(BatchPolicy::new(8, 0.0, 8)).unwrap();
        queue.offer(q(1.0), 2.0);
        assert!(queue.ready(2.0));
        assert_eq!(queue.pop_ready(2.0).unwrap().tickets, vec![0]);
    }
}
