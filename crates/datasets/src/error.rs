//! Error type for dataset generation.

use std::fmt;

/// Errors returned by dataset constructors and generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Description of the violated requirement.
        message: String,
    },
    /// Inputs that must be paired have different lengths.
    LengthMismatch {
        /// Human-readable name of the failing operation.
        operation: &'static str,
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// An underlying statistics operation failed.
    Stats(gssl_stats::Error),
    /// An underlying linear-algebra operation failed.
    Linalg(gssl_linalg::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            Error::LengthMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "length mismatch in {operation}: {left} vs {right} elements"
            ),
            Error::Stats(inner) => write!(f, "statistics error: {inner}"),
            Error::Linalg(inner) => write!(f, "linear algebra error: {inner}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Stats(inner) => Some(inner),
            Error::Linalg(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<gssl_stats::Error> for Error {
    fn from(inner: gssl_stats::Error) -> Self {
        Error::Stats(inner)
    }
}

impl From<gssl_linalg::Error> for Error {
    fn from(inner: gssl_linalg::Error) -> Self {
        Error::Linalg(inner)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = Error::InvalidParameter {
            message: "count must be positive".to_owned(),
        };
        assert!(e.to_string().contains("count"));
        let from_stats: Error = gssl_stats::Error::EmptyInput { required: "data" }.into();
        assert!(from_stats.to_string().contains("statistics error"));
        let from_linalg: Error = gssl_linalg::Error::Singular { pivot: 1 }.into();
        assert!(from_linalg.to_string().contains("linear algebra"));
        assert!(std::error::Error::source(&from_linalg).is_some());
    }
}
