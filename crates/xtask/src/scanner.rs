//! Line-level analysis of Rust sources, built on the token lexer.
//!
//! PR 1 implemented this module as a hand-rolled line state machine; it is
//! now a thin layer over [`crate::lexer`]: the lexer produces both the
//! token stream (used by the `analyze` passes) and the blanked per-line
//! view (used by the PR-1 `check` rules), and this module derives the
//! `#[cfg(test)]` mask from the *token stream* with a region stack. That
//! fixes two PR-1 scanner bugs:
//!
//! * **nested `#[cfg(test)]` modules** — the old single-slot tracker was
//!   overwritten by an inner `#[cfg(test)]` item, unmasking the tail of
//!   the outer test module and producing false `no_panic` positives;
//! * **`'\''` char literals** — the old scanner mis-consumed the escaped
//!   quote and desynchronized on the closing quote.

pub use crate::lexer::Line;
use crate::lexer::{lex, Tok, TokKind};

/// A fully analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Analyzed lines, in order.
    pub lines: Vec<Line>,
    /// `test_mask[i]` is `true` when line `i` belongs to a `#[cfg(test)]`
    /// region (the attribute line itself included).
    pub test_mask: Vec<bool>,
    /// The full token stream (comments included), for the semantic passes.
    pub tokens: Vec<Tok>,
}

/// Analyzes a whole file: lexes it and computes the `#[cfg(test)]` mask.
#[must_use]
pub fn analyze(source: &str) -> SourceFile {
    let out = lex(source);
    let test_mask = compute_test_mask(&out.tokens, out.lines.len());
    SourceFile {
        lines: out.lines,
        test_mask,
        tokens: out.tokens,
    }
}

/// Marks every line covered by a `#[cfg(test)]` item. Regions are tracked
/// with a stack of opening brace depths, so test modules nested inside
/// test modules stay masked until the *outer* brace closes.
fn compute_test_mask(tokens: &[Tok], line_count: usize) -> Vec<bool> {
    let mut mask = vec![false; line_count];
    let code: Vec<&Tok> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment | TokKind::Doc))
        .collect();

    let mut depth = 0usize;
    // Brace depth at which each open `#[cfg(test)]` region started, with
    // the line its attribute began on.
    let mut regions: Vec<(usize, usize)> = Vec::new();
    // A `#[cfg(test)]` attribute was seen; waiting for `{` or item-level
    // `;`. Holds (attribute line, bracket/paren depth since arming).
    let mut armed: Option<(usize, i32)> = None;

    let mark = |mask: &mut Vec<bool>, from: usize, to: usize| {
        for line in from..=to.min(line_count) {
            if line >= 1 {
                mask[line - 1] = true;
            }
        }
    };

    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.is_punct('#') && is_cfg_test_attr(&code[i..]) {
            if armed.is_none() {
                armed = Some((t.line, 0));
            }
            i += 7;
            continue;
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                if let Some((attr_line, _)) = armed.take() {
                    regions.push((depth, attr_line));
                }
                depth += 1;
            }
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                if regions.last().is_some_and(|&(d, _)| d == depth) {
                    let (_, attr_line) = regions.pop().unwrap_or((0, t.line));
                    mark(&mut mask, attr_line, t.line);
                }
            }
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => {
                if let Some((_, delim)) = armed.as_mut() {
                    *delim += 1;
                }
            }
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                if let Some((_, delim)) = armed.as_mut() {
                    *delim -= 1;
                }
            }
            (TokKind::Punct, ";") => {
                // `#[cfg(test)] use …;`-style single-item gating: only an
                // item-level semicolon resolves the armed attribute.
                if let Some((attr_line, delim)) = armed {
                    if delim <= 0 {
                        mark(&mut mask, attr_line, t.line);
                        armed = None;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unclosed regions (truncated file): mask to the end.
    for (_, attr_line) in regions {
        mark(&mut mask, attr_line, line_count);
    }
    if let Some((attr_line, _)) = armed {
        mark(&mut mask, attr_line, line_count);
    }
    // Lines strictly inside open regions between attribute and closing
    // brace are handled by the ranged marking above; nothing else to do.
    mask
}

/// Whether `code` (comment-free tokens) starts with exactly
/// `#[cfg(test)]`.
fn is_cfg_test_attr(code: &[&Tok]) -> bool {
    code.len() >= 7
        && code[0].is_punct('#')
        && code[1].is_punct('[')
        && code[2].is_ident("cfg")
        && code[3].is_punct('(')
        && code[4].is_ident("test")
        && code[5].is_punct(')')
        && code[6].is_punct(']')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_string_bodies() {
        let f = analyze(r#"let x = "panic!(no)"; call();"#);
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[0].code.contains("call()"));
    }

    #[test]
    fn extracts_line_comments() {
        let f = analyze("let x = 1; // lint: allow(no_panic)");
        assert!(f.lines[0].comment.contains("lint: allow(no_panic)"));
        assert!(!f.lines[0].code.contains("lint"));
    }

    #[test]
    fn doc_comments_are_flagged_and_excluded_from_code() {
        let f = analyze("/// uses .unwrap() in an example\nfn x() {}");
        assert!(f.lines[0].is_doc);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].is_doc);
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let f = analyze("let s = \"first \\\n  second==1.0\";\nlet t = 2;");
        assert!(!f.lines[1].code.contains("=="));
        assert!(f.lines[2].code.contains("let t"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = analyze("/* start\n .unwrap() inside\n end */ let x = 1;");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("let x"));
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let f = analyze(src);
        assert!(!f.test_mask[0]);
        assert!(f.test_mask[1]);
        assert!(f.test_mask[2]);
        assert!(f.test_mask[3]);
        assert!(f.test_mask[4]);
        assert!(!f.test_mask[5]);
    }

    #[test]
    fn cfg_test_single_item_is_masked() {
        let f = analyze("#[cfg(test)]\nuse helper::thing;\nfn real() {}");
        assert!(f.test_mask[0]);
        assert!(f.test_mask[1]);
        assert!(!f.test_mask[2]);
    }

    #[test]
    fn nested_cfg_test_modules_stay_masked() {
        // Regression (PR-1 scanner bug): the inner `#[cfg(test)]` item
        // overwrote the single-slot region tracker, unmasking `g`.
        let src = "#[cfg(test)]\nmod tests {\n    #[cfg(test)]\n    mod inner { fn f() {} }\n    fn g() { y.unwrap(); }\n}\nfn real() {}";
        let f = analyze(src);
        for line in 0..6 {
            assert!(f.test_mask[line], "line {} must be masked", line + 1);
        }
        assert!(!f.test_mask[6]);
    }

    #[test]
    fn sibling_cfg_test_items_each_masked() {
        let src =
            "#[cfg(test)]\nmod a { fn f() {} }\nfn mid() {}\n#[cfg(test)]\nmod b { fn g() {} }";
        let f = analyze(src);
        assert!(f.test_mask[0]);
        assert!(f.test_mask[1]);
        assert!(!f.test_mask[2]);
        assert!(f.test_mask[3]);
        assert!(f.test_mask[4]);
    }

    #[test]
    fn cfg_test_attr_with_array_semicolon_stays_armed() {
        // The `;` inside `[u8; 3]` must not resolve the armed attribute.
        let src = "#[cfg(test)]\nstatic X: [u8; 3] = [0; 3];\nfn real() {}";
        let f = analyze(src);
        assert!(f.test_mask[0]);
        assert!(f.test_mask[1]);
        assert!(!f.test_mask[2]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = analyze("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let f = analyze("let c = '=' ; let d = '\\n';");
        assert!(!f.lines[0].code.contains("'='"), "{}", f.lines[0].code);
        assert!(!f.lines[0].code.contains('n'), "{}", f.lines[0].code);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_desync() {
        // Regression (PR-1 scanner bug): `'\''` lost sync and could blank
        // or expose the wrong span on the rest of the line.
        let f = analyze(r"let c = '\''; x.unwrap();");
        assert!(f.lines[0].code.contains(".unwrap()"), "{}", f.lines[0].code);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = analyze("let s = r#\"has .unwrap() text\"#; f();");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("f()"));
    }

    #[test]
    fn multiline_raw_strings_are_blanked() {
        // Regression fixture: a raw string spanning lines must mask its
        // interior (including `#[cfg(test)]`-looking text and braces) and
        // re-expose code after the terminator.
        let src = "let s = r##\"\n#[cfg(test)]\nmod fake { x.unwrap(); }\n\"##;\nx.unwrap();";
        let f = analyze(src);
        assert!(!f.lines[1].code.contains("cfg"));
        assert!(!f.lines[2].code.contains("unwrap"));
        assert!(f.lines[4].code.contains(".unwrap()"));
        assert!(!f.test_mask[4], "raw-string text must not arm the mask");
    }
}
